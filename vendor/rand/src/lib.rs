//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides exactly the surface the workspace uses: [`Rng`] (with
//! `gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64) and
//! [`seq::SliceRandom::shuffle`]. Determinism is only promised within this
//! workspace, not bit-compatibility with upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an RNG (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample (`rng.gen_range(a..b)`).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return Standard::from_rng(rng);
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Unbiased uniform draw in `[0, span)` by rejection of the biased tail.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// High-level convenience methods; blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as upstream rand does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension trait for slices: random shuffling.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (super::uniform_u64(rng, i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw(rng: &mut impl Rng) -> f64 {
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }
}
