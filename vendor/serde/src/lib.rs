//! Offline, API-compatible subset of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so
//! downstream users can persist results, but nothing in-tree serialises
//! through serde yet (the table writers are dependency-free by design).
//! This shim therefore provides the two traits as markers plus no-op
//! derive macros, keeping every `#[derive(Serialize, Deserialize)]` in the
//! source tree compiling unchanged. Swapping in real serde later is a
//! manifest-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker for types that can be serialised (no-op subset).
pub trait Serialize {}

/// Marker for types that can be deserialised (no-op subset).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
