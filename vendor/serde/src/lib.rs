//! Offline, API-subset `serde`: a *functional* self-describing data model.
//!
//! The real serde crate is not available in this offline workspace, so this
//! shim provides the subset the workspace actually uses, structured so a
//! later swap to real serde + serde_json is localized to derive output and
//! the `json` module:
//!
//! * [`Value`] — an owned, self-describing data tree (the analogue of
//!   `serde_json::Value`), preserving map insertion order so round-trips
//!   are deterministic.
//! * [`Serialize`]/[`Deserialize`] — traits converting to/from [`Value`].
//!   Unlike real serde's visitor architecture, the data model is the value
//!   tree itself; the derive macros in `serde_derive` generate real
//!   implementations (field-by-field maps for structs, externally tagged
//!   variants for enums — the same wire shape as serde's defaults).
//! * [`json`] — a compact JSON writer/parser over [`Value`], with
//!   [`json::to_string`]/[`json::from_str`] mirroring `serde_json`.
//!
//! Floating-point values round-trip losslessly: the writer emits the
//! shortest representation that re-parses to the identical bits, and
//! non-finite values serialize as `null` (deserializing `null` into an
//! `f64` yields `NaN`), matching `serde_json`'s behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

/// An owned, self-describing data tree.
///
/// Maps are ordered association lists: insertion order is preserved, so
/// serialization output is deterministic and struct round-trips are stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of non-finite floats and `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a [`Value::Map`]; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error: a message plus optional context
/// pushed by the derive-generated code (type and field names).
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Create an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the self-describing data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self`, reporting a descriptive [`Error`] on shape or
    /// range mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(u) => <$t>::try_from(*u).map_err(|_| {
                        Error::custom(format!("integer {u} out of range for {}", stringify!($t)))
                    }),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::U64(x as u64)
                } else {
                    Value::I64(x)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::U64(u) => i64::try_from(*u).map_err(|_| {
                        Error::custom(format!("integer {u} out of range for {}", stringify!($t)))
                    })?,
                    Value::I64(i) => *i,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!("integer {wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            // Non-finite floats serialize as null (serde_json convention).
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code
// ---------------------------------------------------------------------------

/// Runtime support for the code emitted by `serde_derive`. Not intended for
/// direct use; the functions carry type/field names for error messages.
pub mod de {
    use super::{Error, Value};

    /// Fetch a struct field from a map value.
    pub fn field<'a>(v: &'a Value, ty: &str, field: &str) -> Result<&'a Value, Error> {
        match v {
            Value::Map(_) => v
                .get(field)
                .ok_or_else(|| Error::custom(format!("{ty}: missing field `{field}`"))),
            other => Err(Error::custom(format!(
                "{ty}: expected map, got {}",
                other.kind()
            ))),
        }
    }

    /// Interpret a value as a tuple of exactly `n` elements.
    pub fn seq_n<'a>(v: &'a Value, ty: &str, n: usize) -> Result<&'a [Value], Error> {
        match v {
            Value::Seq(items) if items.len() == n => Ok(items),
            Value::Seq(items) => Err(Error::custom(format!(
                "{ty}: expected {n} elements, got {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "{ty}: expected sequence, got {}",
                other.kind()
            ))),
        }
    }

    /// Split an externally tagged enum value into `(variant, payload)`.
    /// Unit variants are plain strings; data variants are one-entry maps.
    pub fn enum_tag<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, Option<&'a Value>), Error> {
        match v {
            Value::Str(s) => Ok((s.as_str(), None)),
            Value::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(Error::custom(format!(
                "{ty}: expected variant string or single-entry map, got {}",
                other.kind()
            ))),
        }
    }

    /// Error for an unrecognized enum variant name.
    pub fn unknown_variant(ty: &str, variant: &str, known: &[&str]) -> Error {
        Error::custom(format!(
            "{ty}: unknown variant `{variant}` (expected one of: {})",
            known.join(", ")
        ))
    }
}

pub mod json;

pub use serde_derive::{Deserialize, Serialize};
