//! Compact JSON reader/writer over [`Value`], mirroring the `serde_json`
//! entry points the workspace needs.
//!
//! * Floats print via Rust's shortest round-trip formatting (`{:?}`), so
//!   `serialize → parse` reproduces the identical bits; non-finite floats
//!   become `null`.
//! * Integers that fit `u64`/`i64` stay integers; `Value::F64` always
//!   prints with a decimal point or exponent so it re-parses as a float.
//! * The parser accepts the full JSON grammar (UTF-8 strings with escapes,
//!   nested containers, scientific notation) and rejects trailing garbage.

use crate::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serialize a value as a compact JSON string.
pub fn to_string<T: Serialize>(x: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &x.to_value(), None, 0);
    out
}

/// Serialize a value as an indented (2-space) JSON string.
pub fn to_string_pretty<T: Serialize>(x: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &x.to_value(), Some(2), 0);
    out
}

/// Parse a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Parse a JSON string into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {pos} of JSON input"
        )));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is shortest round-trip and always keeps a `.0`
                // or exponent, so the token re-parses as a float.
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_container(out, indent, depth, '[', ']', items.len(), |o, i| {
            write_value(o, &items[i], indent, depth + 1)
        }),
        Value::Map(entries) => {
            write_container(out, indent, depth, '{', '}', entries.len(), |o, i| {
                write_string(o, &entries[i].0);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, &entries[i].1, indent, depth + 1)
            })
        }
    }
}

fn write_container(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::custom(format!(
            "expected `{lit}` at byte {pos} of JSON input"
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::custom("unexpected end of JSON input")),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                entries.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::custom("unterminated JSON string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let code = parse_hex4(b, pos)?;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: JSON encodes non-BMP
                            // characters as a `\uD8xx\uDCxx` pair.
                            if b.get(*pos..*pos + 2) != Some(br"\u") {
                                return Err(Error::custom("unpaired high surrogate in \\u escape"));
                            }
                            *pos += 2;
                            let low = parse_hex4(b, pos)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::custom("invalid low surrogate in \\u escape"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                        } else {
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u code point"))?
                        };
                        out.push(c);
                        // The shared `*pos += 1` below skips the final
                        // hex digit.
                        *pos -= 1;
                    }
                    _ => return Err(Error::custom("invalid escape in JSON string")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so the
                // bytes are valid UTF-8 by construction).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::custom("invalid UTF-8 in JSON string"))?;
                let c = rest.chars().next().expect("non-empty by match");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Read 4 hex digits at `pos`, advancing past them.
fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, Error> {
    let hex = b
        .get(*pos..*pos + 4)
        .ok_or_else(|| Error::custom("truncated \\u escape"))?;
    let hex = std::str::from_utf8(hex).map_err(|_| Error::custom("invalid \\u escape"))?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
    *pos += 4;
    Ok(code)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ASCII number token");
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::U64(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::I64(i));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (v, s) in [
            (Value::Null, "null"),
            (Value::Bool(true), "true"),
            (Value::U64(42), "42"),
            (Value::I64(-7), "-7"),
            (Value::Str("a\"b\\c\n".into()), r#""a\"b\\c\n""#),
        ] {
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, s);
            assert_eq!(parse(s).unwrap(), v);
        }
    }

    #[test]
    fn floats_keep_their_bits() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 2.5e17, 5.0, -0.0, f64::MIN_POSITIVE] {
            let s = to_string(&x);
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn integral_floats_stay_floats() {
        // 5.0 must not degrade into the integer 5 on the wire.
        let s = to_string(&5.0f64);
        assert_eq!(s, "5.0");
        assert_eq!(parse(&s).unwrap(), Value::F64(5.0));
    }

    #[test]
    fn containers_round_trip() {
        let v = Value::Map(vec![
            (
                "xs".into(),
                Value::Seq(vec![Value::U64(1), Value::F64(2.5)]),
            ),
            ("nested".into(), Value::Map(vec![("k".into(), Value::Null)])),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, r#"{"xs":[1,2.5],"nested":{"k":null},"empty":[]}"#);
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn pretty_output_reparses() {
        let v = Value::Map(vec![("a".into(), Value::Seq(vec![Value::U64(1)]))]);
        let pretty = {
            let mut out = String::new();
            write_value(&mut out, &v, Some(2), 0);
            out
        };
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".into()));
        assert_eq!(parse("\"héllo\"").unwrap(), Value::Str("héllo".into()));
        // Non-BMP characters arrive as UTF-16 surrogate pairs (e.g. from
        // Python's json.dumps with ensure_ascii=True).
        assert_eq!(
            parse("\"\\ud83d\\ude00!\"").unwrap(),
            Value::Str("\u{1F600}!".into())
        );
    }

    #[test]
    fn broken_surrogates_are_rejected() {
        for bad in [
            "\"\\ud83d\"",        // unpaired high surrogate
            "\"\\ud83d\\u0041\"", // high surrogate followed by non-low
            "\"\\ude00\"",        // lone low surrogate
            "\"\\ud83dx\"",       // high surrogate then raw char
        ] {
            assert!(parse(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in ["{", "[1,", "tru", "\"abc", "1 2", "{\"a\" 1}", "", "nul"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
