//! Offline, API-compatible subset of `criterion`.
//!
//! Supports the surface the workspace benches use — `benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros with
//! `harness = false` targets. Measurement is simple wall-clock sampling
//! (median / mean / min over `sample_size` samples after a calibration
//! pass); there is no statistical regression machinery. Respects cargo
//! bench's extra CLI args: a positional filter substring and `--bench`
//! (ignored), so `cargo bench <filter>` narrows as with real criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("closed_form", 8)` → `closed_form/8`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to the bench closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f`, storing per-sample wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count that runs ≥ ~2ms per sample.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / iters as u32);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim has no time budget logic.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&full, &b.samples);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (separator line in the report).
    pub fn finish(self) {
        eprintln!();
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        eprintln!("{name:<40} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    eprintln!(
        "{name:<40} median {median:>12?}  mean {mean:>12?}  min {min:>12?}  ({} samples)",
        sorted.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    /// Parse the filter from the CLI args cargo-bench forwards.
    fn default() -> Self {
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" => {}
                "--save-baseline" | "--baseline" | "--load-baseline" | "--sample-size"
                | "--measurement-time" | "--warm-up-time" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 100,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(id) {
            let mut b = Bencher {
                samples: Vec::new(),
                sample_size: 100,
            };
            f(&mut b);
            report(id, &b.samples);
        }
        self
    }
}

/// Declare a benchmark group runner: `criterion_group!(benches, f, g);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` from group runners: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz".into()),
        };
        let mut g = c.benchmark_group("t");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| ());
            ran = true;
        });
        g.finish();
        assert!(!ran);
    }
}
