//! No-op `Serialize`/`Deserialize` derive macros for the offline serde
//! shim. Implemented directly on `proc_macro` (no syn/quote, which are not
//! available offline): the macro scans the item for its name and generic
//! parameters and emits an empty marker-trait impl.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the no-op `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "Serialize")
}

/// Derive the no-op `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "Deserialize")
}

/// Parsed `<...>` generics of the item, split into the declaration list
/// (with bounds, for `impl<...>`) and the usage list (names only, for the
/// self type).
struct Generics {
    decl: String,
    usage: String,
}

fn empty_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes, visibility and modifiers until `struct`/`enum`/`union`.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    if let Some(TokenTree::Ident(n)) = tokens.next() {
                        name = Some(n.to_string());
                    }
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the attribute group that follows `#`.
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    tokens.next();
                }
            }
            _ => {}
        }
    }
    let name = name.expect("serde_derive: could not find type name in derive input");
    let generics = parse_generics(&mut tokens);

    let code = format!(
        "impl{decl} serde::{tr} for {name}{usage} {{}}",
        decl = generics.decl,
        tr = trait_name,
        name = name,
        usage = generics.usage,
    );
    code.parse()
        .expect("serde_derive: generated impl failed to parse")
}

/// Consume a `<...>` generic-parameter list if one immediately follows the
/// type name; otherwise return empty lists.
fn parse_generics(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Generics {
    match tokens.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => {
            return Generics {
                decl: String::new(),
                usage: String::new(),
            }
        }
    }
    tokens.next(); // consume `<`

    let mut depth = 1usize;
    let mut decl = String::from("<");
    let mut params: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut in_bounds = false;

    for tt in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ':' if depth == 1 => in_bounds = true,
                ',' if depth == 1 => {
                    if !current.is_empty() {
                        params.push(current.clone());
                        current.clear();
                    }
                    in_bounds = false;
                    decl.push(',');
                    continue;
                }
                _ => {}
            }
        }
        let piece = tt.to_string();
        decl.push_str(&piece);
        if piece != "'" {
            decl.push(' ');
        }
        if !in_bounds {
            // `const N : usize` usage list needs just `N`; lifetimes and
            // type params contribute their own token.
            if piece != "const" {
                current.push_str(&piece);
            }
        }
    }
    if !current.is_empty() {
        params.push(current);
    }
    decl.push('>');

    Generics {
        usage: if params.is_empty() {
            String::new()
        } else {
            format!("<{}>", params.join(","))
        },
        decl,
    }
}
