//! Real `Serialize`/`Deserialize` derive macros for the offline serde
//! shim, implemented directly on `proc_macro` (syn/quote are not available
//! offline).
//!
//! The generated code targets the shim's value-tree data model
//! (`serde::Value`): structs become ordered maps keyed by field name,
//! tuple structs become sequences (single-field tuple structs are
//! transparent newtypes), and enums use serde's default externally tagged
//! representation — unit variants are strings, data variants one-entry
//! maps. This matches the wire shape real serde + serde_json would
//! produce for the same types, so a later swap stays format-compatible.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (value-tree subset).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.serialize_impl()
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (value-tree subset).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.deserialize_impl()
        .parse()
        .expect("generated Deserialize impl must parse")
}

/// The shapes of a struct or enum-variant body.
enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (count only).
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// `<...>` generic parameter list with bounds, for the `impl` header.
    generics_decl: String,
    /// `<...>` generic arguments (names only), for the self type.
    generics_usage: String,
    body: Body,
}

impl Item {
    fn parse(input: TokenStream) -> Item {
        let mut tokens = input.into_iter().peekable();

        // Skip outer attributes, visibility and modifiers until the
        // `struct`/`enum` keyword.
        let mut kind = None;
        let mut name = None;
        while let Some(tt) = tokens.next() {
            match tt {
                TokenTree::Ident(id) => {
                    let s = id.to_string();
                    if s == "struct" || s == "enum" {
                        kind = Some(s);
                        if let Some(TokenTree::Ident(n)) = tokens.next() {
                            name = Some(n.to_string());
                        }
                        break;
                    }
                    assert!(s != "union", "serde_derive: unions are not supported");
                }
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                    {
                        tokens.next();
                    }
                }
                _ => {}
            }
        }
        let kind = kind.expect("serde_derive: expected struct or enum");
        let name = name.expect("serde_derive: could not find type name");
        let (generics_decl, generics_usage) = parse_generics(&mut tokens);

        // A `where` clause would need to be replicated on the impl; the
        // workspace does not use them on serde types.
        if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
            panic!("serde_derive: `where` clauses are not supported");
        }

        let body = if kind == "struct" {
            match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Struct(Fields::Named(parse_named_fields(g.stream())))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
                }
                // `struct Foo;`
                _ => Body::Struct(Fields::Unit),
            }
        } else {
            match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Enum(parse_variants(g.stream()))
                }
                _ => panic!("serde_derive: enum body not found"),
            }
        };

        Item {
            name,
            generics_decl,
            generics_usage,
            body,
        }
    }

    fn serialize_impl(&self) -> String {
        let body = match &self.body {
            Body::Struct(Fields::Unit) => "serde::Value::Null".to_string(),
            Body::Struct(Fields::Named(fields)) => ser_named_map(
                fields
                    .iter()
                    .map(|f| (f.clone(), format!("&self.{f}")))
                    .collect(),
            ),
            Body::Struct(Fields::Tuple(n)) => {
                ser_tuple((0..*n).map(|i| format!("&self.{i}")).collect())
            }
            Body::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let ty = &self.name;
                    let tag = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            arms.push_str(&format!(
                                "{ty}::{tag} => serde::Value::Str(\"{tag}\".to_string()),\n"
                            ));
                        }
                        Fields::Named(fields) => {
                            let binders = fields.join(", ");
                            let payload = ser_named_map(
                                fields.iter().map(|f| (f.clone(), f.clone())).collect(),
                            );
                            arms.push_str(&format!(
                                "{ty}::{tag} {{ {binders} }} => serde::Value::Map(vec![(\"{tag}\".to_string(), {payload})]),\n"
                            ));
                        }
                        Fields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = ser_tuple(binders.clone());
                            arms.push_str(&format!(
                                "{ty}::{tag}({}) => serde::Value::Map(vec![(\"{tag}\".to_string(), {payload})]),\n",
                                binders.join(", ")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        };
        format!(
            "impl{decl} serde::Serialize for {name}{usage} {{\n\
                 fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
             }}",
            decl = self.generics_decl,
            name = self.name,
            usage = self.generics_usage,
        )
    }

    fn deserialize_impl(&self) -> String {
        let ty = &self.name;
        let body = match &self.body {
            Body::Struct(Fields::Unit) => format!("let _ = __v; Ok({ty})"),
            Body::Struct(Fields::Named(fields)) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: serde::Deserialize::from_value(serde::de::field(__v, \"{ty}\", \"{f}\")?)?"
                        )
                    })
                    .collect();
                format!("Ok({ty} {{ {} }})", inits.join(", "))
            }
            Body::Struct(Fields::Tuple(1)) => {
                format!("Ok({ty}(serde::Deserialize::from_value(__v)?))")
            }
            Body::Struct(Fields::Tuple(n)) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = serde::de::seq_n(__v, \"{ty}\", {n})?;\nOk({ty}({}))",
                    inits.join(", ")
                )
            }
            Body::Enum(variants) => {
                let known: Vec<String> =
                    variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
                let mut arms = String::new();
                for v in variants {
                    let tag = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            arms.push_str(&format!("(\"{tag}\", None) => Ok({ty}::{tag}),\n"));
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(serde::de::field(__payload, \"{ty}::{tag}\", \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            arms.push_str(&format!(
                                "(\"{tag}\", Some(__payload)) => Ok({ty}::{tag} {{ {} }}),\n",
                                inits.join(", ")
                            ));
                        }
                        Fields::Tuple(1) => {
                            arms.push_str(&format!(
                                "(\"{tag}\", Some(__payload)) => Ok({ty}::{tag}(serde::Deserialize::from_value(__payload)?)),\n"
                            ));
                        }
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            arms.push_str(&format!(
                                "(\"{tag}\", Some(__payload)) => {{ let __items = serde::de::seq_n(__payload, \"{ty}::{tag}\", {n})?; Ok({ty}::{tag}({})) }},\n",
                                inits.join(", ")
                            ));
                        }
                    }
                }
                format!(
                    "let (__tag, __payload) = serde::de::enum_tag(__v, \"{ty}\")?;\n\
                     match (__tag, __payload) {{\n{arms}\
                     (__other, _) => Err(serde::de::unknown_variant(\"{ty}\", __other, &[{known}])),\n\
                     }}",
                    known = known.join(", ")
                )
            }
        };
        format!(
            "impl{decl} serde::Deserialize for {name}{usage} {{\n\
                 fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n{body}\n}}\n\
             }}",
            decl = self.generics_decl,
            name = self.name,
            usage = self.generics_usage,
        )
    }
}

fn ser_named_map(fields: Vec<(String, String)>) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|(name, expr)| format!("(\"{name}\".to_string(), serde::Serialize::to_value({expr}))"))
        .collect();
    format!("serde::Value::Map(vec![{}])", entries.join(", "))
}

fn ser_tuple(exprs: Vec<String>) -> String {
    if exprs.len() == 1 {
        // Transparent newtype, matching serde's default.
        format!("serde::Serialize::to_value({})", exprs[0])
    } else {
        let items: Vec<String> = exprs
            .iter()
            .map(|e| format!("serde::Serialize::to_value({e})"))
            .collect();
        format!("serde::Value::Seq(vec![{}])", items.join(", "))
    }
}

/// Parse the names of `{ ... }` named fields, skipping attributes,
/// visibility and the field types.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments included) before the field.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                    {
                        tokens.next();
                    }
                }
                _ => break,
            }
        }
        // Skip visibility.
        if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            tokens.next();
            if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                tokens.next();
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            Some(other) => panic!("serde_derive: expected field name, found `{other}`"),
        }
        // Consume `: Type` up to the next top-level comma. Angle brackets
        // nest via puncts; (), [] and {} arrive as opaque groups.
        let mut angle_depth = 0usize;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Count the fields of a `( ... )` tuple body: top-level commas + 1.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0usize;
    let mut any = false;
    for tt in body {
        any = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if any {
        count + 1
    } else {
        0
    }
}

/// Parse enum variants: `Name`, `Name { fields }`, `Name(types)`, comma
/// separated, attributes allowed.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                    {
                        tokens.next();
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected variant name, found `{other}`"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(stream))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                tokens.next();
                Fields::Tuple(count_tuple_fields(stream))
            }
            _ => Fields::Unit,
        };
        // Consume to the separating comma (skips `= discriminant`).
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Consume a `<...>` generic-parameter list if one immediately follows the
/// type name; returns `(decl_with_bounds, usage_names_only)`.
fn parse_generics(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> (String, String) {
    match tokens.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return (String::new(), String::new()),
    }
    tokens.next(); // consume `<`

    let mut depth = 1usize;
    let mut decl = String::from("<");
    let mut params: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut in_bounds = false;

    for tt in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ':' if depth == 1 => in_bounds = true,
                ',' if depth == 1 => {
                    if !current.is_empty() {
                        params.push(current.clone());
                        current.clear();
                    }
                    in_bounds = false;
                    decl.push(',');
                    continue;
                }
                _ => {}
            }
        }
        let piece = tt.to_string();
        decl.push_str(&piece);
        if piece != "'" {
            decl.push(' ');
        }
        if !in_bounds && piece != "const" {
            current.push_str(&piece);
        }
    }
    if !current.is_empty() {
        params.push(current);
    }
    decl.push('>');

    let usage = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(","))
    };
    (decl, usage)
}
