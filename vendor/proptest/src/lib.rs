//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the surface the workspace property tests use:
//!
//! * [`Strategy`] with integer-range strategies (`a..b`, `a..=b`),
//!   [`Strategy::prop_map`], tuple strategies, and `Just`;
//! * the [`proptest!`] macro: `#[test] fn name(x in strategy, ...) { .. }`
//!   items with an optional `#![proptest_config(..)]` header;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from real proptest: no shrinking (a failure reports the
//! drawn inputs verbatim) and generation is a fixed deterministic seed per
//! test function, so failures reproduce across runs. The per-case RNG seed
//! is printed on failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRunnerState,
    };
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not failed.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Configuration for one `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`) cases before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Map the generated value through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Size specification for a generated collection.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(strategy, 1..7)` — a vector whose length is drawn from the
    /// size range and whose elements are drawn from `strategy`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4)
);

/// Driver state shared by the expansion of one `proptest!` test function.
/// Public because the macro expansion references it; not part of the real
/// proptest API.
pub struct TestRunnerState {
    config: ProptestConfig,
    rng: SmallRng,
    passed: u32,
    rejected: u32,
    case_seed: u64,
}

impl TestRunnerState {
    /// New runner for `test_name` (the seed derives from the name, so each
    /// test function draws a distinct but reproducible sequence).
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunnerState {
            config,
            rng: SmallRng::seed_from_u64(seed),
            passed: 0,
            rejected: 0,
            case_seed: seed,
        }
    }

    /// Whether another case should run.
    pub fn more_cases(&self) -> bool {
        self.passed < self.config.cases && self.rejected < self.config.max_global_rejects
    }

    /// Start a case: returns the RNG to draw this case's inputs from.
    pub fn case_rng(&mut self) -> SmallRng {
        self.case_seed = self.rng.next_u64();
        SmallRng::seed_from_u64(self.case_seed)
    }

    /// Record a case outcome; panics (failing the `#[test]`) on `Fail`.
    pub fn record(&mut self, outcome: Result<(), TestCaseError>, inputs: &str) {
        match outcome {
            Ok(()) => self.passed += 1,
            Err(TestCaseError::Reject(_)) => self.rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case failed (case seed {:#x}):\n  inputs: {}\n  {}",
                    self.case_seed, inputs, msg
                );
            }
        }
    }

    /// Check the configured number of cases actually ran; aborts like real
    /// proptest's "too many global rejects" when `prop_assume!` discarded
    /// so many cases that the target was never reached.
    pub fn finish(&self, test_name: &str) {
        assert!(
            self.passed >= self.config.cases,
            "proptest {test_name}: too many rejected cases ({} rejected, only {} of {} passed)",
            self.rejected,
            self.passed,
            self.config.cases
        );
    }
}

/// Assert inside a proptest case; on failure the case (and test) fails
/// with the drawn inputs in the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with better diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `prop_assert!(a != b)` with better diagnostics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Define property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u32..10, y in 0usize..=4) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                #[allow(unused_imports)]
                use $crate::Strategy as _;
                let mut runner =
                    $crate::TestRunnerState::new($cfg, concat!(module_path!(), "::", stringify!($name)));
                while runner.more_cases() {
                    let mut case_rng = runner.case_rng();
                    $(let $arg = ($strat).sample(&mut case_rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        return ::core::result::Result::Ok(());
                    })();
                    runner.record(outcome, &inputs);
                }
                runner.finish(stringify!($name));
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let s = (2usize..=16).prop_map(|k| k * 4);
        for _ in 0..1000 {
            let v = s.sample(&mut rng);
            assert!(v % 4 == 0 && (8..=64).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(x in 1u32..5, y in 0usize..=3, z in (0u64..10, 1u64..2)) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(y <= 3);
            prop_assert_eq!(z.1, 1);
            prop_assert_ne!(x, 0);
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics() {
        proptest! {
            #[allow(dead_code)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
