//! Offline, API-compatible subset of `crossbeam`: scoped threads.
//!
//! `crossbeam::scope` predates `std::thread::scope`; this shim keeps the
//! crossbeam calling convention (`scope(|s| ...)` returning a
//! `thread::Result`, spawn closures taking `&Scope`) while delegating the
//! actual lifetime machinery to the standard library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result of a scope: `Err` carries the payload of a panicking worker.
pub type ScopeResult<R> = Result<R, Box<dyn Any + Send + 'static>>;

/// A scope handle; spawn borrows the enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker. The closure receives the scope (crossbeam
    /// convention) so workers can spawn further workers.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope in which borrowing worker threads can be spawned;
/// all workers are joined before `scope` returns. A panicking worker turns
/// the result into `Err` with the panic payload.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        let res = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(res.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let res = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn nested_spawn() {
        let counter = AtomicUsize::new(0);
        let res = super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        });
        assert!(res.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
