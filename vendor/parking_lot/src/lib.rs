//! Offline, API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` calling convention the workspace relies on:
//! [`Mutex::lock`] returns the guard directly (no poisoning `Result`) and
//! [`Mutex::into_inner`] returns the value directly. Like real
//! parking_lot, poisoning is ignored: a panic while holding the guard does
//! not prevent later callers from acquiring the lock (the underlying
//! `PoisonError` is unwrapped to its guard). The workspace's only
//! contended user — `parallel_map` — surfaces worker panics itself via
//! the scoped-thread join.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API shape.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API shape.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquire shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
