//! Extension scenario: tail latency of multicast operations.
//!
//! The paper derives only the *expected* multicast waiting time (Eq. 13).
//! Because the per-port waits are modelled as independent exponentials,
//! the full distribution of the last completion is available in closed
//! form — so the model can predict p95/p99 latencies, which is what an
//! SoC integrator actually budgets for. This example runs one [`Scenario`]
//! over three saturation-relative operating points and compares the
//! model's latency quantiles against the simulated latency histograms the
//! [`Runner`] retains in its structured results.
//!
//! ```text
//! cargo run --release --example tail_latency
//! ```

use quarc_noc::prelude::*;

fn main() -> Result<(), Error> {
    let topology = TopologySpec::Quarc { n: 16 };
    let workload = WorkloadSpec::new(32, 0.10, MulticastPattern::Random { group: 4 });

    // Tails need samples: double the standard measurement window.
    let mut sim = SimConfig::standard(3);
    sim.measure_cycles *= 2;
    let scenario = Scenario::new(
        "tail-latency",
        topology,
        workload,
        SweepSpec::SaturationFractions {
            fractions: vec![0.3, 0.5, 0.7],
        },
    )
    .with_sim(sim)
    .with_seed(3);
    let result = Runner::new().run(&scenario)?;

    // The per-node distribution math needs the full prediction, not just
    // the overlay means: rebuild it per point.
    let (topo, proto) = scenario.materialize()?;

    println!("== multicast tail latency: model distribution vs simulation ==\n");
    println!(
        "{:>12} {:>11} {:>9} {:>11} {:>9} {:>11} {:>9}",
        "load", "mean(mod)", "mean(sim)", "p95(mod)", "p95(sim)", "p99(mod)", "p99(sim)"
    );
    for ((p, sims), frac) in result.points.iter().zip(&result.sims).zip([0.3, 0.5, 0.7]) {
        let wl = proto.at_rate(p.rate)?;
        let pred = AnalyticModel::new(topo.as_ref(), &wl, ModelOptions::default()).evaluate()?;
        // The simulator's histogram pools operations over ALL source
        // nodes, so the comparable model quantity is the quantile of the
        // *mixture* distribution: F(t) = (1/N) Σ_j F_j(t − msg − D_j).
        let dists: Vec<(f64, quarc_noc::queueing::MaxOfExponentials)> = pred
            .per_node
            .iter()
            .map(|nm| (nm.latency - nm.waiting, nm.waiting_distribution()))
            .collect();
        let mixture_cdf = |t: f64| -> f64 {
            dists.iter().map(|(det, d)| d.cdf(t - det)).sum::<f64>() / dists.len() as f64
        };
        let q = |p: f64| -> f64 {
            let (mut lo, mut hi) = (0.0, 10_000.0);
            while hi - lo > 1e-6 * hi {
                let mid = 0.5 * (lo + hi);
                if mixture_cdf(mid) < p {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        };
        let hist = &sims[0].multicast_hist;
        println!(
            "{:>11.0}% {:>11.1} {:>9.1} {:>11.1} {:>9.1} {:>11.1} {:>9.1}",
            frac * 100.0,
            p.model_multicast,
            p.sim_multicast,
            q(0.95),
            hist.quantile(0.95),
            q(0.99),
            hist.quantile(0.99),
        );
    }
    println!("\nfinding: the means agree within a few percent, but the");
    println!("exponential port-wait assumption UNDER-predicts p95/p99 by");
    println!("~30-40% — real wormhole blocking chains are heavier-tailed");
    println!("than exponential. The Eq. 8 assumption is calibrated for the");
    println!("expectation (where it is excellent), not for tail budgeting.");
    Ok(())
}
