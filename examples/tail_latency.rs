//! Extension scenario: tail latency of multicast operations.
//!
//! The paper derives only the *expected* multicast waiting time (Eq. 13).
//! Because the per-port waits are modelled as independent exponentials,
//! the full distribution of the last completion is available in closed
//! form — so the model can predict p95/p99 latencies, which is what an
//! SoC integrator actually budgets for. This example compares the model's
//! latency quantiles against the simulated latency histogram.
//!
//! ```text
//! cargo run --release --example tail_latency
//! ```

use quarc_noc::model::max_sustainable_rate;
use quarc_noc::prelude::*;

fn main() {
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 7);
    let proto = Workload::new(32, 1e-5, 0.10, sets).unwrap();
    let sat = max_sustainable_rate(&topo, &proto, ModelOptions::default(), 0.01);

    println!("== multicast tail latency: model distribution vs simulation ==\n");
    println!(
        "{:>12} {:>11} {:>9} {:>11} {:>9} {:>11} {:>9}",
        "load", "mean(mod)", "mean(sim)", "p95(mod)", "p95(sim)", "p99(mod)", "p99(sim)"
    );
    for frac in [0.3, 0.5, 0.7] {
        let wl = proto.at_rate(sat * frac).unwrap();
        let pred = AnalyticModel::new(&topo, &wl, ModelOptions::default())
            .evaluate()
            .unwrap();
        // The simulator's histogram pools operations over ALL source
        // nodes, so the comparable model quantity is the quantile of the
        // *mixture* distribution: F(t) = (1/N) Σ_j F_j(t − msg − D_j).
        let dists: Vec<(f64, quarc_noc::queueing::MaxOfExponentials)> = pred
            .per_node
            .iter()
            .map(|nm| (nm.latency - nm.waiting, nm.waiting_distribution()))
            .collect();
        let mixture_cdf = |t: f64| -> f64 {
            dists.iter().map(|(det, d)| d.cdf(t - det)).sum::<f64>() / dists.len() as f64
        };
        let q = |p: f64| -> f64 {
            let (mut lo, mut hi) = (0.0, 10_000.0);
            while hi - lo > 1e-6 * hi {
                let mid = 0.5 * (lo + hi);
                if mixture_cdf(mid) < p {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        };
        let mut cfg = SimConfig::standard(3);
        cfg.measure_cycles *= 2; // tails need samples
        let res = Simulator::new(&topo, &wl, cfg).run();
        println!(
            "{:>11.0}% {:>11.1} {:>9.1} {:>11.1} {:>9.1} {:>11.1} {:>9.1}",
            frac * 100.0,
            pred.multicast_latency,
            res.multicast.mean,
            q(0.95),
            res.multicast_hist.quantile(0.95),
            q(0.99),
            res.multicast_hist.quantile(0.99),
        );
    }
    println!("\nfinding: the means agree within a few percent, but the");
    println!("exponential port-wait assumption UNDER-predicts p95/p99 by");
    println!("~30-40% — real wormhole blocking chains are heavier-tailed");
    println!("than exponential. The Eq. 8 assumption is calibrated for the");
    println!("expectation (where it is excellent), not for tail budgeting.");
}
