//! Domain scenario: barrier synchronization pressure.
//!
//! Barrier implementations on NoCs multicast "arrived" notifications to a
//! worker group. This example uses the analytical model to explore — in
//! milliseconds, without running a simulation per design point — how the
//! barrier group size and the share of barrier traffic move the multicast
//! latency and the saturation point of a 32-node Quarc, then spot-checks
//! two design points in simulation through a [`Scenario`] with
//! saturation-relative operating points.
//!
//! This is the workflow the paper argues analytical models enable: rapid
//! design-space exploration with simulation reserved for verification.
//!
//! ```text
//! cargo run --release --example barrier_synchronization
//! ```

use quarc_noc::model::max_sustainable_rate;
use quarc_noc::prelude::*;

fn main() -> Result<(), Error> {
    let topology = TopologySpec::Quarc { n: 32 };
    let topo = topology.build()?;
    let msg = 16u32;

    println!("== barrier multicast on a 32-node Quarc (model-driven sweep) ==\n");
    println!(
        "{:>8} {:>8} {:>14} {:>16}",
        "group", "alpha", "sat. rate", "mc lat @60% sat"
    );
    for group in [4usize, 8, 16, 31] {
        for alpha in [0.05, 0.20] {
            let proto = WorkloadSpec::new(msg, alpha, MulticastPattern::Random { group })
                .prototype(topo.as_ref(), 11)?;
            let sat = max_sustainable_rate(topo.as_ref(), &proto, ModelOptions::default(), 0.01);
            let wl = proto.at_rate(sat * 0.6)?;
            let mc = AnalyticModel::new(topo.as_ref(), &wl, ModelOptions::default())
                .evaluate()
                .map(|p| p.multicast_latency)
                .unwrap_or(f64::NAN);
            println!("{group:>8} {alpha:>8.2} {sat:>14.5} {mc:>14.1}cy");
        }
    }

    println!("\nspot-check in simulation (group=8, alpha=0.20):");
    let scenario = Scenario::new(
        "barrier-spot-check",
        topology,
        WorkloadSpec::new(msg, 0.20, MulticastPattern::Random { group: 8 }),
        SweepSpec::SaturationFractions {
            fractions: vec![0.4, 0.8],
        },
    )
    .with_sim(SimConfig::quick(5))
    .with_seed(11);
    let result = Runner::new().run(&scenario)?;
    for (p, frac) in result.points.iter().zip([0.4, 0.8]) {
        println!(
            "  {:>4.0}% of saturation: model {:>7.1}cy  sim {:>7.1}cy  (err {:+.1}%)",
            frac * 100.0,
            p.model_multicast,
            p.sim_multicast,
            (p.model_multicast - p.sim_multicast) / p.sim_multicast * 100.0
        );
    }

    println!("\ntakeaway: widening the barrier group mostly costs saturation");
    println!("headroom (more port streams, more rim occupancy), while latency");
    println!("at fixed relative load grows slowly — the asynchronous port");
    println!("streams hide most of the extra fan-out.");
    Ok(())
}
