//! Domain scenario: barrier synchronization pressure.
//!
//! Barrier implementations on NoCs multicast "arrived" notifications to a
//! worker group. This example uses the analytical model to explore — in
//! milliseconds, without running a simulation per design point — how the
//! barrier group size and the share of barrier traffic move the multicast
//! latency and the saturation point of a 32-node Quarc, then spot-checks
//! two design points in simulation through a [`Scenario`] with
//! saturation-relative operating points.
//!
//! This is the workflow the paper argues analytical models enable: rapid
//! design-space exploration with simulation reserved for verification.
//!
//! The open-loop sweep approximates barrier traffic as a Poisson stream —
//! a rate knob no real barrier has. The last section runs the *actual*
//! protocol through the closed-loop subsystem: a radix-2 fan-in tree per
//! round, a broadcast release from the root, and per-node compute delays,
//! with injections triggered by deliveries instead of a rate.
//!
//! ```text
//! cargo run --release --example barrier_synchronization
//! ```

use quarc_noc::model::max_sustainable_rate;
use quarc_noc::prelude::*;

fn main() -> Result<(), Error> {
    let topology = TopologySpec::Quarc { n: 32 };
    let topo = topology.build()?;
    let msg = 16u32;

    println!("== barrier multicast on a 32-node Quarc (model-driven sweep) ==\n");
    println!(
        "{:>8} {:>8} {:>14} {:>16}",
        "group", "alpha", "sat. rate", "mc lat @60% sat"
    );
    for group in [4usize, 8, 16, 31] {
        for alpha in [0.05, 0.20] {
            let proto = WorkloadSpec::new(msg, alpha, MulticastPattern::Random { group })
                .prototype(topo.as_ref(), 11)?;
            let sat = max_sustainable_rate(topo.as_ref(), &proto, ModelOptions::default(), 0.01);
            let wl = proto.at_rate(sat * 0.6)?;
            let mc = AnalyticModel::new(topo.as_ref(), &wl, ModelOptions::default())
                .evaluate()
                .map(|p| p.multicast_latency)
                .unwrap_or(f64::NAN);
            println!("{group:>8} {alpha:>8.2} {sat:>14.5} {mc:>14.1}cy");
        }
    }

    println!("\nspot-check in simulation (group=8, alpha=0.20):");
    let scenario = Scenario::new(
        "barrier-spot-check",
        topology,
        WorkloadSpec::new(msg, 0.20, MulticastPattern::Random { group: 8 }),
        SweepSpec::SaturationFractions {
            fractions: vec![0.4, 0.8],
        },
    )
    .with_sim(SimConfig::quick(5))
    .with_seed(11);
    let result = Runner::new().run(&scenario)?;
    for (p, frac) in result.points.iter().zip([0.4, 0.8]) {
        println!(
            "  {:>4.0}% of saturation: model {:>7.1}cy  sim {:>7.1}cy  (err {:+.1}%)",
            frac * 100.0,
            p.model_multicast,
            p.sim_multicast,
            (p.model_multicast - p.sim_multicast) / p.sim_multicast * 100.0
        );
    }

    println!("\ntakeaway: widening the barrier group mostly costs saturation");
    println!("headroom (more port streams, more rim occupancy), while latency");
    println!("at fixed relative load grows slowly — the asynchronous port");
    println!("streams hide most of the extra fan-out.");

    // The open-loop scenarios above stay as regression inputs; the real
    // barrier is a closed-loop protocol the rate approximation cannot
    // express: each round completes only when the fan-in tree has
    // converged and the root's release broadcast has landed everywhere.
    println!("\n== the same barrier as a real closed-loop protocol ==\n");
    let rounds = 8u32;
    let closed = Scenario::new(
        "barrier-closed-loop",
        TopologySpec::Quarc { n: 32 },
        WorkloadSpec::new(msg, 0.0, MulticastPattern::Broadcast).with_closed_loop(
            ClosedLoopSpec::Barrier {
                rounds,
                radix: 2,
                compute: 16,
            },
        ),
        SweepSpec::Explicit { rates: vec![0.0] },
    )
    .with_sim(SimConfig::quick(5))
    .with_model(None)
    .with_seed(11);
    let result = Runner::new().run(&closed)?;
    let cl = result.sims[0][0]
        .closed_loop
        .as_ref()
        .expect("closed-loop scenario stamps protocol results");
    assert!(cl.quiesced, "the barrier must complete all rounds");
    println!("  {rounds} rounds, radix-2 fan-in tree, <=16cy compute per round:");
    println!(
        "  mean per-node round completion {:>7.1}cy  (95% CI +-{:.1})",
        cl.completion.mean, cl.completion.ci95
    );
    println!(
        "  all rounds done at cycle {} - {:.2} retirements per kilocycle",
        cl.quiesce_cycle,
        cl.ops_per_cycle * 1000.0
    );
    println!("\nthe closed-loop number is a *round time*, not a message latency:");
    println!("it includes the tree convergence, the release broadcast and the");
    println!("compute skew the open-loop approximation above cannot see.");
    Ok(())
}
