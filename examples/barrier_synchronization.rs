//! Domain scenario: barrier synchronization pressure.
//!
//! Barrier implementations on NoCs multicast "arrived" notifications to a
//! worker group. This example uses the analytical model to explore — in
//! milliseconds, without running a simulation per design point — how the
//! barrier group size and the share of barrier traffic move the multicast
//! latency and the saturation point of a 32-node Quarc, then spot-checks
//! two design points in simulation.
//!
//! This is the workflow the paper argues analytical models enable: rapid
//! design-space exploration with simulation reserved for verification.
//!
//! ```text
//! cargo run --release --example barrier_synchronization
//! ```

use quarc_noc::model::max_sustainable_rate;
use quarc_noc::prelude::*;

fn main() {
    let topo = Quarc::new(32).unwrap();
    let msg = 16u32;

    println!("== barrier multicast on a 32-node Quarc (model-driven sweep) ==\n");
    println!(
        "{:>8} {:>8} {:>14} {:>16}",
        "group", "alpha", "sat. rate", "mc lat @60% sat"
    );
    for group in [4usize, 8, 16, 31] {
        for alpha in [0.05, 0.20] {
            let sets = DestinationSets::random(&topo, group, 11);
            let proto = Workload::new(msg, 1e-5, alpha, sets).unwrap();
            let sat = max_sustainable_rate(&topo, &proto, ModelOptions::default(), 0.01);
            let wl = proto.at_rate(sat * 0.6).unwrap();
            let mc = AnalyticModel::new(&topo, &wl, ModelOptions::default())
                .evaluate()
                .map(|p| p.multicast_latency)
                .unwrap_or(f64::NAN);
            println!("{group:>8} {alpha:>8.2} {sat:>14.5} {mc:>14.1}cy");
        }
    }

    println!("\nspot-check in simulation (group=8, alpha=0.20):");
    let sets = DestinationSets::random(&topo, 8, 11);
    let proto = Workload::new(msg, 1e-5, 0.20, sets).unwrap();
    let sat = max_sustainable_rate(&topo, &proto, ModelOptions::default(), 0.01);
    for frac in [0.4, 0.8] {
        let wl = proto.at_rate(sat * frac).unwrap();
        let pred = AnalyticModel::new(&topo, &wl, ModelOptions::default())
            .evaluate()
            .unwrap();
        let res = Simulator::new(&topo, &wl, SimConfig::quick(5)).run();
        println!(
            "  {:>4.0}% of saturation: model {:>7.1}cy  sim {:>7.1}cy  (err {:+.1}%)",
            frac * 100.0,
            pred.multicast_latency,
            res.multicast.mean,
            (pred.multicast_latency - res.multicast.mean) / res.multicast.mean * 100.0
        );
    }

    println!("\ntakeaway: widening the barrier group mostly costs saturation");
    println!("headroom (more port streams, more rim occupancy), while latency");
    println!("at fixed relative load grows slowly — the asynchronous port");
    println!("streams hide most of the extra fan-out.");
}
