//! Bursty traffic: the traffic subsystem end-to-end.
//!
//! Runs the same operating point twice on a 16-node Quarc — once with the
//! paper's memoryless (Poisson) source, once with an on/off bursty source
//! whose long-run mean rate is identical — and shows the simulated
//! latency diverging from the Poisson-based model while the runner flags
//! the overlay as out-of-domain. Then records the Poisson run's arrival
//! trace and replays it through [`TrafficSpec::Trace`], reproducing the
//! run bit-for-bit.
//!
//! ```text
//! cargo run --release --example bursty_traffic
//! ```

use quarc_noc::prelude::*;

fn main() -> Result<(), Error> {
    let base = Scenario::new(
        "bursty-poisson",
        TopologySpec::Quarc { n: 16 },
        WorkloadSpec::new(16, 0.05, MulticastPattern::Random { group: 4 }),
        SweepSpec::Explicit { rates: vec![0.008] },
    )
    .with_sim(SimConfig::quick(1))
    .with_seed(7);

    // 1. Same mean rate, different shape: bursts of ~16 messages at a
    //    peak rate of 0.25 msg/cycle, silent in between.
    let mut bursty = base.clone();
    bursty.name = "bursty-onoff".into();
    bursty.workload.traffic = TrafficSpec::OnOff {
        burst_len: 16.0,
        peak_rate: 0.25,
    };

    let runner = Runner::new();
    let poisson_run = runner.run(&base)?;
    let bursty_run = runner.run(&bursty)?;
    let (p, b) = (&poisson_run.points[0], &bursty_run.points[0]);
    println!("operating point: rate 0.008 msg/node/cycle, alpha 5%, 16-flit messages\n");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>17}",
        "traffic", "model_mc", "sim_mc", "divergence%", "model_applicable"
    );
    for (label, point) in [("poisson", p), ("on/off", b)] {
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>12.1} {:>17}",
            label,
            point.model_multicast,
            point.sim_multicast,
            point.multicast_error().map_or(f64::NAN, |e| e * 100.0),
            if point.model_applicable { "yes" } else { "no" },
        );
    }
    assert!(
        b.sim_multicast > p.sim_multicast,
        "bursty arrivals must queue longer at the same mean rate"
    );

    // 2. Record -> replay: capture the arrival trace of the Poisson run
    //    and re-run it as a deterministic trace. The replay reproduces
    //    the original run exactly.
    let (topo, proto) = base.materialize()?;
    let wl = proto.at_rate(0.008)?;
    let cycles = poisson_run.sims[0][0].cycles;
    let trace = record_trace(&wl, topo.num_nodes(), base.seed, cycles);
    println!(
        "\nrecorded {} arrivals over {} cycles; replaying...",
        trace.len(),
        cycles
    );

    let mut replay = base.clone();
    replay.name = "bursty-replay".into();
    replay.workload.traffic = TrafficSpec::trace(trace);
    let replay_run = runner.run(&replay)?;
    let (orig, back) = (&poisson_run.sims[0][0], &replay_run.sims[0][0]);
    assert_eq!(orig.cycles, back.cycles);
    assert_eq!(orig.flit_moves, back.flit_moves);
    assert_eq!(orig.multicast.mean.to_bits(), back.multicast.mean.to_bits());
    println!(
        "replay is bit-identical: {} cycles, {} flit moves, multicast latency {:.4}",
        back.cycles, back.flit_moves, back.multicast.mean
    );
    Ok(())
}
