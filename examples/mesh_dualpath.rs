//! Domain scenario: the paper's future work — multicast on a multi-port
//! mesh/torus (NoC for a tiled accelerator).
//!
//! Applies the same model + simulator pair to a 4×4 mesh and torus with XY
//! unicast routing and dual-path Hamiltonian multicast (two asynchronous
//! streams, the `m = 2` case of the max-of-exponentials combination).
//!
//! ```text
//! cargo run --release --example mesh_dualpath
//! ```

use quarc_noc::prelude::*;

fn run(topo: &Mesh) {
    let sets = DestinationSets::random(topo, 4, 3);
    println!("-- {} {}x{} --", topo.name(), topo.width(), topo.height());
    for rate in [0.002, 0.006] {
        let wl = Workload::new(32, rate, 0.1, sets.clone()).unwrap();
        let model = AnalyticModel::new(topo, &wl, ModelOptions::default());
        let (mu, mm) = match model.evaluate() {
            Ok(p) => (p.unicast_latency, p.multicast_latency),
            Err(e) => {
                println!("  rate {rate:.3}: model saturated ({e})");
                continue;
            }
        };
        let res = Simulator::new(topo, &wl, SimConfig::quick(9)).run();
        println!(
            "  rate {rate:.3}: model uni {mu:>6.1} / mc {mm:>6.1}   sim uni {:>6.1} / mc {:>6.1}",
            res.unicast.mean, res.multicast.mean
        );
    }
}

fn main() {
    println!("== dual-path Hamiltonian multicast on mesh and torus ==\n");
    let mesh = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
    run(&mesh);
    let torus = Mesh::new(4, 4, MeshKind::Torus).unwrap();
    run(&torus);
    println!("\nthe model transfers: the same Eq. 6 fixed point and Eq. 13");
    println!("max-of-exponentials combination predict mesh/torus multicast,");
    println!("validating the paper's proposed extension.");
}
