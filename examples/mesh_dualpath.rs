//! Domain scenario: the paper's future work — multicast on a multi-port
//! mesh/torus (NoC for a tiled accelerator).
//!
//! Applies the same model + simulator pair to a 4×4 mesh and torus with XY
//! unicast routing and dual-path Hamiltonian multicast (two asynchronous
//! streams, the `m = 2` case of the max-of-exponentials combination).
//! The two networks share one [`Scenario`] shape — only the
//! [`TopologySpec`] differs.
//!
//! ```text
//! cargo run --release --example mesh_dualpath
//! ```

use quarc_noc::prelude::*;

fn run(topology: TopologySpec) -> Result<(), Error> {
    let scenario = Scenario::new(
        format!("dualpath-{topology}"),
        topology,
        WorkloadSpec::new(32, 0.1, MulticastPattern::Random { group: 4 }),
        SweepSpec::Explicit {
            rates: vec![0.002, 0.006],
        },
    )
    .with_sim(SimConfig::quick(9))
    .with_seed(3);
    println!("-- {topology} --");
    let result = Runner::new().run(&scenario)?;
    for p in &result.points {
        if p.model_multicast.is_finite() {
            println!(
                "  rate {:.3}: model uni {:>6.1} / mc {:>6.1}   sim uni {:>6.1} / mc {:>6.1}",
                p.rate, p.model_unicast, p.model_multicast, p.sim_unicast, p.sim_multicast
            );
        } else {
            println!("  rate {:.3}: model saturated", p.rate);
        }
    }
    Ok(())
}

fn main() -> Result<(), Error> {
    println!("== dual-path Hamiltonian multicast on mesh and torus ==\n");
    run(TopologySpec::Mesh {
        width: 4,
        height: 4,
    })?;
    run(TopologySpec::Torus {
        width: 4,
        height: 4,
    })?;
    println!("\nthe model transfers: the same Eq. 6 fixed point and Eq. 13");
    println!("max-of-exponentials combination predict mesh/torus multicast,");
    println!("validating the paper's proposed extension.");
    Ok(())
}
