//! Quickstart: predict and measure multicast latency on a Quarc NoC.
//!
//! Describes a 16-node Quarc with 32-flit messages and 5% multicast
//! traffic as a declarative [`Scenario`], round-trips the spec through
//! JSON, and executes it with the shared [`Runner`]: the paper's
//! analytical model is evaluated at three operating points and each
//! prediction is validated against the flit-level simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use quarc_noc::prelude::*;

fn main() -> Result<(), Error> {
    // 1. The whole experiment as data: topology (by registry spec),
    //    workload, operating points, simulator fidelity, master seed.
    let scenario = Scenario::new(
        "quickstart",
        TopologySpec::Quarc { n: 16 },
        WorkloadSpec::new(32, 0.05, MulticastPattern::Random { group: 4 }),
        SweepSpec::Explicit {
            rates: vec![0.002, 0.005, 0.008],
        },
    )
    .with_sim(SimConfig::quick(1))
    .with_seed(7);

    // 2. Scenarios serialize: store them next to results, share them,
    //    re-run them bit-identically.
    let json = scenario.to_json();
    let scenario = Scenario::from_json(&json)?;
    println!("scenario `{}` on {}:\n", scenario.name, scenario.topology);

    // 3. One runner executes any scenario: analytical prediction
    //    (Eq. 3-16 of the paper) plus simulation ground truth per point.
    let result = Runner::new().run(&scenario)?;

    println!(
        "{:>9}  {:>10} {:>10}  {:>10} {:>10}",
        "rate", "model_uni", "sim_uni", "model_mc", "sim_mc"
    );
    for p in &result.points {
        println!(
            "{:>9.4}  {:>10.2} {:>10.2}  {:>10.2} {:>10.2}",
            p.rate, p.model_unicast, p.sim_unicast, p.model_multicast, p.sim_multicast,
        );
    }
    println!("\nmodel and simulation agree to within a few percent below saturation.");
    Ok(())
}
