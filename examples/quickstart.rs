//! Quickstart: predict and measure multicast latency on a Quarc NoC.
//!
//! Builds a 16-node Quarc with 32-flit messages and 5% multicast traffic,
//! evaluates the paper's analytical model at three operating points and
//! validates each prediction against the flit-level simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use quarc_noc::prelude::*;

fn main() {
    // 1. Topology: a 16-node Quarc (4 ports per router, doubled cross
    //    links, absorb-and-forward multicast).
    let topo = Quarc::new(16).expect("N must be a multiple of 4");
    println!(
        "topology: {} nodes, {} ports/router, diameter {} links",
        topo.num_nodes(),
        topo.num_ports(),
        topo.diameter()
    );

    // 2. Workload: every node multicasts to a fixed random group of 4
    //    destinations; 5% of generated messages are multicast.
    let sets = DestinationSets::random(&topo, 4, 7);
    println!("mean multicast group size: {}", sets.mean_group_size());

    println!(
        "\n{:>9}  {:>10} {:>10}  {:>10} {:>10}",
        "rate", "model_uni", "sim_uni", "model_mc", "sim_mc"
    );
    for rate in [0.002, 0.005, 0.008] {
        let workload = Workload::new(32, rate, 0.05, sets.clone()).expect("valid workload");

        // 3. Analytical prediction (Eq. 3-16 of the paper).
        let model = AnalyticModel::new(&topo, &workload, ModelOptions::default());
        let pred: Prediction = model.evaluate().expect("below saturation");

        // 4. Simulation ground truth (cycle-accurate wormhole).
        let mut sim = Simulator::new(&topo, &workload, SimConfig::quick(1));
        let measured = sim.run();

        println!(
            "{rate:>9.4}  {:>10.2} {:>10.2}  {:>10.2} {:>10.2}",
            pred.unicast_latency,
            measured.unicast.mean,
            pred.multicast_latency,
            measured.multicast.mean,
        );
    }
    println!("\nmodel and simulation agree to within a few percent below saturation.");
}
