//! Domain scenario: chip-wide cache-line invalidation broadcasts.
//!
//! A directory-less coherence protocol broadcasts invalidations to every
//! core. This example compares how the Quarc's hardware broadcast scales
//! against the Spidergon's broadcast-by-consecutive-unicast as the chip
//! grows from 8 to 64 cores, first on an idle interconnect and then with
//! background read/write (unicast) traffic — the situation the paper's
//! introduction motivates: collective operations forming part of overall
//! traffic.
//!
//! ```text
//! cargo run --release --example cache_coherence_broadcast
//! ```

use quarc_noc::prelude::*;

/// Invalidation payload: an 16-flit message (address + bitmask + control).
const INVALIDATION_FLITS: u32 = 16;

fn idle_broadcast(topo: &dyn Topology, seed: u64) -> u64 {
    let sets = DestinationSets::broadcast(topo);
    let wl = Workload::new(INVALIDATION_FLITS, 0.0, 0.0, sets).unwrap();
    let mut sim = Simulator::new(topo, &wl, SimConfig::quick(seed));
    sim.measure_isolated_multicast(NodeId(0))
}

fn loaded_broadcast_latency(topo: &dyn Topology, unicast_rate: f64, seed: u64) -> (f64, bool) {
    // 2% of messages are invalidation broadcasts riding on top of regular
    // read/write unicast traffic.
    let sets = DestinationSets::broadcast(topo);
    let wl = Workload::new(INVALIDATION_FLITS, unicast_rate, 0.02, sets).unwrap();
    let mut sim = Simulator::new(topo, &wl, SimConfig::quick(seed));
    let res = sim.run();
    (res.multicast.mean, res.saturated)
}

fn main() {
    println!("== cache-line invalidation broadcast: Quarc vs Spidergon ==\n");
    println!(
        "{:>6} {:>14} {:>18} {:>9}",
        "cores", "quarc (idle)", "spidergon (idle)", "speedup"
    );
    for n in [8usize, 16, 32, 64] {
        let quarc = Quarc::new(n).unwrap();
        let spidergon = Spidergon::new(n).unwrap();
        let q = idle_broadcast(&quarc, 1);
        let s = idle_broadcast(&spidergon, 1);
        println!("{n:>6} {q:>12}cy {s:>16}cy {:>8.1}x", s as f64 / q as f64);
    }

    println!("\nwith background unicast load (16-core chip):");
    println!("{:>12} {:>16} {:>10}", "load", "bcast latency", "saturated");
    let quarc = Quarc::new(16).unwrap();
    for rate in [0.001, 0.004, 0.007] {
        let (lat, sat) = loaded_broadcast_latency(&quarc, rate, 2);
        println!(
            "{rate:>12.3} {lat:>14.1}cy {:>10}",
            if sat { "yes" } else { "no" }
        );
    }
    println!("\nthe Quarc absorbs invalidations in N/4 hops; the Spidergon's");
    println!("unicast train scales linearly with core count and congests its");
    println!("single injection port.");
}
