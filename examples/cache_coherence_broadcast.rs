//! Domain scenario: chip-wide cache-line invalidation broadcasts.
//!
//! A directory-less coherence protocol broadcasts invalidations to every
//! core. This example compares how the Quarc's hardware broadcast scales
//! against the Spidergon's broadcast-by-consecutive-unicast as the chip
//! grows from 8 to 64 cores, first on an idle interconnect and then with
//! background read/write (unicast) traffic — the situation the paper's
//! introduction motivates: collective operations forming part of overall
//! traffic. Every measurement is a broadcast [`Scenario`] executed by the
//! shared [`Runner`].
//!
//! ```text
//! cargo run --release --example cache_coherence_broadcast
//! ```

use quarc_noc::prelude::*;

/// Invalidation payload: a 16-flit message (address + bitmask + control).
const INVALIDATION_FLITS: u32 = 16;

/// The broadcast scenario of one `(topology, background unicast rate)`
/// cell: 2% of messages are invalidation broadcasts riding on top of
/// regular read/write unicast traffic.
fn broadcast_scenario(topology: TopologySpec, unicast_rate: f64, seed: u64) -> Scenario {
    Scenario::new(
        format!("invalidation-{topology}"),
        topology,
        WorkloadSpec::new(
            INVALIDATION_FLITS,
            if unicast_rate > 0.0 { 0.02 } else { 0.0 },
            MulticastPattern::Broadcast,
        ),
        SweepSpec::Explicit {
            rates: if unicast_rate > 0.0 {
                vec![unicast_rate]
            } else {
                vec![]
            },
        },
    )
    .with_sim(SimConfig::quick(seed))
    .with_model(None)
    .with_seed(seed)
}

fn idle_broadcast(topology: TopologySpec, seed: u64) -> Result<u64, Error> {
    Runner::new().isolated_multicast(&broadcast_scenario(topology, 0.0, seed), NodeId(0))
}

fn main() -> Result<(), Error> {
    println!("== cache-line invalidation broadcast: Quarc vs Spidergon ==\n");
    println!(
        "{:>6} {:>14} {:>18} {:>9}",
        "cores", "quarc (idle)", "spidergon (idle)", "speedup"
    );
    for n in [8usize, 16, 32, 64] {
        let q = idle_broadcast(TopologySpec::Quarc { n }, 1)?;
        let s = idle_broadcast(TopologySpec::Spidergon { n }, 1)?;
        println!("{n:>6} {q:>12}cy {s:>16}cy {:>8.1}x", s as f64 / q as f64);
    }

    println!("\nwith background unicast load (16-core chip):");
    println!("{:>12} {:>16} {:>10}", "load", "bcast latency", "saturated");
    let runner = Runner::new();
    for rate in [0.001, 0.004, 0.007] {
        let sc = broadcast_scenario(TopologySpec::Quarc { n: 16 }, rate, 2);
        let result = runner.run(&sc)?;
        let p = &result.points[0];
        println!(
            "{rate:>12.3} {:>14.1}cy {:>10}",
            p.sim_multicast,
            if p.sim_saturated { "yes" } else { "no" }
        );
    }
    println!("\nthe Quarc absorbs invalidations in N/4 hops; the Spidergon's");
    println!("unicast train scales linearly with core count and congests its");
    println!("single injection port.");

    // The background-load scenarios above stay as open-loop regression
    // inputs; the real protocol is closed-loop — a writer may only have
    // `window` lines in flight, and every invalidation broadcast must be
    // acked by all sharers before the write retires. Here every request
    // is a write, so each one is a full broadcast + converging ack wave.
    println!("\nreal invalidation protocol (closed loop, 16-core chip):");
    println!(
        "{:>8} {:>16} {:>14} {:>12}",
        "window", "write latency", "outstanding", "writes/kcy"
    );
    for window in [1u32, 2, 4] {
        let sc = Scenario::new(
            format!("invalidation-closed-w{window}"),
            TopologySpec::Quarc { n: 16 },
            WorkloadSpec::new(INVALIDATION_FLITS, 0.0, MulticastPattern::Broadcast)
                .with_closed_loop(ClosedLoopSpec::Coherence {
                    window,
                    requests: 32,
                    write_fraction: 1.0,
                }),
            SweepSpec::Explicit { rates: vec![0.0] },
        )
        .with_sim(SimConfig::quick(2))
        .with_model(None)
        .with_seed(2);
        let result = Runner::new().run(&sc)?;
        let cl = result.sims[0][0]
            .closed_loop
            .as_ref()
            .expect("closed-loop scenario stamps protocol results");
        assert!(cl.quiesced, "every write must retire");
        println!(
            "{window:>8} {:>14.1}cy {:>14.2} {:>12.2}",
            cl.completion.mean,
            cl.avg_outstanding,
            cl.ops_per_cycle * 1000.0
        );
    }
    println!("\nthe ack wave, not the broadcast, bounds the write latency: all");
    println!("15 sharers answer through the requester's ejection channels, so");
    println!("widening the window piles latency onto every write while the");
    println!("retirement rate barely moves — the network is already full.");
    Ok(())
}
