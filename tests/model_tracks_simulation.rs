//! Integration: the paper's central claim — the analytical model tracks
//! the flit-level simulation closely below saturation, for both random
//! (Fig. 6) and localized (Fig. 7) destination patterns, across network
//! sizes, message lengths and multicast fractions.
//!
//! Tolerances are loose enough for short CI simulations yet tight enough
//! to catch structural regressions (a broken correction factor or a
//! misrouted stream moves errors far beyond them).

use quarc_noc::model::{max_sustainable_rate, AnalyticModel, ModelOptions};
use quarc_noc::prelude::*;
use quarc_noc::sim::{SimConfig, Simulator};

struct Agreement {
    unicast_err: f64,
    multicast_err: f64,
}

fn compare(topo: &dyn Topology, proto: &Workload, load_frac: f64, seed: u64) -> Agreement {
    let sat = max_sustainable_rate(topo, proto, ModelOptions::default(), 0.01);
    assert!(sat > 0.0, "must find a positive saturation rate");
    let wl = proto.at_rate(sat * load_frac).unwrap();
    let pred = AnalyticModel::new(topo, &wl, ModelOptions::default())
        .evaluate()
        .expect("operating point below saturation");
    let res = Simulator::new(topo, &wl, SimConfig::quick(seed)).run();
    assert!(
        !res.saturated,
        "simulation must not saturate at {load_frac} of model sat"
    );
    assert!(res.unicast.count > 100, "need unicast samples");
    assert!(res.multicast.count > 10, "need multicast samples");
    Agreement {
        unicast_err: (pred.unicast_latency - res.unicast.mean).abs() / res.unicast.mean,
        multicast_err: (pred.multicast_latency - res.multicast.mean).abs() / res.multicast.mean,
    }
}

#[test]
fn quarc16_random_destinations_low_load() {
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 3);
    let proto = Workload::new(32, 1e-5, 0.05, sets).unwrap();
    let a = compare(&topo, &proto, 0.35, 17);
    assert!(a.unicast_err < 0.08, "unicast error {:.3}", a.unicast_err);
    assert!(
        a.multicast_err < 0.12,
        "multicast error {:.3}",
        a.multicast_err
    );
}

#[test]
fn quarc16_localized_destinations_low_load() {
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::localized(&topo, 3, 3);
    let proto = Workload::new(32, 1e-5, 0.05, sets).unwrap();
    let a = compare(&topo, &proto, 0.35, 19);
    assert!(a.unicast_err < 0.08, "unicast error {:.3}", a.unicast_err);
    assert!(
        a.multicast_err < 0.12,
        "multicast error {:.3}",
        a.multicast_err
    );
}

#[test]
fn quarc32_long_messages_high_alpha() {
    let topo = Quarc::new(32).unwrap();
    let sets = DestinationSets::random(&topo, 8, 5);
    let proto = Workload::new(64, 1e-5, 0.10, sets).unwrap();
    let a = compare(&topo, &proto, 0.4, 23);
    assert!(a.unicast_err < 0.10, "unicast error {:.3}", a.unicast_err);
    assert!(
        a.multicast_err < 0.15,
        "multicast error {:.3}",
        a.multicast_err
    );
}

#[test]
fn quarc16_short_messages() {
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 7);
    let proto = Workload::new(16, 1e-5, 0.03, sets).unwrap();
    let a = compare(&topo, &proto, 0.4, 29);
    assert!(a.unicast_err < 0.10, "unicast error {:.3}", a.unicast_err);
    assert!(
        a.multicast_err < 0.15,
        "multicast error {:.3}",
        a.multicast_err
    );
}

#[test]
fn ring_two_ports_tracks_simulation() {
    let topo = Ring::new(12).unwrap();
    let sets = DestinationSets::random(&topo, 4, 9);
    let proto = Workload::new(32, 1e-5, 0.08, sets).unwrap();
    let a = compare(&topo, &proto, 0.35, 31);
    assert!(a.unicast_err < 0.10, "unicast error {:.3}", a.unicast_err);
    assert!(
        a.multicast_err < 0.15,
        "multicast error {:.3}",
        a.multicast_err
    );
}

#[test]
fn mesh_dual_path_tracks_simulation() {
    let topo = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
    let sets = DestinationSets::random(&topo, 4, 13);
    let proto = Workload::new(32, 1e-5, 0.08, sets).unwrap();
    let a = compare(&topo, &proto, 0.35, 37);
    assert!(a.unicast_err < 0.10, "unicast error {:.3}", a.unicast_err);
    assert!(
        a.multicast_err < 0.15,
        "multicast error {:.3}",
        a.multicast_err
    );
}

#[test]
fn spidergon_one_port_unicast_tracks_simulation() {
    // The unicast core of the model is the authors' earlier Spidergon
    // model (AINA 2007) that Eq. 6 cites; it must hold on the original
    // one-port Spidergon too (unicast only — one-port multicast is a
    // serialised train the multi-port model rightly refuses).
    let topo = Spidergon::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 21);
    let proto = Workload::new(32, 1e-5, 0.0, sets).unwrap();
    let sat = max_sustainable_rate(&topo, &proto, ModelOptions::default(), 0.01);
    let wl = proto.at_rate(sat * 0.35).unwrap();
    let pred = AnalyticModel::new(&topo, &wl, ModelOptions::default())
        .evaluate()
        .unwrap();
    let res = Simulator::new(&topo, &wl, SimConfig::quick(47)).run();
    assert!(!res.saturated);
    let err = (pred.unicast_latency - res.unicast.mean).abs() / res.unicast.mean;
    assert!(err < 0.08, "spidergon unicast error {err:.3}");
}

#[test]
fn hypercube_unicast_tracks_simulation() {
    // The hypercube validates the unicast core on the topology family of
    // the paper's ref.\[18\]. Multicast (Gray-code dual path) is looser —
    // its long Hamiltonian paths interleave with unicast on shared links,
    // which the per-channel M/G/1 abstraction only approximates — so this
    // test pins the unicast side tightly and the multicast side loosely.
    let topo = Hypercube::new(4).unwrap();
    let sets = DestinationSets::random(&topo, 4, 15);
    let proto = Workload::new(32, 1e-5, 0.05, sets).unwrap();
    let a = compare(&topo, &proto, 0.35, 43);
    assert!(a.unicast_err < 0.08, "unicast error {:.3}", a.unicast_err);
    assert!(
        a.multicast_err < 0.35,
        "multicast error {:.3}",
        a.multicast_err
    );
}

#[test]
fn per_node_predictions_track_per_source_measurements() {
    // Eq. 14 gives a latency per source node, not just the network
    // average; localized destination sets make nodes genuinely different
    // (stream depths vary by quadrant draw), and the simulator's
    // per-source means must follow the model's per-node predictions.
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::localized(&topo, 3, 8);
    let proto = Workload::new(32, 1e-5, 0.15, sets).unwrap();
    let sat = max_sustainable_rate(&topo, &proto, ModelOptions::default(), 0.01);
    let wl = proto.at_rate(sat * 0.4).unwrap();
    let pred = AnalyticModel::new(&topo, &wl, ModelOptions::default())
        .evaluate()
        .unwrap();
    let mut cfg = SimConfig::quick(53);
    cfg.measure_cycles *= 4; // per-source populations need more samples
    let res = Simulator::new(&topo, &wl, cfg).run();

    let mut pairs = Vec::new();
    for nm in &pred.per_node {
        let s = &res.multicast_by_source[nm.node.idx()];
        if s.count >= 20 {
            pairs.push((nm.latency, s.mean));
        }
    }
    assert!(pairs.len() >= 12, "need per-source samples on most nodes");
    // Mean absolute relative error across nodes.
    let mare: f64 = pairs.iter().map(|(m, s)| (m - s).abs() / s).sum::<f64>() / pairs.len() as f64;
    assert!(mare < 0.15, "per-node mean abs rel error {mare:.3}");
    // The model must rank nodes sensibly: the deepest-stream node should
    // not be predicted faster than the shallowest-stream node measured.
    let (model_max, sim_at_model_max) = pairs
        .iter()
        .cloned()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .unwrap();
    let (model_min, sim_at_model_min) = pairs
        .iter()
        .cloned()
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .unwrap();
    if model_max > model_min + 2.0 {
        assert!(
            sim_at_model_max > sim_at_model_min,
            "per-node ordering should be preserved at the extremes"
        );
    }
}

#[test]
fn model_is_conservative_near_its_knee() {
    // Close to the model's saturation horizon the prediction grows faster
    // than the simulation (the model's knee comes first) — the documented
    // direction of divergence, matching the paper's curves.
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 3);
    let proto = Workload::new(32, 1e-5, 0.05, sets).unwrap();
    let sat = max_sustainable_rate(&topo, &proto, ModelOptions::default(), 0.01);
    let wl = proto.at_rate(sat * 0.95).unwrap();
    let pred = AnalyticModel::new(&topo, &wl, ModelOptions::default())
        .evaluate()
        .unwrap();
    let res = Simulator::new(&topo, &wl, SimConfig::quick(41)).run();
    assert!(
        pred.multicast_latency > res.multicast.mean * 0.9,
        "near the knee the model should not underestimate grossly: model {} sim {}",
        pred.multicast_latency,
        res.multicast.mean
    );
}
