//! Integration: at zero load the analytical model and the flit-level
//! simulator must agree *exactly* — latency is `msg + D` with no queueing,
//! and both sides define `D` as channel traversals minus one.
//!
//! This pins the timing conventions of the two implementations to each
//! other across every topology.

use quarc_noc::model::{AnalyticModel, ModelOptions};
use quarc_noc::prelude::*;
use quarc_noc::sim::{SimConfig, Simulator};

fn zero_workload(_topo: &dyn Topology, msg: u32, sets: DestinationSets) -> Workload {
    Workload::new(msg, 0.0, 0.0, sets).unwrap()
}

fn check_unicast_pairs(topo: &dyn Topology, msg: u32, pairs: &[(u32, u32)]) {
    let sets = DestinationSets::random(topo, 2, 1);
    let wl = zero_workload(topo, msg, sets);
    // One simulator serves every pair: each isolated measurement fully
    // drains the zero-rate network, so the next call starts from idle.
    let mut sim = Simulator::new(topo, &wl, SimConfig::quick(1));
    for &(s, d) in pairs {
        let sim_lat = sim.measure_isolated_unicast(NodeId(s), NodeId(d));
        let path = topo.unicast_path(NodeId(s), NodeId(d));
        let model_lat = msg as u64 + path.hop_count() as u64;
        assert_eq!(
            sim_lat,
            model_lat,
            "{} {s}->{d} msg={msg}: sim {sim_lat} vs model {model_lat}",
            topo.name()
        );
    }
}

#[test]
fn quarc_unicast_zero_load_exact() {
    let topo = Quarc::new(16).unwrap();
    check_unicast_pairs(
        &topo,
        16,
        &[(0, 1), (0, 4), (0, 8), (0, 5), (0, 11), (3, 15)],
    );
    check_unicast_pairs(&topo, 64, &[(0, 8), (7, 2)]);
}

#[test]
fn ring_and_spidergon_unicast_zero_load_exact() {
    let ring = Ring::new(9).unwrap();
    check_unicast_pairs(&ring, 16, &[(0, 1), (0, 4), (0, 5), (8, 2)]);
    let spid = Spidergon::new(12).unwrap();
    check_unicast_pairs(&spid, 16, &[(0, 1), (0, 6), (0, 5), (11, 4)]);
}

#[test]
fn mesh_and_torus_unicast_zero_load_exact() {
    let mesh = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
    check_unicast_pairs(&mesh, 16, &[(0, 3), (0, 15), (5, 10), (12, 1)]);
    let torus = Mesh::new(4, 4, MeshKind::Torus).unwrap();
    check_unicast_pairs(&torus, 16, &[(0, 3), (0, 15), (5, 10)]);
}

#[test]
fn quarc_multicast_zero_load_exact_against_model() {
    for n in [8usize, 16, 32] {
        let topo = Quarc::new(n).unwrap();
        for group in [2usize, n / 4] {
            let sets = DestinationSets::random(&topo, group, 5);
            let wl = Workload::new(32, 0.0, 0.0, sets).unwrap();
            // Simulator measurement on an idle network.
            let mut sim = Simulator::new(&topo, &wl, SimConfig::quick(1));
            let sim_lat = sim.measure_isolated_multicast(NodeId(0)) as f64;
            // Model prediction for node 0 at zero load.
            let pred = AnalyticModel::new(&topo, &wl, ModelOptions::default())
                .evaluate()
                .unwrap();
            let node0 = pred
                .per_node
                .iter()
                .find(|nm| nm.node == NodeId(0))
                .expect("node 0 has a set");
            assert_eq!(
                sim_lat, node0.latency,
                "N={n} group={group}: sim {sim_lat} vs model {}",
                node0.latency
            );
        }
    }
}

#[test]
fn localized_multicast_zero_load_exact() {
    let topo = Quarc::new(32).unwrap();
    let sets = DestinationSets::localized(&topo, 4, 9);
    let wl = Workload::new(48, 0.0, 0.0, sets).unwrap();
    let pred = AnalyticModel::new(&topo, &wl, ModelOptions::default())
        .evaluate()
        .unwrap();
    for node in [0u32, 5, 31] {
        let mut sim = Simulator::new(&topo, &wl, SimConfig::quick(1));
        let sim_lat = sim.measure_isolated_multicast(NodeId(node)) as f64;
        let nm = pred
            .per_node
            .iter()
            .find(|nm| nm.node == NodeId(node))
            .unwrap();
        assert_eq!(sim_lat, nm.latency, "node {node}");
    }
}

/// The documented identity: a message of `L` flits over a path with `H`
/// links takes exactly `L + H + 1` cycles on an idle network. Swept over
/// every source/destination pair of each topology (`msg` lengths chosen to
/// cover short, paper-default and long messages).
///
/// A `Path` holds injection + `H` links + ejection by construction, so the
/// model's `D = hop_count` is `H + 1` and `check_unicast_pairs`'s
/// `sim == msg + hop_count` assertion is exactly `L + H + 1`. The per-pair
/// graph validation below guards the construction half: every routed path
/// must be a well-formed channel sequence of the topology's network.
fn check_l_h_1_identity_all_pairs(topo: &dyn Topology, msgs: &[u32]) {
    let n = topo.num_nodes() as u32;
    let pairs: Vec<(u32, u32)> = (0..n)
        .flat_map(|s| (0..n).map(move |d| (s, d)))
        .filter(|&(s, d)| s != d)
        .collect();
    for &(s, d) in &pairs {
        let path = topo.unicast_path(NodeId(s), NodeId(d));
        topo.network()
            .validate_path(&path)
            .unwrap_or_else(|e| panic!("{} {s}->{d}: invalid path: {e:?}", topo.name()));
    }
    for &msg in msgs {
        check_unicast_pairs(topo, msg, &pairs);
    }
}

#[test]
fn zero_load_identity_sweep_ring() {
    for n in [4usize, 5, 9, 12] {
        check_l_h_1_identity_all_pairs(&Ring::new(n).unwrap(), &[2, 16, 33]);
    }
}

#[test]
fn zero_load_identity_sweep_mesh_and_torus() {
    for (w, h) in [(2usize, 2usize), (3, 4), (4, 4)] {
        check_l_h_1_identity_all_pairs(&Mesh::new(w, h, MeshKind::Mesh).unwrap(), &[2, 16]);
    }
    for (w, h) in [(3usize, 3usize), (3, 4), (4, 4)] {
        check_l_h_1_identity_all_pairs(&Mesh::new(w, h, MeshKind::Torus).unwrap(), &[2, 16]);
    }
}

#[test]
fn zero_load_identity_sweep_spidergon() {
    for n in [6usize, 8, 12, 16] {
        check_l_h_1_identity_all_pairs(&Spidergon::new(n).unwrap(), &[2, 16, 33]);
    }
}

#[test]
fn zero_load_identity_sweep_hypercube() {
    for dim in [2usize, 3, 4, 5] {
        check_l_h_1_identity_all_pairs(&Hypercube::new(dim).unwrap(), &[2, 16, 33]);
    }
}

#[test]
fn zero_load_identity_sweep_quarc_reference() {
    // Quarc stays covered so the sweep also re-pins the original platform.
    for n in [8usize, 16] {
        check_l_h_1_identity_all_pairs(&Quarc::new(n).unwrap(), &[2, 32]);
    }
}

#[test]
fn broadcast_zero_load_latency_formula() {
    // Broadcast depth is exactly k = N/4 links on every stream, so the
    // whole operation completes in msg + k + 1 cycles.
    for (n, msg) in [(16usize, 32u32), (32, 48), (64, 64)] {
        let topo = Quarc::new(n).unwrap();
        let sets = DestinationSets::broadcast(&topo);
        let wl = Workload::new(msg, 0.0, 0.0, sets).unwrap();
        let mut sim = Simulator::new(&topo, &wl, SimConfig::quick(1));
        let lat = sim.measure_isolated_multicast(NodeId(0));
        assert_eq!(lat, msg as u64 + (n / 4) as u64 + 1, "N={n} msg={msg}");
    }
}
