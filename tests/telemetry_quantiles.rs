//! Property-based tests of the flight recorder's streaming quantile
//! histogram against exact order statistics.
//!
//! [`LogHistogram`] is log-bucketed (32 sub-buckets per octave, exact
//! below 64), so a quantile estimate may sit above the exact sorted
//! quantile by at most one bucket width: for any sample population,
//! `exact <= est <= exact + exact/32 + 1`. The merge operator is bucket
//! addition, so merging must be associative, commutative and equal to
//! recording the concatenated population — the property the bench
//! runner's across-replicate pooling relies on.

use proptest::prelude::*;
use quarc_noc::telemetry::LogHistogram;

/// Exact quantile with the same convention as `LogHistogram::quantile`:
/// the smallest sample with at least `ceil(q * count)` samples at or
/// below it.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let need = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[need - 1]
}

fn record_all(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// The bucket error bound at value `v`: one sub-bucket width, plus one
/// for the integer rounding of bucket boundaries.
fn bound(v: u64) -> u64 {
    v / 32 + 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_bracket_the_exact_order_statistics(
        samples in proptest::collection::vec(0u64..2_000_000, 1..400),
        qs in proptest::collection::vec(0.01f64..1.0, 1..8),
    ) {
        let h = record_all(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &q in &qs {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q).expect("non-empty population");
            prop_assert!(
                est >= exact && est <= exact + bound(exact),
                "q={q}: estimate {est} outside [{exact}, {exact} + {}]",
                bound(exact)
            );
        }
        // The named quantiles are the same machinery.
        let (p50, p99) = (h.p50(), h.p99());
        let e50 = exact_quantile(&sorted, 0.50) as f64;
        let e99 = exact_quantile(&sorted, 0.99) as f64;
        prop_assert!(p50 >= e50 && p50 <= e50 + bound(e50 as u64) as f64);
        prop_assert!(p99 >= e99 && p99 <= e99 + bound(e99 as u64) as f64);
        prop_assert!(p50 <= h.p95() && h.p95() <= p99, "quantiles are monotone");
    }

    #[test]
    fn small_populations_are_exact(
        samples in proptest::collection::vec(0u64..64, 1..100),
        q in 0.01f64..1.0,
    ) {
        // Below 64 every value has its own bucket: estimates are exact.
        let h = record_all(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.quantile(q), Some(exact_quantile(&sorted, q)));
    }

    #[test]
    fn merge_is_concatenation_associative_and_commutative(
        a in proptest::collection::vec(0u64..1_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000, 0..200),
        c in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));

        // merge == recording the concatenated population.
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        concat.extend_from_slice(&c);
        let direct = record_all(&concat);

        // (a + b) + c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a + (b + c)
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);
        // c + b + a
        let mut rev = hc.clone();
        rev.merge(&hb);
        rev.merge(&ha);

        prop_assert_eq!(&left, &direct, "merge must equal concatenation");
        prop_assert_eq!(&left, &right, "merge must be associative");
        prop_assert_eq!(&left, &rev, "merge must be commutative");
        prop_assert_eq!(left.count(), (a.len() + b.len() + c.len()) as u64);
        prop_assert_eq!(left.sum(), direct.sum());
    }

    #[test]
    fn merging_an_empty_histogram_is_identity(
        a in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let ha = record_all(&a);
        let mut merged = ha.clone();
        merged.merge(&LogHistogram::new());
        prop_assert_eq!(&merged, &ha);
        let mut other = LogHistogram::new();
        other.merge(&ha);
        prop_assert_eq!(&other, &ha);
    }
}
