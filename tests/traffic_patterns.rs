//! Integration: non-uniform unicast traffic patterns (extension) — the
//! model and the simulator must stay consistent when the destination
//! distribution is skewed, and the physics must respond correctly
//! (hot-spots collapse the saturation rate).

use quarc_noc::model::{max_sustainable_rate, AnalyticModel, ModelOptions};
use quarc_noc::prelude::*;
use quarc_noc::sim::{SimConfig, Simulator};
use quarc_noc::workloads::UnicastPattern;

fn proto(topo: &dyn Topology, pattern: UnicastPattern) -> Workload {
    let sets = DestinationSets::random(topo, 4, 3);
    Workload::new(32, 1e-5, 0.05, sets)
        .unwrap()
        .with_unicast_pattern(pattern)
}

#[test]
fn model_tracks_simulation_under_hot_spot_traffic() {
    let topo = Quarc::new(16).unwrap();
    let pattern = UnicastPattern::HotSpot {
        node: NodeId(5),
        fraction: 0.25,
    };
    let p = proto(&topo, pattern);
    let sat = max_sustainable_rate(&topo, &p, ModelOptions::default(), 0.01);
    assert!(sat > 0.0);
    let wl = p.at_rate(sat * 0.4).unwrap();
    let pred = AnalyticModel::new(&topo, &wl, ModelOptions::default())
        .evaluate()
        .unwrap();
    let res = Simulator::new(&topo, &wl, SimConfig::quick(3)).run();
    assert!(!res.saturated);
    let uni_err = (pred.unicast_latency - res.unicast.mean).abs() / res.unicast.mean;
    assert!(uni_err < 0.10, "hot-spot unicast error {uni_err:.3}");
    let mc_err = (pred.multicast_latency - res.multicast.mean).abs() / res.multicast.mean;
    assert!(mc_err < 0.15, "hot-spot multicast error {mc_err:.3}");
}

#[test]
fn hot_spot_collapses_the_saturation_rate() {
    let topo = Quarc::new(16).unwrap();
    let uniform = proto(&topo, UnicastPattern::Uniform);
    let hot = proto(
        &topo,
        UnicastPattern::HotSpot {
            node: NodeId(0),
            fraction: 0.5,
        },
    );
    let sat_u = max_sustainable_rate(&topo, &uniform, ModelOptions::default(), 0.01);
    let sat_h = max_sustainable_rate(&topo, &hot, ModelOptions::default(), 0.01);
    assert!(
        sat_h < 0.75 * sat_u,
        "a 50% hot-spot must cost >25% of the sustainable rate ({sat_h} vs {sat_u})"
    );
}

#[test]
fn hot_spot_concentrates_simulated_traffic() {
    // The ejection channels of the hot node must absorb far more flits
    // than those of an ordinary node.
    let topo = Quarc::new(16).unwrap();
    let hot = NodeId(4);
    let wl = proto(
        &topo,
        UnicastPattern::HotSpot {
            node: hot,
            fraction: 0.4,
        },
    )
    .at_rate(0.003)
    .unwrap();
    let res = Simulator::new(&topo, &wl, SimConfig::quick(5)).run();
    let net = topo.network();
    let absorbed_at = |node: NodeId| -> f64 {
        net.channels()
            .iter()
            .filter(|c| c.kind == quarc_noc::topology::ChannelKind::Ejection && c.to == node)
            .map(|c| res.channel_utilization[c.id.idx()])
            .sum()
    };
    let at_hot = absorbed_at(hot);
    let at_cold = absorbed_at(NodeId(10));
    assert!(
        at_hot > 3.0 * at_cold,
        "hot node should absorb >3x an ordinary node ({at_hot:.4} vs {at_cold:.4})"
    );
}

#[test]
fn complement_pattern_agrees_between_model_and_simulation() {
    let topo = Quarc::new(16).unwrap();
    let p = proto(&topo, UnicastPattern::Complement);
    let sat = max_sustainable_rate(&topo, &p, ModelOptions::default(), 0.01);
    let wl = p.at_rate(sat * 0.4).unwrap();
    let pred = AnalyticModel::new(&topo, &wl, ModelOptions::default())
        .evaluate()
        .unwrap();
    let res = Simulator::new(&topo, &wl, SimConfig::quick(7)).run();
    assert!(!res.saturated);
    let uni_err = (pred.unicast_latency - res.unicast.mean).abs() / res.unicast.mean;
    assert!(uni_err < 0.10, "complement unicast error {uni_err:.3}");
}

#[test]
fn complement_unicast_latency_reflects_fixed_distance() {
    // Under the complement permutation on a Quarc, every node sends to
    // N-1-s; at zero-ish load the mean unicast latency must equal the
    // mean over exactly those pairs, not the all-pairs mean.
    let topo = Quarc::new(16).unwrap();
    let p = proto(&topo, UnicastPattern::Complement)
        .at_rate(1e-5)
        .unwrap();
    let pred = AnalyticModel::new(&topo, &p, ModelOptions::default())
        .evaluate()
        .unwrap();
    let mut expected = 0.0;
    for s in 0..16u32 {
        let d = NodeId(15 - s);
        let path = topo.unicast_path(NodeId(s), d);
        expected += 32.0 + path.hop_count() as f64;
    }
    expected /= 16.0;
    assert!(
        (pred.unicast_latency - expected).abs() < 0.5,
        "complement mean {} vs expected {}",
        pred.unicast_latency,
        expected
    );
}

#[test]
fn pattern_validation_guards_simulator_and_model() {
    let topo = Quarc::new(8).unwrap();
    let bad = proto(
        &topo,
        UnicastPattern::HotSpot {
            node: NodeId(99),
            fraction: 0.2,
        },
    );
    // AssertUnwindSafe: nothing is reused after the catch, and Network's
    // implicit-storage handle is plain shared data either way.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = Simulator::new(&topo, &bad, SimConfig::quick(1));
    }));
    assert!(
        result.is_err(),
        "simulator must reject an out-of-range hot node"
    );
}
