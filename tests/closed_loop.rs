//! Integration: closed-loop protocol invariants on both engines.
//!
//! The dispatcher promises *conservation*: every request a machine
//! issues retires exactly once, and at quiescence nothing is left — no
//! live messages, no pending timers, no outstanding window slots. The
//! proptests below drive randomly drawn protocol parameters through
//! both engines and check the promise against the engines' structural
//! audit, not just the driver's own counters.

use proptest::prelude::*;
use quarc_noc::prelude::*;
use quarc_noc::sim::{EngineKind, EventSimulator, SimConfig, SimResults, Simulator};

fn run_closed(
    engine: EngineKind,
    topo: &dyn Topology,
    sets: DestinationSets,
    spec: &ClosedLoopSpec,
    seed: u64,
) -> (SimResults, quarc_noc::sim::EngineAudit) {
    let wl = Workload::new(8, 0.0, 0.0, sets).unwrap();
    let cfg = SimConfig::quick(seed).with_engine(engine);
    match engine {
        EngineKind::Cycle => {
            let mut sim = Simulator::new(topo, &wl, cfg);
            sim.install_closed_loop(spec, seed);
            let res = sim.run();
            (res, sim.audit().expect("cycle audit"))
        }
        EngineKind::EventDriven => {
            let mut sim = EventSimulator::new(topo, &wl, cfg);
            sim.install_closed_loop(spec, seed);
            let res = sim.run();
            (res, sim.audit().expect("event audit"))
        }
    }
}

fn check_conservation(
    res: &SimResults,
    audit: &quarc_noc::sim::EngineAudit,
    expected_requests: u64,
    ctx: &str,
) -> Result<(), TestCaseError> {
    let cl = res.closed_loop.as_ref().expect("closed-loop stats");
    prop_assert!(cl.quiesced, "{}: run must reach quiescence", ctx);
    prop_assert_eq!(
        cl.requests_issued,
        cl.requests_retired,
        "{}: every issued request retires",
        ctx
    );
    prop_assert_eq!(
        cl.requests_retired,
        expected_requests,
        "{}: retired count matches the spec",
        ctx
    );
    prop_assert_eq!(
        cl.completion.count,
        cl.requests_retired,
        "{}: one completion sample per request",
        ctx
    );
    // Nothing outstanding at quiescence, per the engine's own audit.
    prop_assert_eq!(audit.live_messages, 0, "{}: live messages", ctx);
    prop_assert_eq!(audit.live_ops, 0, "{}: live multicast ops", ctx);
    prop_assert_eq!(audit.tagged_outstanding, 0, "{}: tagged outstanding", ctx);
    prop_assert_eq!(
        audit.total_generated,
        audit.total_absorbed,
        "{}: every flit absorbed",
        ctx
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn coherence_conserves_requests_on_both_engines(
        seed in 0u64..10_000,
        window in 1u32..=8,
        requests in 1u32..=48,
        write_pct in 0u32..=100,
        group in 2usize..=6,
    ) {
        let topo = Quarc::new(16).unwrap();
        let spec = ClosedLoopSpec::Coherence {
            window,
            requests,
            write_fraction: write_pct as f64 / 100.0,
        };
        let expected = spec.total_requests(16);
        let sets = DestinationSets::random(&topo, group, seed);
        for engine in [EngineKind::Cycle, EngineKind::EventDriven] {
            let (res, audit) = run_closed(engine, &topo, sets.clone(), &spec, seed);
            check_conservation(&res, &audit, expected, &format!("{engine:?} coherence"))?;
            // The window bounds occupancy by construction.
            let cl = res.closed_loop.as_ref().unwrap();
            prop_assert!(
                cl.avg_outstanding <= (window as f64) * 16.0,
                "occupancy {} exceeds the aggregate window",
                cl.avg_outstanding
            );
        }
    }

    #[test]
    fn barrier_conserves_rounds_on_both_engines(
        seed in 0u64..10_000,
        rounds in 1u32..=6,
        radix in 2u32..=4,
        compute in 0u64..=16,
    ) {
        let topo = Quarc::new(16).unwrap();
        let spec = ClosedLoopSpec::Barrier { rounds, radix, compute };
        let expected = spec.total_requests(16);
        let sets = DestinationSets::broadcast(&topo);
        for engine in [EngineKind::Cycle, EngineKind::EventDriven] {
            let (res, audit) = run_closed(engine, &topo, sets.clone(), &spec, seed);
            check_conservation(&res, &audit, expected, &format!("{engine:?} barrier"))?;
        }
    }
}

#[test]
fn closed_loop_rejects_nonzero_rate() {
    // The protocol must be the only traffic source; installing on an
    // open-loop workload is a contract violation, not a silent merge.
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 3);
    let wl = Workload::new(8, 0.01, 0.1, sets).unwrap();
    let spec = ClosedLoopSpec::Coherence {
        window: 2,
        requests: 8,
        write_fraction: 0.5,
    };
    // AssertUnwindSafe: nothing is reused after the catch, and Network's
    // implicit-storage handle is plain shared data either way.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut sim = Simulator::new(&topo, &wl, SimConfig::quick(3));
        sim.install_closed_loop(&spec, 3);
    }));
    assert!(result.is_err(), "non-zero rate must be rejected");
}
