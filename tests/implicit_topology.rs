//! Differential suite: implicit O(1) topologies vs the materialized
//! oracle.
//!
//! The scale families (`Min`, `Clustered`) never store their channel
//! tables — every channel, path and multicast schedule is computed on
//! demand. The contract is that this implicit arithmetic is **bit-for-bit**
//! the same network as the force-materialized oracle build: same channel
//! records, same routes, same stream decompositions, same `SimPlan`
//! tables. Plus regression tests for every [`PathError`] variant and
//! property tests on the routing invariants the implicit math relies on.

use proptest::prelude::*;
use quarc_noc::prelude::*;
use quarc_noc::topology::{ChannelId, ChannelKind, VcId};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Channel-graph equality: implicit arithmetic vs dense oracle tables.
// ---------------------------------------------------------------------

/// Compare every channel, injection map and ejection map of an implicit
/// build against its materialized oracle.
fn assert_networks_identical(imp: &dyn Topology, ora: &dyn Topology, ctx: &str) {
    let (ni, no) = (imp.network(), ora.network());
    assert!(ni.is_implicit(), "{ctx}: left side must be implicit");
    assert!(!no.is_implicit(), "{ctx}: right side must be the oracle");
    assert_eq!(ni.num_nodes(), no.num_nodes(), "{ctx}: node count");
    assert_eq!(
        ni.ports_per_node(),
        no.ports_per_node(),
        "{ctx}: ports per node"
    );
    assert_eq!(ni.num_channels(), no.num_channels(), "{ctx}: channel count");
    for id in 0..no.num_channels() as u32 {
        let id = ChannelId(id);
        let (a, b) = (ni.channel_at(id), no.channel_at(id));
        assert_eq!(a, b, "{ctx}: channel {id:?}");
        assert_eq!(ni.vcs_of(id), no.vcs_of(id), "{ctx}: vcs of {id:?}");
        assert_eq!(
            ni.downstream(id),
            no.downstream(id),
            "{ctx}: downstream of {id:?}"
        );
    }
    for node in 0..no.num_nodes() as u32 {
        for port in 0..no.ports_per_node() as u8 {
            let (node, port) = (NodeId(node), PortId(port));
            assert_eq!(
                ni.injection_channel(node, port),
                no.injection_channel(node, port),
                "{ctx}: injection of ({node:?}, {port:?})"
            );
            assert_eq!(
                ni.ejection_channel(node, port),
                no.ejection_channel(node, port),
                "{ctx}: ejection of ({node:?}, {port:?})"
            );
        }
    }
    // And the wholesale materialization is the oracle's dense table.
    assert_eq!(
        ni.materialize().channels(),
        no.channels(),
        "{ctx}: materialize() equals the oracle build"
    );
}

/// Compare routes and multicast schedules for every pair / sampled set.
fn assert_routing_identical(imp: &dyn Topology, ora: &dyn Topology, seed: u64, ctx: &str) {
    let n = ora.num_nodes();
    for src in 0..n as u32 {
        for dst in 0..n as u32 {
            if src == dst {
                continue;
            }
            let (src, dst) = (NodeId(src), NodeId(dst));
            let (a, b) = (imp.unicast_path(src, dst), ora.unicast_path(src, dst));
            assert_eq!(a, b, "{ctx}: unicast {src:?}->{dst:?}");
            imp.network()
                .validate_path(&a)
                .unwrap_or_else(|e| panic!("{ctx}: implicit route invalid: {e}"));
            ora.network()
                .validate_path(&b)
                .unwrap_or_else(|e| panic!("{ctx}: oracle route invalid: {e}"));
            assert_eq!(
                imp.port_for(src, dst),
                ora.port_for(src, dst),
                "{ctx}: port for {src:?}->{dst:?}"
            );
        }
    }
    let sets = DestinationSets::random(ora, 3.min(n - 1), seed);
    for src in 0..n as u32 {
        let src = NodeId(src);
        assert_eq!(
            imp.multicast_streams(src, sets.set(src)),
            ora.multicast_streams(src, sets.set(src)),
            "{ctx}: multicast streams of {src:?}"
        );
    }
    assert_eq!(imp.diameter(), ora.diameter(), "{ctx}: diameter");
}

#[test]
fn min_implicit_build_matches_the_materialized_oracle() {
    for (k, stages) in [(2, 2), (2, 3), (3, 2), (4, 2)] {
        let imp = Min::new(k, stages).unwrap();
        let ora = Min::materialized(k, stages).unwrap();
        let ctx = format!("min-{k}x{stages}");
        assert_networks_identical(&imp, &ora, &ctx);
        assert_routing_identical(&imp, &ora, 11, &ctx);
    }
}

#[test]
fn clustered_implicit_build_matches_the_materialized_oracle() {
    let cases: Vec<(usize, Arc<dyn Topology>)> = vec![
        (2, Arc::new(Quarc::new(8).unwrap())),
        (3, Arc::new(Ring::new(6).unwrap())),
        (2, Arc::new(Mesh::new(3, 3, MeshKind::Mesh).unwrap())),
    ];
    for (clusters, inner) in cases {
        let ctx = format!("clustered-{clusters}x-{}", inner.name());
        let imp = Clustered::new(clusters, Arc::clone(&inner)).unwrap();
        let ora = Clustered::materialized(clusters, inner).unwrap();
        assert_networks_identical(&imp, &ora, &ctx);
        assert_routing_identical(&imp, &ora, 13, &ctx);
    }
}

// ---------------------------------------------------------------------
// SimPlan: the lazy (implicit-backed) plan must serve exactly the same
// tables as the dense plan built from the oracle.
// ---------------------------------------------------------------------

fn assert_plans_identical(imp: &dyn Topology, ora: &dyn Topology, seed: u64, ctx: &str) {
    use quarc_noc::sim::SimPlan;
    let n = ora.num_nodes();
    let sets = DestinationSets::random(ora, 3.min(n - 1), seed);
    let wl = Workload::new(16, 0.01, 0.1, sets).unwrap();
    let lazy = SimPlan::build(imp, &wl).expect("lazy plan builds");
    let dense = SimPlan::build(ora, &wl).expect("dense plan builds");
    assert!(lazy.is_lazy(), "{ctx}: implicit storage gets a lazy plan");
    assert!(!dense.is_lazy(), "{ctx}: the oracle gets a dense plan");
    assert_eq!(lazy.num_nodes(), dense.num_nodes(), "{ctx}: plan size");
    for src in 0..n as u32 {
        let src = NodeId(src);
        assert_eq!(
            lazy.op_target_count(src),
            dense.op_target_count(src),
            "{ctx}: op targets of {src:?}"
        );
        assert_eq!(
            lazy.streams_snapshot(src),
            dense.streams_snapshot(src),
            "{ctx}: stream tables of {src:?}"
        );
        for dst in 0..n as u32 {
            if src.idx() == dst as usize {
                continue;
            }
            let dst = NodeId(dst);
            assert_eq!(
                *lazy.unicast_path(src, dst),
                *dense.unicast_path(src, dst),
                "{ctx}: plan unicast {src:?}->{dst:?}"
            );
        }
    }
}

#[test]
fn lazy_sim_plans_serve_the_dense_oracle_tables() {
    let imp = Min::new(2, 3).unwrap();
    let ora = Min::materialized(2, 3).unwrap();
    assert_plans_identical(&imp, &ora, 17, "min-2x3");

    let inner: Arc<dyn Topology> = Arc::new(Quarc::new(8).unwrap());
    let imp = Clustered::new(2, Arc::clone(&inner)).unwrap();
    let ora = Clustered::materialized(2, inner).unwrap();
    assert_plans_identical(&imp, &ora, 19, "clustered-2x-quarc");
}

// ---------------------------------------------------------------------
// PathError: one regression test per variant, exercised through
// `validate_path` on implicit storage (so `channel_at` is on the hook
// too), and folded into the workspace error.
// ---------------------------------------------------------------------

#[test]
fn path_error_too_short() {
    let topo = Min::new(2, 3).unwrap();
    let mut p = topo.unicast_path(NodeId(0), NodeId(5));
    p.hops.truncate(1);
    assert_eq!(
        topo.network().validate_path(&p),
        Err(PathError::TooShort { hops: 1 })
    );
}

#[test]
fn path_error_bad_injection() {
    let topo = Min::new(2, 3).unwrap();
    let mut p = topo.unicast_path(NodeId(0), NodeId(5));
    p.hops[0] = p.hops[1]; // a link channel can't open a path
    assert!(matches!(
        topo.network().validate_path(&p),
        Err(PathError::BadInjection { src, .. }) if src == NodeId(0)
    ));
}

#[test]
fn path_error_port_mismatch() {
    // Needs a multi-port topology: the hop is a real injection channel of
    // the source, but not the one belonging to the claimed port.
    let topo = Quarc::new(8).unwrap();
    let mut p = topo.unicast_path(NodeId(0), NodeId(3));
    p.port = PortId((p.port.0 + 1) % topo.num_ports() as u8);
    assert!(matches!(
        topo.network().validate_path(&p),
        Err(PathError::PortMismatch { .. })
    ));
}

#[test]
fn path_error_bad_ejection() {
    let topo = Min::new(2, 3).unwrap();
    let mut p = topo.unicast_path(NodeId(0), NodeId(5));
    p.dst = NodeId(6); // the ejection hop still lands at node 5
    assert!(matches!(
        topo.network().validate_path(&p),
        Err(PathError::BadEjection { dst, .. }) if dst == NodeId(6)
    ));
}

#[test]
fn path_error_interior_not_link() {
    let topo = Min::new(2, 3).unwrap();
    let mut p = topo.unicast_path(NodeId(0), NodeId(5));
    let inj = p.hops[0];
    p.hops.insert(2, inj);
    assert!(matches!(
        topo.network().validate_path(&p),
        Err(PathError::InteriorNotLink { channel }) if channel == inj.channel
    ));
}

#[test]
fn path_error_broken_chain() {
    let topo = Min::new(2, 3).unwrap();
    let mut p = topo.unicast_path(NodeId(0), NodeId(5));
    p.hops.swap(1, 2); // stage order violated: hop 2 departs downstream
    assert!(matches!(
        topo.network().validate_path(&p),
        Err(PathError::BrokenChain { .. })
    ));
}

#[test]
fn path_error_vc_out_of_range() {
    let topo = Min::new(2, 3).unwrap();
    let mut p = topo.unicast_path(NodeId(0), NodeId(5));
    p.hops[2].vc = VcId(7); // butterfly wires carry a single vc
    assert!(matches!(
        topo.network().validate_path(&p),
        Err(PathError::VcOutOfRange { vcs: 1, .. })
    ));
}

#[test]
fn path_error_wrong_terminus() {
    // Injection at 0, ejection channel genuinely at 5, but no links in
    // between: the chain still sits at the source when the path ends.
    let topo = Min::new(2, 3).unwrap();
    let net = topo.network();
    let p = quarc_noc::topology::Path {
        src: NodeId(0),
        dst: NodeId(5),
        port: PortId(0),
        hops: vec![
            quarc_noc::topology::Hop {
                channel: net.injection_channel(NodeId(0), PortId(0)),
                vc: VcId(0),
            },
            quarc_noc::topology::Hop {
                channel: net.ejection_channel(NodeId(5), PortId(0)),
                vc: VcId(0),
            },
        ],
    };
    assert_eq!(
        net.validate_path(&p),
        Err(PathError::WrongTerminus {
            at: NodeId(0),
            dst: NodeId(5),
        })
    );
}

#[test]
fn path_errors_fold_into_the_workspace_error() {
    let topo = Min::new(2, 3).unwrap();
    let mut p = topo.unicast_path(NodeId(0), NodeId(5));
    p.hops.truncate(0);
    let path_err = topo.network().validate_path(&p).unwrap_err();
    let err: Error = path_err.clone().into();
    assert!(matches!(err, Error::Path(ref e) if *e == path_err));
    let msg = err.to_string();
    assert!(msg.contains("path validation"), "{msg}");
    assert!(
        std::error::Error::source(&err).is_some(),
        "source chain preserved"
    );
}

// ---------------------------------------------------------------------
// Property tests on the routing invariants the O(1) math relies on.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every butterfly route crosses each of the `stages + 1` wire
    /// boundaries exactly once (that is the minimum — the network is a
    /// feed-forward DAG), visiting the boundary bands in stage order.
    #[test]
    fn min_routes_are_minimal_and_stage_monotone(
        k in 2usize..=4,
        stages in 2usize..=3,
        seed in 0u64..10_000,
    ) {
        let topo = Min::new(k, stages).unwrap();
        let n = topo.num_nodes();
        let src = (seed as usize).wrapping_mul(7919) % n;
        let dst = (src + 1 + (seed as usize).wrapping_mul(104_729) % (n - 1)) % n;
        let path = topo.unicast_path(NodeId(src as u32), NodeId(dst as u32));
        prop_assert_eq!(path.link_count(), stages + 1, "one wire per boundary");
        prop_assert!(topo.network().validate_path(&path).is_ok());
        for (b, hop) in path.hops[1..path.hops.len() - 1].iter().enumerate() {
            let id = hop.channel.idx();
            prop_assert!(
                n * (1 + b) <= id && id < n * (2 + b),
                "wire hop {} (channel {}) escapes boundary band {}",
                b, id, b
            );
            prop_assert_eq!(hop.vc, VcId(0), "feed-forward DAG needs one vc");
        }
    }

    /// The same route, computed implicitly and from the oracle tables,
    /// is identical for arbitrary pairs (spot-check complement of the
    /// exhaustive small-size sweep above).
    #[test]
    fn min_implicit_routes_equal_oracle_routes(
        k in 2usize..=4,
        stages in 2usize..=3,
        seed in 0u64..10_000,
    ) {
        let imp = Min::new(k, stages).unwrap();
        let ora = Min::materialized(k, stages).unwrap();
        let n = imp.num_nodes();
        let src = (seed as usize).wrapping_mul(31) % n;
        let dst = (src + 1 + (seed as usize).wrapping_mul(7907) % (n - 1)) % n;
        let (src, dst) = (NodeId(src as u32), NodeId(dst as u32));
        prop_assert_eq!(imp.unicast_path(src, dst), ora.unicast_path(src, dst));
    }

    /// A clustered route crosses exactly one express link when the
    /// endpoints live in different clusters and none otherwise — the
    /// gateway crossbar is never transited twice.
    #[test]
    fn clustered_routes_cross_at_most_one_express_link(
        clusters in 2usize..=4,
        seed in 0u64..10_000,
    ) {
        let inner: Arc<dyn Topology> = Arc::new(Ring::new(6).unwrap());
        let topo = Clustered::new(clusters, inner).unwrap();
        let net = topo.network();
        let n = topo.num_nodes();
        let m = 6;
        let src = (seed as usize).wrapping_mul(613) % n;
        let dst = (src + 1 + (seed as usize).wrapping_mul(2741) % (n - 1)) % n;
        let path = topo.unicast_path(NodeId(src as u32), NodeId(dst as u32));
        prop_assert!(net.validate_path(&path).is_ok());
        let express = path.hops[1..path.hops.len() - 1]
            .iter()
            .filter(|h| {
                let ch = net.channel_at(h.channel);
                ch.kind == ChannelKind::Link && ch.from.idx() / m != ch.to.idx() / m
            })
            .count();
        let expected = usize::from(src / m != dst / m);
        prop_assert_eq!(express, expected, "src {} dst {}", src, dst);
    }
}
