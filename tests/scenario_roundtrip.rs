//! Scenario serialization round-trips.
//!
//! The Scenario API's contract is that a spec is *data*: writing it to
//! JSON, reading it back and running it must yield bit-identical results
//! to running the original, for every topology in the registry. The
//! comparison goes through the structured JSON sink, which serializes
//! every float at full round-trip precision — byte-equal JSON means
//! bit-equal points, per-replicate simulator output included.

use quarc_noc::prelude::*;

/// A short simulation: round-trip testing needs determinism, not
/// statistical quality.
fn tiny_sim(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::quick(seed);
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 2_000;
    cfg.drain_cycles = 8_000;
    cfg.backlog_limit = 4_000;
    cfg
}

fn scenario_for(topology: TopologySpec) -> Scenario {
    Scenario::new(
        format!("roundtrip-{topology}"),
        topology,
        WorkloadSpec::new(8, 0.05, MulticastPattern::Random { group: 2 }),
        SweepSpec::Explicit {
            rates: vec![0.001, 0.003],
        },
    )
    .with_sim(tiny_sim(9))
    .with_seed(9)
}

#[test]
fn serialize_deserialize_run_is_bit_identical_on_all_six_topologies() {
    for topology in [
        TopologySpec::Quarc { n: 16 },
        TopologySpec::Ring { n: 8 },
        TopologySpec::Spidergon { n: 8 },
        TopologySpec::Mesh {
            width: 3,
            height: 3,
        },
        TopologySpec::Torus {
            width: 3,
            height: 3,
        },
        TopologySpec::Hypercube { dim: 3 },
    ] {
        let original = scenario_for(topology);
        let json = original.to_json();
        let reloaded = Scenario::from_json(&json).expect("serialized scenario parses");
        assert_eq!(original, reloaded, "spec round-trip must be identity");

        let runner = Runner::new().threads(2);
        let a = runner.run(&original).expect("original runs");
        let b = runner.run(&reloaded).expect("reloaded runs");
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{topology}: results diverged after a JSON round-trip"
        );
        // Sanity: the runs actually simulated something.
        assert!(a.sims[0][0].total_absorbed > 0, "{topology}: empty run");
    }
}

#[test]
fn scenario_json_embeds_human_readable_structure() {
    let sc = scenario_for(TopologySpec::Quarc { n: 16 });
    let json = sc.to_json();
    for needle in ["Quarc", "Random", "msg_len", "replicates", "Explicit"] {
        assert!(json.contains(needle), "missing `{needle}` in:\n{json}");
    }
}

#[test]
fn registry_rejects_unknown_names_with_useful_errors() {
    let err = TopologySpec::parse("warpgrid-16").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("warpgrid"), "{msg}");
    assert!(
        msg.contains("quarc") && msg.contains("hypercube"),
        "should list the known topologies: {msg}"
    );
    assert!(TopologySpec::parse("quarc").is_err(), "missing size");
    assert!(TopologySpec::parse("mesh-3xq").is_err(), "bad height");
}

#[test]
fn registry_rejects_invalid_sizes_at_build_time() {
    // Sizes that parse but violate the topology's constraints fail at
    // build() with the constraint in the message.
    let spec = TopologySpec::parse("quarc-7").expect("parses");
    let msg = match spec.build() {
        Err(e) => e.to_string(),
        Ok(_) => panic!("a 7-node Quarc must be rejected"),
    };
    assert!(msg.contains('7'), "{msg}");

    // And the runner folds the failure into the workspace error.
    let sc = scenario_for(TopologySpec::Quarc { n: 7 });
    match Runner::new().run(&sc) {
        Err(Error::Topology(_)) => {}
        other => panic!("expected Error::Topology, got {other:?}"),
    }
}

#[test]
fn pre_telemetry_scenario_json_still_parses_and_runs() {
    // Scenario files written before the flight recorder carry no
    // `telemetry` key in their sim config; they must load as
    // telemetry-off and produce the same run they always did.
    let sc = scenario_for(TopologySpec::Ring { n: 8 });
    assert!(!sc.sim.telemetry.enabled(), "default is off");
    let json = sc.to_json();
    assert!(
        json.contains("\"telemetry\""),
        "current files carry the key"
    );
    // Simulate a legacy file: drop the telemetry field wholesale.
    let mut doc: serde::Value = serde::json::from_str(&json).unwrap();
    let serde::Value::Map(fields) = &mut doc else {
        panic!("scenario serializes as a map");
    };
    let sim = fields
        .iter_mut()
        .find(|(k, _)| k == "sim")
        .map(|(_, v)| v)
        .unwrap();
    let serde::Value::Map(sim_fields) = sim else {
        panic!("sim serializes as a map");
    };
    sim_fields.retain(|(k, _)| k != "telemetry");
    let legacy = serde::json::to_string(&doc);
    assert!(!legacy.contains("telemetry"));
    let parsed = Scenario::from_json(&legacy).expect("legacy scenario parses");
    assert!(!parsed.sim.telemetry.enabled());
    let a = Runner::new().run(&sc).unwrap();
    let b = Runner::new().run(&parsed).unwrap();
    assert_eq!(a.to_csv(), b.to_csv(), "legacy spec runs identically");
}

#[test]
fn registry_round_trips_the_scale_families() {
    // `parse(spec.to_string())` is the registry contract; the scale
    // families carry structured arguments, so spell both forms out.
    for (s, spec) in [
        ("min-64x2", TopologySpec::Min { k: 64, stages: 2 }),
        (
            "clustered-4x-mesh-4x4",
            TopologySpec::Clustered {
                clusters: 4,
                inner: ClusterInner::Mesh {
                    width: 4,
                    height: 4,
                },
            },
        ),
        (
            "clustered-2x-quarc-8",
            TopologySpec::Clustered {
                clusters: 2,
                inner: ClusterInner::Quarc { n: 8 },
            },
        ),
    ] {
        assert_eq!(TopologySpec::parse(s).unwrap(), spec, "{s}");
        assert_eq!(spec.to_string(), s, "{s}: display form");
        assert_eq!(
            TopologySpec::parse(&spec.to_string()).unwrap(),
            spec,
            "{s}: parse∘display is the identity"
        );
    }
}

#[test]
fn registry_rejects_malformed_scale_specs() {
    for bad in [
        "min-64",               // no single-size form
        "clustered-4",          // no single-size form
        "min-axb",              // non-numeric radix
        "min-64x",              // missing stage count
        "clustered-4-mesh",     // cluster count must end with `x`
        "clustered-2x-min-2x2", // no nesting of implicit families
        "clustered-2x-warp-9",  // unknown inner family
    ] {
        let result = TopologySpec::parse(bad).and_then(|spec| spec.build().map(|_| ()));
        assert!(result.is_err(), "`{bad}` must be rejected");
    }
    // Constraint violations surface at build() with the constraint named.
    for (spec, needle) in [
        ("min-1x3", "at least 2"),
        ("clustered-1x-ring-6", "two clusters"),
    ] {
        let msg = match TopologySpec::parse(spec).expect("parses").build() {
            Err(e) => e.to_string(),
            Ok(_) => panic!("`{spec}` must fail at build time"),
        };
        assert!(msg.contains(needle), "`{spec}`: {msg}");
    }
}

#[test]
fn scale_family_round_trip_runs_bit_identical_and_unmodeled() {
    // Same contract as the six legacy topologies, plus the scale-family
    // stamp: no analytical backend covers implicit storage, so every
    // point must carry `model_applicable = false`.
    for topology in [
        TopologySpec::Min { k: 2, stages: 3 },
        TopologySpec::Clustered {
            clusters: 2,
            inner: ClusterInner::Ring { n: 6 },
        },
    ] {
        let original = scenario_for(topology);
        let json = original.to_json();
        let reloaded = Scenario::from_json(&json).expect("serialized scenario parses");
        assert_eq!(original, reloaded, "spec round-trip must be identity");

        let runner = Runner::new().threads(2);
        let a = runner.run(&original).expect("original runs");
        let b = runner.run(&reloaded).expect("reloaded runs");
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{topology}: results diverged after a JSON round-trip"
        );
        assert!(a.sims[0][0].total_absorbed > 0, "{topology}: empty run");
        assert!(
            a.points.iter().all(|p| !p.model_applicable),
            "{topology}: implicit topologies are outside every model"
        );
    }
}

#[test]
fn saturation_relative_sweeps_reject_implicit_topologies() {
    // There is no analytical saturation rate to anchor on; the runner
    // must say so instead of silently picking one.
    let mut sc = scenario_for(TopologySpec::Min { k: 2, stages: 3 });
    sc.sweep = SweepSpec::SaturationFractions {
        fractions: vec![0.3],
    };
    match Runner::new().run(&sc) {
        Err(Error::InvalidScenario(msg)) => {
            assert!(msg.contains("explicit rates"), "actionable message: {msg}");
        }
        other => panic!("expected Error::InvalidScenario, got {other:?}"),
    }
}

#[test]
fn invalid_scenarios_surface_typed_errors_not_panics() {
    // Malformed sweep (descending rates).
    let mut sc = scenario_for(TopologySpec::Ring { n: 8 });
    sc.sweep = SweepSpec::Explicit {
        rates: vec![0.01, 0.002],
    };
    assert!(matches!(Runner::new().run(&sc), Err(Error::Sweep(_))));

    // Malformed workload (alpha out of range).
    let mut sc = scenario_for(TopologySpec::Ring { n: 8 });
    sc.workload.alpha = 2.0;
    assert!(matches!(
        Runner::new().run(&sc),
        Err(Error::InvalidScenario(_))
    ));

    // Malformed JSON.
    assert!(matches!(
        Scenario::from_json("{not json"),
        Err(Error::Serde(_))
    ));
    // Structurally valid JSON that is not a scenario.
    assert!(Scenario::from_json("{\"name\": \"x\"}").is_err());
}
