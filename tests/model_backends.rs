//! Cross-backend invariants at the workspace surface.
//!
//! Two analytical backends ship behind the [`ModelBackend`] trait: the
//! paper's M/G/1 mean-latency model (`mg1`) and the network-calculus
//! worst-case bounds (`nc`). Where both are defined they are ordered by
//! construction — a worst-case bound cannot sit below the mean, and a
//! loaded mean cannot sit below the zero-load latency:
//!
//! ```text
//! nc bound  >=  mg1 mean  >=  zero-load latency
//! ```
//!
//! These tests drive that chain property-based across all six registry
//! topologies, pin the serialization contract of the backend selector
//! (legacy files without a `backend` field keep meaning `mg1`, legacy
//! point results without bound columns parse as `NaN`), and regression-
//! test the bug this backend exists to fix: saturation-relative sweeps
//! under `Multipath` routing used to anchor on the inapplicable M/G/1
//! saturation estimate and run the "90% load" point at several times the
//! real stability horizon.

use proptest::prelude::*;
use quarc_noc::prelude::*;

/// The full topology registry; `alpha` is zeroed on Spidergon below
/// because its routers cannot fork a wormhole (no concurrent multicast),
/// which both backends report as a typed error rather than a number.
const TOPOLOGIES: [TopologySpec; 6] = [
    TopologySpec::Quarc { n: 16 },
    TopologySpec::Mesh {
        width: 4,
        height: 4,
    },
    TopologySpec::Torus {
        width: 4,
        height: 4,
    },
    TopologySpec::Hypercube { dim: 3 },
    TopologySpec::Ring { n: 8 },
    TopologySpec::Spidergon { n: 8 },
];

proptest! {
    // Each case evaluates three analytical models plus a saturation
    // bisection; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `nc bound >= mg1 mean >= zero-load latency` on every topology, for
    /// random destination sets and loads inside the calculus stability
    /// horizon (where both backends are defined).
    #[test]
    fn bound_dominates_mean_dominates_zero_load(
        topo_idx in 0usize..TOPOLOGIES.len(),
        seed in 0u64..500,
        group in 1usize..6,
        frac in 0.2f64..0.8,
    ) {
        let spec = TOPOLOGIES[topo_idx];
        let topo = spec.build().unwrap();
        let alpha = if matches!(spec, TopologySpec::Spidergon { .. }) {
            0.0
        } else {
            0.1
        };
        let sets = DestinationSets::random(topo.as_ref(), group, seed);
        let proto = Workload::new(32, 1e-4, alpha, sets).unwrap();
        let opts = ModelOptions::default();

        let nc_sat =
            NetworkCalculusBackend.max_sustainable_rate(topo.as_ref(), &proto, &opts, 0.01);
        prop_assert!(nc_sat > 0.0, "{spec}: empty stability horizon");
        let wl = proto.at_rate(frac * nc_sat).unwrap();

        let bound = NetworkCalculusBackend
            .evaluate(topo.as_ref(), &wl, &opts)
            .expect("inside the calculus horizon");
        let mean = MgOneBackend
            .evaluate(topo.as_ref(), &wl, &opts)
            .expect("mg1 is stable wherever the calculus is");
        let zero = MgOneBackend
            .evaluate(topo.as_ref(), &proto.at_rate(0.0).unwrap(), &opts)
            .expect("zero load is always stable");

        prop_assert!(
            bound.unicast_latency >= mean.unicast_latency,
            "{spec}: unicast bound {} < mean {}",
            bound.unicast_latency,
            mean.unicast_latency
        );
        prop_assert!(
            mean.unicast_latency >= zero.unicast_latency,
            "{spec}: loaded unicast mean {} < zero-load {}",
            mean.unicast_latency,
            zero.unicast_latency
        );
        if alpha > 0.0 {
            prop_assert!(
                bound.multicast_latency >= mean.multicast_latency,
                "{spec}: multicast bound {} < mean {}",
                bound.multicast_latency,
                mean.multicast_latency
            );
            prop_assert!(
                mean.multicast_latency >= zero.multicast_latency,
                "{spec}: loaded multicast mean {} < zero-load {}",
                mean.multicast_latency,
                zero.multicast_latency
            );
        }
    }
}

/// A short simulation: these tests need determinism and a working
/// saturation detector, not statistical quality.
fn tiny_sim(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::quick(seed);
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 4_000;
    cfg.drain_cycles = 8_000;
    cfg.backlog_limit = 4_000;
    cfg
}

fn multipath_scenario(sweep: SweepSpec) -> Scenario {
    // Multicast-dominated on purpose: multipath's synchronized multi-port
    // injection is exactly what the M/G/1 stream decomposition does not
    // model, so this is where its saturation estimate is optimistic.
    Scenario::new(
        "multipath-anchor",
        TopologySpec::Quarc { n: 16 },
        WorkloadSpec::new(16, 0.5, MulticastPattern::Random { group: 8 })
            .with_routing(RoutingSpec::Multipath),
        sweep,
    )
    .with_sim(tiny_sim(5))
    .with_seed(5)
}

/// The bugfix itself: a `Multipath` saturation-relative sweep must anchor
/// on the calculus backend (the M/G/1 stream decomposition does not
/// describe multipath's synchronized port injection), and the resulting
/// "90% of saturation" point must actually be sustainable.
#[test]
fn multipath_saturation_sweeps_anchor_on_the_calculus_backend() {
    let sc = multipath_scenario(SweepSpec::SaturationFractions {
        fractions: vec![0.9],
    });
    let (topo, proto) = sc.materialize().expect("scenario materializes");
    let opts = ModelOptions::default();

    assert!(
        !MgOneBackend.applicable(topo.as_ref(), &proto),
        "multipath must be outside the mg1 domain"
    );
    let nc_sat = NetworkCalculusBackend.max_sustainable_rate(topo.as_ref(), &proto, &opts, 0.01);
    let mg1_sat = MgOneBackend.max_sustainable_rate(topo.as_ref(), &proto, &opts, 0.01);
    assert!(
        mg1_sat > 1.5 * nc_sat,
        "the regression needs the anchors to disagree: mg1 {mg1_sat} vs nc {nc_sat}"
    );

    // resolve() re-routes to the calculus anchor...
    let resolved = sc
        .sweep
        .resolve(topo.as_ref(), &proto, opts)
        .expect("sweep resolves");
    let rate = resolved.rates()[0];
    let expected = 0.9 * nc_sat;
    assert!(
        (rate - expected).abs() <= 0.05 * expected,
        "resolved rate {rate} is not 90% of the calculus anchor {nc_sat}"
    );

    // ...and the simulator confirms the re-routed point is below the real
    // knee, where the old mg1-anchored rate was far past it.
    let result = Runner::new().run(&sc).expect("sweep runs");
    let p = &result.points[0];
    assert!(
        !p.sim_saturated,
        "90% of the calculus anchor saturated the simulator (rate {})",
        p.rate
    );
    assert!(p.sim_multicast.is_finite());

    // The pre-fix anchor called "90% of saturation" a rate past 100% of
    // the only sound stability estimate for this workload — the sweep's
    // load labels were fiction.
    let old_rate = 0.9 * mg1_sat;
    assert!(
        old_rate > nc_sat,
        "pre-fix rate {old_rate} should overshoot the calculus horizon {nc_sat}"
    );
    let old_anchor = multipath_scenario(SweepSpec::Explicit {
        rates: vec![old_rate],
    });
    let old = Runner::new().run(&old_anchor).expect("old anchor runs");
    assert!(
        old.points[0].sim_saturated || old.points[0].sim_multicast > p.sim_multicast,
        "the pre-fix anchor (rate {}) should load the network strictly \
         harder than the point it claimed to be: {} vs {}",
        old.points[0].rate,
        old.points[0].sim_multicast,
        p.sim_multicast
    );
}

/// The backend selector is part of the persisted-scenario format: it
/// round-trips, and files written before it existed keep deserializing
/// (absent selector = the original M/G/1 overlay).
#[test]
fn backend_selector_round_trips_and_legacy_files_default_to_mg1() {
    for backend in ALL_BACKENDS {
        let mut sc = multipath_scenario(SweepSpec::Explicit { rates: vec![1e-4] });
        sc.model = Some(ModelOptions {
            backend,
            ..ModelOptions::default()
        });
        let json = sc.to_json();
        let reloaded = Scenario::from_json(&json).expect("modern scenario parses");
        assert_eq!(sc, reloaded, "{backend} selector must round-trip");
        assert_eq!(reloaded.model.unwrap().backend, backend);
    }

    // A scenario JSON written before the backend refactor: ModelOptions
    // with fixed-point fields only.
    let mut sc = multipath_scenario(SweepSpec::Explicit { rates: vec![1e-4] });
    sc.model = Some(ModelOptions::default());
    let modern = sc.to_json();
    // Excise the selector (and the comma before it — it is the last
    // field of ModelOptions) to reconstruct a pre-refactor file.
    let start = modern.find("\"backend\"").expect("selector serialized");
    let comma = modern[..start].rfind(',').expect("preceded by a field");
    let end = start + modern[start..].find("\"MgOne\"").expect("default spec") + "\"MgOne\"".len();
    let legacy = format!("{}{}", &modern[..comma], &modern[end..]);
    let reloaded = Scenario::from_json(&legacy).expect("legacy scenario parses");
    assert_eq!(
        reloaded.model.unwrap().backend,
        BackendSpec::MgOne,
        "legacy files must keep meaning the original overlay"
    );
}

/// Result files from before the backend refactor lack the bound columns;
/// absent bounds parse as `NaN` (= never computed), exactly how a
/// disabled overlay reports.
#[test]
fn legacy_point_results_parse_with_nan_bounds() {
    let legacy = r#"{
        "rate": 0.003,
        "model_unicast": 21.5,
        "model_multicast": 34.0,
        "sim_unicast": 20.9,
        "sim_multicast": 33.1,
        "sim_multicast_ci": 0.8,
        "sim_saturated": false
    }"#;
    let p: PointResult = serde::json::from_str(legacy).expect("legacy point parses");
    assert_eq!(p.rate, 0.003);
    assert!(p.bound_unicast.is_nan(), "absent bound must read as NaN");
    assert!(p.bound_multicast.is_nan(), "absent bound must read as NaN");
    assert!(p.model_applicable, "pre-traffic files were all Poisson");
    assert_eq!(p.sim_multicast, 33.1);
}
