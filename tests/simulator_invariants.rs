//! Integration: structural invariants of the flit-level simulator under
//! load — conservation, determinism, deadlock freedom, latency lower
//! bounds and saturation behaviour — plus proptest conservation
//! invariants for the event-driven engine over randomly drawn workloads.

use proptest::prelude::*;
use quarc_noc::prelude::*;
use quarc_noc::sim::{SimConfig, Simulator};

#[test]
fn no_deadlock_at_heavy_load_on_ring_topologies() {
    // The rim rings have cyclic channel dependencies; the dateline VCs
    // must keep heavy wrap-around traffic deadlock-free. Drive each
    // topology far past saturation and require forward progress
    // throughout (the watchdog flags 10k move-free cycles).
    let cfg = |seed| {
        let mut c = SimConfig::quick(seed);
        c.backlog_limit = 100_000;
        c.drain_cycles = 30_000;
        c
    };
    let quarc = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&quarc, 4, 1);
    let wl = Workload::new(32, 0.08, 0.10, sets).unwrap();
    let res = Simulator::new(&quarc, &wl, cfg(1)).run();
    assert!(!res.deadlocked, "quarc deadlocked");
    assert!(res.total_absorbed > 0);

    let ring = Ring::new(8).unwrap();
    let sets = DestinationSets::random(&ring, 3, 1);
    let wl = Workload::new(32, 0.12, 0.10, sets).unwrap();
    let res = Simulator::new(&ring, &wl, cfg(2)).run();
    assert!(!res.deadlocked, "ring deadlocked");

    let torus = Mesh::new(4, 4, MeshKind::Torus).unwrap();
    let sets = DestinationSets::random(&torus, 4, 1);
    let wl = Workload::new(32, 0.08, 0.10, sets).unwrap();
    let res = Simulator::new(&torus, &wl, cfg(3)).run();
    assert!(!res.deadlocked, "torus deadlocked");

    let spid = Spidergon::new(16).unwrap();
    let sets = DestinationSets::random(&spid, 4, 1);
    let wl = Workload::new(32, 0.08, 0.10, sets).unwrap();
    let res = Simulator::new(&spid, &wl, cfg(4)).run();
    assert!(!res.deadlocked, "spidergon deadlocked");
}

#[test]
fn observed_latency_never_below_zero_load_bound() {
    // min latency >= msg + min hop count over any pair.
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 5);
    let wl = Workload::new(32, 0.006, 0.10, sets).unwrap();
    let res = Simulator::new(&topo, &wl, SimConfig::quick(7)).run();
    // Cheapest possible unicast: 1 link => hop_count 2 => 32 + 2.
    assert!(res.unicast.min >= 34.0, "unicast min {}", res.unicast.min);
    // Cheapest multicast: the farthest target of the op is at least one
    // link away; completion also needs all streams done.
    assert!(
        res.multicast.min >= 34.0,
        "multicast min {}",
        res.multicast.min
    );
}

#[test]
fn tagged_counts_are_consistent() {
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 5);
    let wl = Workload::new(16, 0.005, 0.2, sets).unwrap();
    let res = Simulator::new(&topo, &wl, SimConfig::quick(11)).run();
    assert!(!res.saturated);
    assert_eq!(res.unicast_delivered, res.unicast_injected);
    assert_eq!(res.multicast_delivered, res.multicast_injected);
    assert_eq!(res.unicast.count, res.unicast_delivered);
    assert_eq!(res.multicast.count, res.multicast_delivered);
    assert!(res.total_absorbed <= res.total_generated);
}

#[test]
fn utilization_scales_linearly_at_low_load() {
    // Channel utilisation must scale ~linearly with the offered rate well
    // below saturation (flit conservation check against the workload).
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 5);
    let mut utils = Vec::new();
    for rate in [0.002, 0.004] {
        let wl = Workload::new(32, rate, 0.05, sets.clone()).unwrap();
        let res = Simulator::new(&topo, &wl, SimConfig::quick(13)).run();
        utils.push(res.max_utilization());
    }
    let ratio = utils[1] / utils[0];
    assert!(
        (ratio - 2.0).abs() < 0.25,
        "doubling the rate should roughly double utilisation, got {ratio} ({utils:?})"
    );
}

#[test]
fn model_channel_rates_match_simulated_utilization() {
    // The model's per-channel arrival rates λ_j (rates.rs) imply a flit
    // throughput of λ_j · msg on every channel; at low load (negligible
    // blocking) the simulator's measured utilisation must match — a
    // direct cross-validation of the routing/weighting logic feeding
    // Eq. 6, independent of the queueing approximations.
    use quarc_noc::model::rates::ChannelLoads;
    use quarc_noc::model::ModelOptions;

    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 5);
    let wl = Workload::new(32, 0.003, 0.05, sets).unwrap();
    let loads = ChannelLoads::build(&topo, &wl, &ModelOptions::default());

    let mut cfg = SimConfig::quick(31);
    cfg.measure_cycles *= 8;
    cfg.drain_cycles *= 4;
    let res = Simulator::new(&topo, &wl, cfg).run();
    assert!(!res.saturated);

    let net = topo.network();
    let mut checked = 0;
    for c in net.links() {
        let model_util = loads.lambda[c.id.idx()] * 32.0;
        let sim_util = res.channel_utilization[c.id.idx()];
        if model_util < 0.02 {
            continue; // too little traffic for a stable estimate
        }
        checked += 1;
        // Tolerance: 8% structural + Poisson sampling noise (2/sqrt(n)).
        let expected_msgs = model_util * cfg.measure_cycles as f64 / 32.0;
        let tol = 0.08 + 2.0 / expected_msgs.sqrt();
        let rel = (model_util - sim_util).abs() / model_util;
        assert!(
            rel < tol,
            "{}: model util {model_util:.4} vs sim {sim_util:.4} (rel {rel:.3} > tol {tol:.3})",
            c.label
        );
    }
    assert!(checked > 30, "most links should carry measurable traffic");
}

#[test]
fn same_seed_same_everything_different_seed_different_run() {
    let topo = Mesh::new(4, 3, MeshKind::Mesh).unwrap();
    let sets = DestinationSets::random(&topo, 3, 5);
    let wl = Workload::new(16, 0.01, 0.1, sets).unwrap();
    let a = Simulator::new(&topo, &wl, SimConfig::quick(5)).run();
    let b = Simulator::new(&topo, &wl, SimConfig::quick(5)).run();
    assert_eq!(a.flit_moves, b.flit_moves);
    assert_eq!(a.unicast.mean, b.unicast.mean);
    assert_eq!(a.multicast.mean, b.multicast.mean);
    assert_eq!(a.total_generated, b.total_generated);
    let c = Simulator::new(&topo, &wl, SimConfig::quick(6)).run();
    assert_ne!(a.flit_moves, c.flit_moves);
}

#[test]
fn spidergon_one_port_serialisation_hurts_multicast() {
    // The same multicast workload must exhibit far higher collective
    // latency on the one-port Spidergon than on the all-port Quarc —
    // the architectural claim of the Quarc paper reproduced under load.
    let msg = 32u32;
    let quarc = Quarc::new(16).unwrap();
    let spid = Spidergon::new(16).unwrap();
    let q_sets = DestinationSets::random(&quarc, 8, 5);
    let s_sets = DestinationSets::random(&spid, 8, 5);
    let q_wl = Workload::new(msg, 0.003, 0.1, q_sets).unwrap();
    let s_wl = Workload::new(msg, 0.003, 0.1, s_sets).unwrap();
    let q = Simulator::new(&quarc, &q_wl, SimConfig::quick(3)).run();
    let s = Simulator::new(&spid, &s_wl, SimConfig::quick(3)).run();
    assert!(q.multicast.count > 10 && s.multicast.count > 10);
    assert!(
        s.multicast.mean > 2.0 * q.multicast.mean,
        "spidergon {} should be >2x slower than quarc {}",
        s.multicast.mean,
        q.multicast.mean
    );
}

#[test]
fn buffer_depth_one_still_works_but_slower_under_load() {
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 5);
    let wl = Workload::new(32, 0.005, 0.05, sets).unwrap();
    let mut deep = SimConfig::quick(9);
    deep.buffer_depth = 4;
    let mut shallow = SimConfig::quick(9);
    shallow.buffer_depth = 1;
    let d = Simulator::new(&topo, &wl, deep).run();
    let s = Simulator::new(&topo, &wl, shallow).run();
    assert!(!d.deadlocked && !s.deadlocked);
    // Depth-1 buffers halve per-channel throughput under the one-cycle
    // credit loop, so latency must be no better.
    assert!(
        s.unicast.mean >= d.unicast.mean,
        "depth-1 {} should be >= depth-4 {}",
        s.unicast.mean,
        d.unicast.mean
    );
}

// ---------------------------------------------------------------------------
// Proptest conservation invariants for the event-driven engine.
//
// `SimEngine::audit` walks the engine's resource state and rejects any
// structural violation (a cv owned by a dead message, a (message, hop)
// holding two cvs, a live multicast op with zero targets remaining, broken
// op accounting). On top of the audit these properties pin the
// conservation laws over randomly drawn workloads:
//
//   * flits injected == flits absorbed + flits in flight (message
//     granularity: every generated message is absorbed or still live);
//   * no channel is owned by two messages (audit's per-cv walk);
//   * every multicast op's `remaining` hits zero exactly once
//     (ops_allocated == ops_completed + live_ops, and completed ops are
//     recycled, never re-zeroed).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn event_engine_conserves_messages_and_ops(
        seed in 0u64..10_000,
        rate_milli in 1u32..=8,
        alpha_pct in 0u32..=25,
        msg_len in 4u32..=24,
        group in 2usize..=6,
    ) {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, group, seed);
        let wl = Workload::new(
            msg_len,
            rate_milli as f64 * 0.001,
            alpha_pct as f64 / 100.0,
            sets,
        )
        .unwrap();
        let mut sim = EventSimulator::new(&topo, &wl, SimConfig::quick(seed));
        let res = sim.run();
        let audit = sim.audit().map_err(TestCaseError::fail)?;
        prop_assert_eq!(
            audit.total_generated,
            audit.total_absorbed + audit.live_messages,
            "message conservation"
        );
        prop_assert_eq!(
            audit.ops_allocated,
            audit.ops_completed + audit.live_ops,
            "every multicast op completes exactly once"
        );
        prop_assert_eq!(audit.tagged_outstanding == 0, res.complete());
        prop_assert!(audit.queued_messages <= audit.live_messages);
        if !res.saturated {
            prop_assert_eq!(res.unicast_delivered, res.unicast_injected);
            prop_assert_eq!(res.multicast_delivered, res.multicast_injected);
            prop_assert_eq!(audit.tagged_outstanding, 0);
        }
    }

    #[test]
    fn event_engine_mid_run_state_is_structurally_sound(
        seed in 0u64..10_000,
        steps in 50u64..400,
        rate_milli in 2u32..=20,
    ) {
        // Freeze the engine mid-flight (messages queued, streaming and
        // draining) and audit the resource graph; then drain to the end
        // and require the conservation counters to close.
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, seed);
        let wl = Workload::new(16, rate_milli as f64 * 0.001, 0.2, sets).unwrap();
        let mut sim = EventSimulator::new(&topo, &wl, SimConfig::quick(seed));
        for _ in 0..steps {
            sim.step_one();
        }
        let mid = sim.audit().map_err(TestCaseError::fail)?;
        prop_assert_eq!(
            mid.total_generated,
            mid.total_absorbed + mid.live_messages,
            "mid-run message conservation"
        );
        prop_assert_eq!(
            mid.ops_allocated,
            mid.ops_completed + mid.live_ops,
            "mid-run op accounting"
        );
        // The cycle engine under the same seed must agree mid-run too.
        let mut reference = Simulator::new(
            &topo,
            &wl,
            SimConfig::quick(seed).with_engine(EngineKind::Cycle),
        );
        for _ in 0..steps {
            reference.step_one();
        }
        let ref_mid = reference.audit().map_err(TestCaseError::fail)?;
        prop_assert_eq!(mid, ref_mid, "mid-run audits of the two engines");
    }
}
