//! Cross-crate property-based tests (proptest): multicast stream
//! decomposition, destination-set generators and model monotonicity over
//! randomly drawn configurations.

use proptest::prelude::*;
use quarc_noc::model::{AnalyticModel, ModelOptions};
use quarc_noc::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a valid Quarc size.
fn quarc_size() -> impl Strategy<Value = usize> {
    (2usize..=16).prop_map(|k| k * 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quarc_streams_partition_targets(
        n in quarc_size(),
        seed in 0u64..1000,
        src in 0u32..64,
        group in 1usize..16,
    ) {
        let topo = Quarc::new(n).unwrap();
        let src = NodeId(src % n as u32);
        let sets = DestinationSets::random(&topo, group.min(n - 1), seed);
        let targets = sets.set(src);
        let streams = topo.multicast_streams(src, targets);
        // Streams cover every target exactly once.
        let mut covered = BTreeSet::new();
        for st in &streams {
            topo.network().validate_path(&st.path).unwrap();
            prop_assert_eq!(st.path.dst, *st.targets.last().unwrap());
            for &t in &st.targets {
                prop_assert!(covered.insert(t), "target {:?} covered twice", t);
            }
        }
        let expected: BTreeSet<_> = targets.iter().copied().collect();
        prop_assert_eq!(covered, expected);
        // No more streams than ports.
        prop_assert!(streams.len() <= topo.num_ports());
    }

    #[test]
    fn quarc_unicast_routes_are_shortest(
        n in quarc_size(),
        s in 0u32..64,
        d in 0u32..64,
    ) {
        let topo = Quarc::new(n).unwrap();
        let s = NodeId(s % n as u32);
        let d = NodeId(d % n as u32);
        prop_assume!(s != d);
        let path = topo.unicast_path(s, d);
        let dcw = topo.cw_dist(s, d);
        let dccw = n - dcw;
        let via_cross = 1 + dcw.abs_diff(n / 2);
        prop_assert_eq!(path.link_count(), dcw.min(dccw).min(via_cross));
    }

    #[test]
    fn localized_sets_share_one_port(
        n in quarc_size(),
        seed in 0u64..1000,
        group in 1usize..8,
    ) {
        let topo = Quarc::new(n).unwrap();
        let sets = DestinationSets::localized(&topo, group, seed);
        for i in 0..n as u32 {
            let src = NodeId(i);
            let set = sets.set(src);
            prop_assert!(!set.is_empty());
            let p0 = topo.port_for(src, set[0]);
            for &t in set {
                prop_assert_eq!(topo.port_for(src, t), p0);
            }
        }
    }

    #[test]
    fn ring_streams_partition(
        n in 4usize..24,
        seed in 0u64..500,
        group in 1usize..8,
    ) {
        let topo = Ring::new(n).unwrap();
        let sets = DestinationSets::random(&topo, group.min(n - 1), seed);
        for i in 0..n as u32 {
            let src = NodeId(i);
            let targets = sets.set(src);
            let streams = topo.multicast_streams(src, targets);
            let covered: BTreeSet<_> =
                streams.iter().flat_map(|st| st.targets.clone()).collect();
            let expected: BTreeSet<_> = targets.iter().copied().collect();
            prop_assert_eq!(covered, expected);
            prop_assert!(streams.len() <= 2);
        }
    }

    #[test]
    fn mesh_dual_path_partitions(
        w in 2usize..6,
        h in 2usize..6,
        seed in 0u64..500,
    ) {
        let topo = Mesh::new(w, h, MeshKind::Mesh).unwrap();
        let n = w * h;
        prop_assume!(n > 2);
        let sets = DestinationSets::random(&topo, (n / 2).max(1), seed);
        for i in 0..n as u32 {
            let src = NodeId(i);
            let streams = topo.multicast_streams(src, sets.set(src));
            let covered: BTreeSet<_> =
                streams.iter().flat_map(|st| st.targets.clone()).collect();
            let expected: BTreeSet<_> = sets.set(src).iter().copied().collect();
            prop_assert_eq!(covered, expected);
            prop_assert!(streams.len() <= 2, "dual-path means two streams");
        }
    }
}

proptest! {
    // Model evaluations are heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn model_latency_is_monotone_in_rate(
        seed in 0u64..100,
        alpha_pct in 0u32..=15,
    ) {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, seed);
        let alpha = alpha_pct as f64 / 100.0;
        let mut prev_uni = 0.0;
        let mut prev_mc = 0.0;
        for rate in [0.001, 0.003, 0.005, 0.007] {
            let wl = Workload::new(32, rate, alpha, sets.clone()).unwrap();
            let Ok(pred) = AnalyticModel::new(&topo, &wl, ModelOptions::default()).evaluate()
            else {
                break; // saturated: allowed for high alpha at the top rates
            };
            prop_assert!(pred.unicast_latency >= prev_uni);
            prop_assert!(pred.multicast_latency >= prev_mc);
            prev_uni = pred.unicast_latency;
            prev_mc = pred.multicast_latency;
        }
    }

    #[test]
    fn model_multicast_grows_with_group_size_at_zero_load(
        seed in 0u64..100,
    ) {
        // At zero load latency is msg + D_j; larger random groups can only
        // deepen the deepest stream.
        let topo = Quarc::new(32).unwrap();
        let mut prev = 0.0;
        for group in [2usize, 8, 16, 31] {
            let sets = DestinationSets::random(&topo, group, seed);
            let wl = Workload::new(32, 0.0, 0.0, sets).unwrap();
            let pred = AnalyticModel::new(&topo, &wl, ModelOptions::default())
                .evaluate()
                .unwrap();
            prop_assert!(
                pred.multicast_latency >= prev,
                "group {} latency {} below previous {}",
                group, pred.multicast_latency, prev
            );
            prev = pred.multicast_latency;
        }
    }
}
