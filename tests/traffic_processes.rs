//! Integration: the traffic subsystem's contracts.
//!
//! * **Mean-rate matching** — the on/off bursty source must average the
//!   nominal sweep rate, so burstiness sweeps stay comparable
//!   point-for-point with Poisson runs.
//! * **Engine equivalence under new processes** — both engines must stay
//!   bit-identical under every traffic spec, not just the geometric one
//!   the differential suite pins.
//! * **Record → replay** — recording a run's arrival trace and replaying
//!   it through [`TrafficSpec::Trace`] must reproduce the run
//!   bit-for-bit, on both engines.
//! * **Permutation routing** — the new adversarial patterns must route
//!   every message to the addressing-defined partner on mesh, torus and
//!   hypercube, and degrade to typed errors where the node index space
//!   lacks the required structure.
//! * **Scenario round-trips** — serializing and re-running a scenario
//!   must be bit-identical for every new `TrafficSpec`/`UnicastPattern`
//!   variant.

use quarc_noc::prelude::*;
use quarc_noc::sim::record_trace;
use quarc_noc::topology::addressing;

fn quick_workload(topo: &dyn Topology, rate: f64, traffic: TrafficSpec) -> Workload {
    let sets = DestinationSets::random(topo, 4, 3);
    Workload::new(16, rate, 0.1, sets)
        .unwrap()
        .with_traffic(traffic)
}

/// Run both engines on the same (topology, workload, seed); the
/// differential contract must hold for every traffic spec.
fn both(topo: &dyn Topology, wl: &Workload, cfg: SimConfig) -> (SimResults, SimResults) {
    let cycle = Simulator::new(topo, wl, cfg.with_engine(EngineKind::Cycle)).run();
    let event = EventSimulator::new(topo, wl, cfg.with_engine(EngineKind::EventDriven)).run();
    (cycle, event)
}

fn assert_runs_identical(a: &SimResults, b: &SimResults, ctx: &str) {
    assert_eq!(a.cycles, b.cycles, "{ctx}: cycle count");
    assert_eq!(a.saturated, b.saturated, "{ctx}: saturation flag");
    assert_eq!(a.total_generated, b.total_generated, "{ctx}: generated");
    assert_eq!(a.total_absorbed, b.total_absorbed, "{ctx}: absorbed");
    assert_eq!(a.flit_moves, b.flit_moves, "{ctx}: flit moves");
    assert_eq!(a.unicast.count, b.unicast.count, "{ctx}: uni samples");
    assert_eq!(a.multicast.count, b.multicast.count, "{ctx}: mc samples");
    assert_eq!(
        a.unicast.mean.to_bits(),
        b.unicast.mean.to_bits(),
        "{ctx}: unicast mean"
    );
    assert_eq!(
        a.multicast.mean.to_bits(),
        b.multicast.mean.to_bits(),
        "{ctx}: multicast mean"
    );
    assert_eq!(
        a.multicast.ci95.to_bits(),
        b.multicast.ci95.to_bits(),
        "{ctx}: multicast ci"
    );
}

// ---------------------------------------------------------------------------
// (a) On/off mean-rate matching
// ---------------------------------------------------------------------------

#[test]
fn onoff_long_run_rate_matches_the_nominal_rate() {
    let topo = Quarc::new(16).unwrap();
    for (burst_len, peak) in [(2.0, 0.3), (8.0, 0.5), (32.0, 0.25)] {
        let rate = 0.01;
        let wl = quick_workload(
            &topo,
            rate,
            TrafficSpec::OnOff {
                burst_len,
                peak_rate: peak,
            },
        );
        let mut streams = quarc_noc::sim::ArrivalStream::build_all(&wl, 16, 11);
        let n = 30_000u64;
        let mut last = 0u64;
        for _ in 0..n {
            let next = streams[2].next_arrival();
            assert!(next > last, "gaps stay >= 1 cycle");
            last = next;
            streams[2].pop(&wl, 16, NodeId(2));
        }
        // n arrivals took `last` cycles: the empirical rate must match
        // the nominal one within a few percent (the burstier the source,
        // the wider the variance, hence the 5% tolerance).
        let empirical = n as f64 / last as f64;
        assert!(
            (empirical - rate).abs() < 0.05 * rate,
            "burst {burst_len} peak {peak}: empirical rate {empirical} vs nominal {rate}"
        );
    }
}

// ---------------------------------------------------------------------------
// (b) Engine equivalence + record -> replay bit-identity
// ---------------------------------------------------------------------------

#[test]
fn engines_stay_bit_identical_under_onoff_traffic() {
    let topo = Quarc::new(16).unwrap();
    let wl = quick_workload(
        &topo,
        0.006,
        TrafficSpec::OnOff {
            burst_len: 8.0,
            peak_rate: 0.3,
        },
    );
    let (cycle, event) = both(&topo, &wl, SimConfig::quick(17));
    assert!(cycle.total_generated > 0);
    assert_runs_identical(&cycle, &event, "quarc on/off");
}

#[test]
fn recorded_trace_replays_bit_identically_on_both_engines() {
    let topo = Quarc::new(16).unwrap();
    for (label, traffic) in [
        ("geometric", TrafficSpec::Geometric),
        (
            "onoff",
            TrafficSpec::OnOff {
                burst_len: 8.0,
                peak_rate: 0.3,
            },
        ),
    ] {
        let wl = quick_workload(&topo, 0.005, traffic);
        let cfg = SimConfig::quick(23);
        let (cycle, event) = both(&topo, &wl, cfg);
        assert_runs_identical(&cycle, &event, label);

        // Record the arrival trace up to the run's final cycle and replay
        // it as deterministic traffic: the run must reproduce exactly.
        let trace = record_trace(&wl, 16, cfg.seed, cycle.cycles);
        assert!(!trace.is_empty(), "{label}: trace must not be empty");
        let replay_wl = wl.clone().with_traffic(TrafficSpec::trace(trace));
        let (replay_cycle, replay_event) = both(&topo, &replay_wl, cfg);
        assert_runs_identical(&cycle, &replay_cycle, &format!("{label} replay (cycle)"));
        assert_runs_identical(&event, &replay_event, &format!("{label} replay (event)"));
    }
}

// ---------------------------------------------------------------------------
// (c) Permutation patterns on mesh / torus / hypercube
// ---------------------------------------------------------------------------

#[test]
fn permutation_patterns_route_to_the_defined_partner() {
    let topologies: Vec<Box<dyn Topology>> = vec![
        Box::new(Mesh::new(4, 4, MeshKind::Mesh).unwrap()),
        Box::new(Mesh::new(4, 4, MeshKind::Torus).unwrap()),
        Box::new(Hypercube::new(4).unwrap()),
    ];
    type PartnerFn = fn(usize, NodeId) -> Option<NodeId>;
    let patterns: [(UnicastPattern, PartnerFn); 5] = [
        (UnicastPattern::Transpose, addressing::transpose),
        (UnicastPattern::BitReversal, addressing::bit_reverse),
        (UnicastPattern::Shuffle, addressing::shuffle),
        (UnicastPattern::Tornado, addressing::tornado),
        (UnicastPattern::Neighbor, |n, s| {
            Some(addressing::neighbor(n, s))
        }),
    ];
    for topo in &topologies {
        let n = topo.num_nodes();
        for (pattern, partner_fn) in &patterns {
            pattern.validate(n).expect("16 nodes fit every pattern");
            // Run a short simulation and check delivery: every tagged
            // unicast must land on the partner, which shows up as traffic
            // on exactly the partner's ejection channels.
            let sets = DestinationSets::random(topo.as_ref(), 2, 1);
            let wl = Workload::new(8, 0.004, 0.0, sets)
                .unwrap()
                .with_unicast_pattern(*pattern);
            let res = EventSimulator::new(topo.as_ref(), &wl, SimConfig::quick(5)).run();
            assert!(res.unicast.count > 0, "{pattern:?} on {}", topo.name());
            let net = topo.network();
            for ch in net.channels() {
                if ch.kind != quarc_noc::topology::ChannelKind::Ejection {
                    continue;
                }
                if res.channel_utilization[ch.id.idx()] > 0.0 {
                    // Someone absorbed at ch.to: that node must be the
                    // partner of at least one source (or a uniform
                    // fallback of a self-mapped source).
                    let dst = ch.to;
                    let reachable = (0..n as u32).map(NodeId).any(|src| {
                        src != dst
                            && match partner_fn(n, src) {
                                Some(p) if p != src => p == dst,
                                // Self-mapped sources fall back to uniform:
                                // any destination is fair.
                                _ => true,
                            }
                    });
                    assert!(
                        reachable,
                        "{pattern:?} on {}: unexpected traffic into {dst:?}",
                        topo.name()
                    );
                }
            }
            // And sampling hits the partner exactly (spot check per node).
            for s in 0..n as u32 {
                let src = NodeId(s);
                let partner = partner_fn(n, src).unwrap();
                if partner != src {
                    use rand::SeedableRng;
                    let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
                    assert_eq!(
                        pattern.sample(n, src, &mut rng),
                        partner,
                        "{pattern:?} sample at {src:?} on {}",
                        topo.name()
                    );
                }
            }
        }
    }
}

#[test]
fn structured_patterns_degrade_to_typed_errors_elsewhere() {
    // A 12-node ring is neither square nor a power of two.
    let n = Ring::new(12).unwrap().num_nodes();
    assert!(matches!(
        UnicastPattern::Transpose.validate(n),
        Err(PatternError::RequiresSquare { .. })
    ));
    assert!(matches!(
        UnicastPattern::BitReversal.validate(n),
        Err(PatternError::RequiresPowerOfTwo { .. })
    ));
    // Through the scenario layer the same mismatch is a workspace error,
    // not a panic.
    let sc = Scenario::new(
        "bitrev-ring",
        TopologySpec::Ring { n: 12 },
        WorkloadSpec::new(8, 0.0, MulticastPattern::Broadcast)
            .with_unicast(UnicastPattern::BitReversal),
        SweepSpec::Explicit { rates: vec![0.001] },
    )
    .with_sim(SimConfig::quick(1));
    match Runner::new().run(&sc) {
        Err(Error::Pattern(PatternError::RequiresPowerOfTwo { .. })) => {}
        other => panic!("expected a typed pattern error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// (d) Scenario JSON round-trips with every new variant
// ---------------------------------------------------------------------------

#[test]
fn scenario_round_trip_stays_bit_identical_with_new_variants() {
    // Short runs: round-trip testing needs determinism, not statistics.
    let mut sim = SimConfig::quick(9);
    sim.warmup_cycles = 500;
    sim.measure_cycles = 2_000;
    sim.drain_cycles = 8_000;

    // A trace to round-trip through JSON as well.
    let topo = Quarc::new(16).unwrap();
    let trace_wl = quick_workload(&topo, 0.004, TrafficSpec::Geometric);
    let trace = record_trace(&trace_wl, 16, 9, 4_000);

    let variants: Vec<(TrafficSpec, UnicastPattern)> = vec![
        (
            TrafficSpec::OnOff {
                burst_len: 4.0,
                peak_rate: 0.25,
            },
            UnicastPattern::Uniform,
        ),
        (TrafficSpec::trace(trace), UnicastPattern::Uniform),
        (TrafficSpec::Geometric, UnicastPattern::Transpose),
        (TrafficSpec::Geometric, UnicastPattern::BitReversal),
        (TrafficSpec::Geometric, UnicastPattern::Shuffle),
        (TrafficSpec::Geometric, UnicastPattern::Tornado),
        (TrafficSpec::Geometric, UnicastPattern::Neighbor),
        (
            TrafficSpec::OnOff {
                burst_len: 8.0,
                peak_rate: 0.25,
            },
            UnicastPattern::Tornado,
        ),
    ];
    let runner = Runner::new().threads(2);
    for (traffic, unicast) in variants {
        // Trace replay fixes the arrival schedule, so multi-point sweeps
        // over it are rejected by validation — sweep a single point there.
        let rates = if traffic.is_rate_driven() {
            vec![0.001, 0.003]
        } else {
            vec![0.003]
        };
        let original = Scenario::new(
            format!("rt-{}-{unicast:?}", traffic.code()),
            TopologySpec::Quarc { n: 16 },
            WorkloadSpec::new(8, 0.05, MulticastPattern::Random { group: 2 })
                .with_traffic(traffic)
                .with_unicast(unicast),
            SweepSpec::Explicit { rates },
        )
        .with_sim(sim)
        .with_seed(9);
        let json = original.to_json();
        let reloaded = Scenario::from_json(&json).expect("serialized scenario parses");
        assert_eq!(original, reloaded, "spec round-trip must be identity");
        let a = runner.run(&original).expect("original runs");
        let b = runner.run(&reloaded).expect("reloaded runs");
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{}: results diverged after a JSON round-trip",
            original.name
        );
        assert!(
            a.sims[0][0].total_absorbed > 0,
            "{}: empty run",
            original.name
        );
    }
}

// ---------------------------------------------------------------------------
// Satellite: MulticastPattern::Explicit edge cases through the Runner
// ---------------------------------------------------------------------------

#[test]
fn explicit_multicast_edge_cases_error_not_panic() {
    let scenario_with = |sets: Vec<Vec<u32>>, alpha: f64| {
        Scenario::new(
            "explicit-edge",
            TopologySpec::Ring { n: 4 },
            WorkloadSpec::new(8, alpha, MulticastPattern::Explicit { sets }),
            SweepSpec::Explicit { rates: vec![0.001] },
        )
        .with_sim(SimConfig::quick(1))
    };
    // Empty destination set while alpha > 0.
    let sets: Vec<Vec<u32>> = vec![vec![1], Vec::new(), vec![3], vec![0]];
    match Runner::new().run(&scenario_with(sets.clone(), 0.1)) {
        Err(Error::InvalidScenario(msg)) => assert!(msg.contains("empty"), "{msg}"),
        other => panic!("empty set with alpha > 0: got {other:?}"),
    }
    // The same sets are fine without multicast traffic.
    assert!(Runner::new().run(&scenario_with(sets, 0.0)).is_ok());

    // A source inside its own destination set.
    let sets = vec![vec![0, 1], vec![2], vec![3], vec![0]];
    match Runner::new().run(&scenario_with(sets, 0.1)) {
        Err(Error::InvalidScenario(msg)) => assert!(msg.contains("itself"), "{msg}"),
        other => panic!("self-in-set: got {other:?}"),
    }

    // An out-of-range node index.
    let sets = vec![vec![1], vec![2], vec![3], vec![7]];
    match Runner::new().run(&scenario_with(sets, 0.1)) {
        Err(Error::InvalidScenario(msg)) => assert!(msg.contains("outside"), "{msg}"),
        other => panic!("out-of-range: got {other:?}"),
    }
}
