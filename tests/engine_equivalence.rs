//! Differential suite: the event-driven engine must reproduce the
//! cycle-stepped reference engine **bit-for-bit** under a shared seed —
//! same delivered counts, same latency samples in the same order (hence
//! bit-identical means and confidence intervals), same cycle counts, same
//! per-channel utilisation — on every topology, at low and mid load, and
//! across early-termination paths (saturation, backlog overflow).

use quarc_noc::prelude::*;
use quarc_noc::sim::{EngineKind, EventSimulator, SimConfig, SimResults, Simulator};

/// Run both engines on the same (topology, workload, seed) and return
/// their results as (cycle, event).
fn both(topo: &dyn Topology, wl: &Workload, cfg: SimConfig) -> (SimResults, SimResults) {
    let cycle = Simulator::new(topo, wl, cfg.with_engine(EngineKind::Cycle)).run();
    let event = EventSimulator::new(topo, wl, cfg.with_engine(EngineKind::EventDriven)).run();
    (cycle, event)
}

/// Bitwise equality for f64 statistics (NaN-safe: both engines must
/// produce the same bits, including for empty-population NaNs).
fn assert_f64_bits(a: f64, b: f64, what: &str, ctx: &str) {
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "{ctx}: {what} differs: cycle {a} vs event {b}"
    );
}

fn assert_stats_equal(
    a: &quarc_noc::sim::LatencyStats,
    b: &quarc_noc::sim::LatencyStats,
    ctx: &str,
) {
    assert_eq!(a.count, b.count, "{ctx}: sample count");
    assert_f64_bits(a.mean, b.mean, "mean", ctx);
    assert_f64_bits(a.ci95, b.ci95, "ci95", ctx);
    assert_f64_bits(a.min, b.min, "min", ctx);
    assert_f64_bits(a.max, b.max, "max", ctx);
    assert_f64_bits(a.p50, b.p50, "p50", ctx);
    assert_f64_bits(a.p95, b.p95, "p95", ctx);
    assert_f64_bits(a.p99, b.p99, "p99", ctx);
}

fn assert_runs_identical(cycle: &SimResults, event: &SimResults, ctx: &str) {
    // Termination trajectory.
    assert_eq!(cycle.cycles, event.cycles, "{ctx}: cycle count");
    assert_eq!(cycle.saturated, event.saturated, "{ctx}: saturation flag");
    assert_eq!(cycle.deadlocked, event.deadlocked, "{ctx}: deadlock flag");

    // Conservation counters.
    assert_eq!(
        cycle.total_generated, event.total_generated,
        "{ctx}: generated"
    );
    assert_eq!(
        cycle.total_absorbed, event.total_absorbed,
        "{ctx}: absorbed"
    );
    assert_eq!(cycle.flit_moves, event.flit_moves, "{ctx}: flit moves");
    assert_eq!(
        cycle.peak_backlog, event.peak_backlog,
        "{ctx}: peak backlog"
    );

    // Delivered-message counts.
    assert_eq!(
        cycle.unicast_injected, event.unicast_injected,
        "{ctx}: uni inj"
    );
    assert_eq!(
        cycle.unicast_delivered, event.unicast_delivered,
        "{ctx}: uni del"
    );
    assert_eq!(
        cycle.multicast_injected, event.multicast_injected,
        "{ctx}: mc inj"
    );
    assert_eq!(
        cycle.multicast_delivered, event.multicast_delivered,
        "{ctx}: mc del"
    );

    // Latency populations, bit-identical (same samples in the same order).
    assert_stats_equal(&cycle.unicast, &event.unicast, ctx);
    assert_stats_equal(&cycle.multicast, &event.multicast, ctx);
    assert_stats_equal(&cycle.stream, &event.stream, ctx);
    assert_eq!(
        cycle.multicast_by_source.len(),
        event.multicast_by_source.len(),
        "{ctx}: per-source stats arity"
    );
    for (i, (c, e)) in cycle
        .multicast_by_source
        .iter()
        .zip(&event.multicast_by_source)
        .enumerate()
    {
        assert_stats_equal(c, e, &format!("{ctx} (source {i})"));
    }

    // Histogram and per-channel utilisation, exact.
    assert_eq!(
        cycle.multicast_hist.bins(),
        event.multicast_hist.bins(),
        "{ctx}: histogram bins"
    );
    assert_eq!(
        cycle.multicast_hist.overflow(),
        event.multicast_hist.overflow(),
        "{ctx}: histogram overflow"
    );
    assert_eq!(
        cycle.channel_utilization.len(),
        event.channel_utilization.len(),
        "{ctx}: utilisation arity"
    );
    for (ch, (c, e)) in cycle
        .channel_utilization
        .iter()
        .zip(&event.channel_utilization)
        .enumerate()
    {
        assert_f64_bits(*c, *e, &format!("utilisation of channel {ch}"), ctx);
    }

    // Flight-recorder artifacts: the streaming latency histograms and the
    // windowed utilization series are integer-counted and must match
    // exactly. The raw event trace is *excluded*: the engines schedule
    // work in different orders inside a cycle (documented on
    // `SimResults::trace`), so only its derived aggregates are contracts.
    assert_eq!(
        cycle.latency_hists, event.latency_hists,
        "{ctx}: latency histograms"
    );
    assert_eq!(cycle.util, event.util, "{ctx}: utilization series");
}

/// Seeded low/mid-load differential run on one topology.
fn check_topology(topo: &dyn Topology, rates: &[f64], alpha: f64, group: usize, seed: u64) {
    let sets = DestinationSets::random(topo, group, seed);
    for &rate in rates {
        let wl = Workload::new(16, rate, alpha, sets.clone()).unwrap();
        let (cycle, event) = both(topo, &wl, SimConfig::quick(seed));
        let ctx = format!("{} rate {rate}", topo.name());
        assert!(
            cycle.total_generated > 0,
            "{ctx}: the run must generate traffic"
        );
        assert_runs_identical(&cycle, &event, &ctx);
    }
}

#[test]
fn quarc_low_and_mid_load_identical() {
    let topo = Quarc::new(16).unwrap();
    check_topology(&topo, &[0.002, 0.012], 0.05, 4, 11);
}

#[test]
fn ring_low_and_mid_load_identical() {
    let topo = Ring::new(9).unwrap();
    check_topology(&topo, &[0.002, 0.010], 0.08, 3, 13);
}

#[test]
fn mesh_low_and_mid_load_identical() {
    let topo = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
    check_topology(&topo, &[0.002, 0.008], 0.08, 4, 17);
}

#[test]
fn torus_low_and_mid_load_identical() {
    let topo = Mesh::new(4, 4, MeshKind::Torus).unwrap();
    check_topology(&topo, &[0.002, 0.008], 0.08, 4, 19);
}

#[test]
fn spidergon_low_and_mid_load_identical() {
    let topo = Spidergon::new(12).unwrap();
    check_topology(&topo, &[0.001, 0.006], 0.05, 4, 23);
}

#[test]
fn hypercube_low_and_mid_load_identical() {
    let topo = Hypercube::new(4).unwrap();
    check_topology(&topo, &[0.002, 0.010], 0.05, 4, 29);
}

#[test]
fn min_low_and_mid_load_identical() {
    // Implicit storage + lazy plan: the engines memoize stream tables on
    // demand in different orders, which must not leak into the results.
    let topo = Min::new(2, 4).unwrap();
    check_topology(&topo, &[0.002, 0.010], 0.05, 4, 73);
}

#[test]
fn clustered_low_and_mid_load_identical() {
    let inner: std::sync::Arc<dyn Topology> = std::sync::Arc::new(Quarc::new(8).unwrap());
    let topo = Clustered::new(2, inner).unwrap();
    check_topology(&topo, &[0.002, 0.010], 0.05, 4, 79);
}

#[test]
fn min_saturated_load_breaks_identically() {
    // One-port butterfly under far-past-knee load: the backlog break must
    // land on the same cycle even though the lazy plan forces its stream
    // tables mid-run.
    let topo = Min::new(2, 4).unwrap();
    let sets = DestinationSets::random(&topo, 4, 83);
    let wl = Workload::new(64, 0.8, 0.5, sets).unwrap();
    let mut cfg = SimConfig::quick(83);
    cfg.backlog_limit = 2_000;
    let (cycle, event) = both(&topo, &wl, cfg);
    assert!(cycle.saturated, "rate 0.8 with 64-flit messages saturates");
    assert_runs_identical(&cycle, &event, "min saturated");
}

#[test]
fn clustered_saturated_load_breaks_identically() {
    // The express crossbar is the bottleneck: inter-cluster traffic piles
    // onto one gateway link per cluster pair.
    let inner: std::sync::Arc<dyn Topology> = std::sync::Arc::new(Quarc::new(8).unwrap());
    let topo = Clustered::new(2, inner).unwrap();
    let sets = DestinationSets::random(&topo, 4, 89);
    let wl = Workload::new(64, 0.8, 0.5, sets).unwrap();
    let mut cfg = SimConfig::quick(89);
    cfg.backlog_limit = 2_000;
    let (cycle, event) = both(&topo, &wl, cfg);
    assert!(cycle.saturated, "rate 0.8 with 64-flit messages saturates");
    assert_runs_identical(&cycle, &event, "clustered saturated");
}

#[test]
fn every_routing_scheme_is_engine_bit_identical() {
    // The engines replay the SimPlan's stream tables, so equivalence must
    // hold per routing scheme, not just for the default path-based one.
    use quarc_noc::topology::ALL_ROUTINGS;
    let quarc = Quarc::new(16).unwrap();
    let mesh = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
    let cube = Hypercube::new(4).unwrap();
    let topos: [&dyn Topology; 3] = [&quarc, &mesh, &cube];
    for topo in topos {
        let sets = DestinationSets::random(topo, 4, 37);
        for routing in ALL_ROUTINGS {
            for rate in [0.002, 0.010] {
                let wl = Workload::new(16, rate, 0.08, sets.clone())
                    .unwrap()
                    .with_routing(routing);
                let (cycle, event) = both(topo, &wl, SimConfig::quick(37));
                let ctx = format!("{} {routing} rate {rate}", topo.name());
                assert!(cycle.multicast_injected > 0, "{ctx}: multicast ran");
                assert_runs_identical(&cycle, &event, &ctx);
            }
        }
    }
}

#[test]
fn saturating_runs_break_identically() {
    // Early termination paths (backlog overflow / drain deadline) must
    // happen on the same cycle with the same flags.
    let topo = Quarc::new(8).unwrap();
    let sets = DestinationSets::random(&topo, 2, 3);
    let wl = Workload::new(64, 0.9, 0.5, sets).unwrap();
    let mut cfg = SimConfig::quick(13);
    cfg.backlog_limit = 2_000;
    let (cycle, event) = both(&topo, &wl, cfg);
    assert!(cycle.saturated);
    assert_runs_identical(&cycle, &event, "quarc saturating");
}

#[test]
fn mesh_saturated_load_breaks_identically() {
    // Saturated mesh: the calendar queue sees dense same-cycle arrival
    // bursts and the span-scan backoff is maximally engaged; the early
    // backlog break must still land on the same cycle with identical
    // statistics.
    let topo = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
    let sets = DestinationSets::random(&topo, 4, 41);
    let wl = Workload::new(64, 0.8, 0.5, sets).unwrap();
    let mut cfg = SimConfig::quick(41);
    cfg.backlog_limit = 2_000;
    let (cycle, event) = both(&topo, &wl, cfg);
    assert!(cycle.saturated, "rate 0.8 with 64-flit messages saturates");
    assert_runs_identical(&cycle, &event, "mesh saturated");
}

#[test]
fn torus_saturated_load_breaks_identically() {
    // Same probe on the torus, whose wraparound channels give the
    // dateline vc switch plenty of exercise under full backpressure.
    let topo = Mesh::new(4, 4, MeshKind::Torus).unwrap();
    let sets = DestinationSets::random(&topo, 4, 43);
    let wl = Workload::new(64, 0.8, 0.5, sets).unwrap();
    let mut cfg = SimConfig::quick(43);
    cfg.backlog_limit = 2_000;
    let (cycle, event) = both(&topo, &wl, cfg);
    assert!(cycle.saturated, "rate 0.8 with 64-flit messages saturates");
    assert_runs_identical(&cycle, &event, "torus saturated");
}

#[test]
fn near_knee_load_identical() {
    // Heavy-but-draining load: the event engine spends most cycles in
    // active stepping rather than skipping; equality must still be exact.
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 7);
    let wl = Workload::new(32, 0.02, 0.10, sets).unwrap();
    let (cycle, event) = both(&topo, &wl, SimConfig::quick(31));
    assert_runs_identical(&cycle, &event, "quarc near knee");
}

#[test]
fn zero_rate_runs_terminate_identically() {
    // With no traffic at all the run must end at the measurement boundary
    // on both engines (the event engine jumps there in one hop).
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 1);
    let wl = Workload::new(16, 0.0, 0.0, sets).unwrap();
    let (cycle, event) = both(&topo, &wl, SimConfig::quick(1));
    assert_runs_identical(&cycle, &event, "quarc zero rate");
    assert_eq!(cycle.cycles, SimConfig::quick(1).measure_end());
}

// ---------------------------------------------------------------------
// Closed-loop protocols: the per-node machines must replay bit-
// identically on both engines — same event order, same RNG draws, same
// injections, same quiescence cycle.
// ---------------------------------------------------------------------

/// Run both engines closed-loop on the same (topology, sets, spec, seed).
fn both_closed(
    topo: &dyn Topology,
    sets: DestinationSets,
    spec: &ClosedLoopSpec,
    seed: u64,
) -> (SimResults, SimResults) {
    let wl = Workload::new(8, 0.0, 0.0, sets).unwrap();
    let cfg = SimConfig::quick(seed);
    let mut cycle = Simulator::new(topo, &wl, cfg.with_engine(EngineKind::Cycle));
    cycle.install_closed_loop(spec, seed);
    let mut event = EventSimulator::new(topo, &wl, cfg.with_engine(EngineKind::EventDriven));
    event.install_closed_loop(spec, seed);
    (cycle.run(), event.run())
}

fn assert_closed_identical(cycle: &SimResults, event: &SimResults, ctx: &str) {
    assert_runs_identical(cycle, event, ctx);
    let c = cycle.closed_loop.as_ref().expect("cycle closed-loop stats");
    let e = event.closed_loop.as_ref().expect("event closed-loop stats");
    assert_eq!(c.requests_issued, e.requests_issued, "{ctx}: issued");
    assert_eq!(c.requests_retired, e.requests_retired, "{ctx}: retired");
    assert_stats_equal(&c.completion, &e.completion, ctx);
    assert_f64_bits(c.avg_outstanding, e.avg_outstanding, "avg outstanding", ctx);
    assert_f64_bits(c.ops_per_cycle, e.ops_per_cycle, "ops per cycle", ctx);
    assert_eq!(c.quiesced, e.quiesced, "{ctx}: quiesced flag");
    assert_eq!(c.quiesce_cycle, e.quiesce_cycle, "{ctx}: quiescence cycle");
    assert_eq!(
        c.completion_hist, e.completion_hist,
        "{ctx}: completion histogram"
    );
}

#[test]
fn coherence_closed_loop_identical_on_quarc_and_mesh() {
    let spec = ClosedLoopSpec::Coherence {
        window: 4,
        requests: 40,
        write_fraction: 0.3,
    };
    let quarc = Quarc::new(16).unwrap();
    let mesh = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
    let topos: [&dyn Topology; 2] = [&quarc, &mesh];
    for topo in topos {
        let sets = DestinationSets::random(topo, 4, 51);
        let (cycle, event) = both_closed(topo, sets, &spec, 51);
        let ctx = format!("{} coherence", topo.name());
        let cl = cycle.closed_loop.as_ref().unwrap();
        assert!(cl.quiesced, "{ctx}: must quiesce");
        assert_eq!(cl.requests_retired, 16 * 40, "{ctx}: every request retires");
        assert_closed_identical(&cycle, &event, &ctx);
    }
}

#[test]
fn barrier_closed_loop_identical_on_quarc_and_torus() {
    // The barrier exercises the timer path (compute delays) and the
    // broadcast release; its fan-in tree must converge identically.
    let spec = ClosedLoopSpec::Barrier {
        rounds: 6,
        radix: 2,
        compute: 12,
    };
    let quarc = Quarc::new(16).unwrap();
    let torus = Mesh::new(4, 4, MeshKind::Torus).unwrap();
    let topos: [&dyn Topology; 2] = [&quarc, &torus];
    for topo in topos {
        let sets = DestinationSets::broadcast(topo);
        let (cycle, event) = both_closed(topo, sets, &spec, 53);
        let ctx = format!("{} barrier", topo.name());
        let cl = cycle.closed_loop.as_ref().unwrap();
        assert!(cl.quiesced, "{ctx}: must quiesce");
        assert_eq!(cl.requests_retired, 16 * 6, "{ctx}: every round retires");
        assert_closed_identical(&cycle, &event, &ctx);
    }
}

#[test]
fn closed_loop_seeds_decorrelate_but_replay() {
    // Same seed → bit-identical; different master seed → different
    // trajectory (the protocol RNGs really are seeded per run).
    let topo = Quarc::new(16).unwrap();
    let spec = ClosedLoopSpec::Coherence {
        window: 2,
        requests: 24,
        write_fraction: 0.5,
    };
    let sets = DestinationSets::random(&topo, 4, 57);
    let (a, _) = both_closed(&topo, sets.clone(), &spec, 57);
    let (b, _) = both_closed(&topo, sets.clone(), &spec, 57);
    assert_eq!(a.flit_moves, b.flit_moves, "same seed replays");
    assert_eq!(a.cycles, b.cycles);
    let (c, _) = both_closed(&topo, sets, &spec, 58);
    assert_ne!(
        a.flit_moves, c.flit_moves,
        "different master seed, different run"
    );
}

// ---------------------------------------------------------------------
// Flight recorder: enabling telemetry must not perturb the simulation,
// and the telemetry the two engines record must itself be identical
// (utilization series exactly; traces compared as multisets since the
// engines order same-cycle work differently).
// ---------------------------------------------------------------------

#[test]
fn telemetry_on_both_engines_stays_bit_identical() {
    use quarc_noc::sim::TelemetrySpec;
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 61);
    for rate in [0.002, 0.012] {
        let wl = Workload::new(16, rate, 0.05, sets.clone()).unwrap();
        let cfg = SimConfig::quick(61).with_telemetry(TelemetrySpec::flight_recorder(1 << 16, 64));
        let (cycle, event) = both(&topo, &wl, cfg);
        let ctx = format!("quarc telemetry-on rate {rate}");
        assert_runs_identical(&cycle, &event, &ctx);
        let cu = cycle.util.as_ref().expect("cycle util captured");
        assert!(cu.num_windows() > 0, "{ctx}: windows recorded");
        // Same flit movement → same trace *population*, even though the
        // engines emit same-cycle events in different orders.
        let ct = cycle.trace.as_ref().expect("cycle trace captured");
        let et = event.trace.as_ref().expect("event trace captured");
        assert_eq!(ct.dropped, 0, "{ctx}: ring big enough for a quick run");
        let key = |t: &quarc_noc::sim::TraceLog| {
            let mut k: Vec<(u64, u8, u32)> = t
                .events
                .iter()
                .map(|e| (e.at, e.kind as u8, e.loc))
                .collect();
            k.sort_unstable();
            k
        };
        assert_eq!(key(ct), key(et), "{ctx}: trace multisets");
    }
}

#[test]
fn telemetry_is_observation_only() {
    use quarc_noc::sim::TelemetrySpec;
    // The PR 6 guard: a run with the flight recorder on must report the
    // same simulation — every pre-telemetry field bit-identical — as the
    // same run with it off, on both engines.
    let topo = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
    let sets = DestinationSets::random(&topo, 4, 67);
    let wl = Workload::new(16, 0.008, 0.08, sets).unwrap();
    let base = SimConfig::quick(67);
    let on = base.with_telemetry(TelemetrySpec::flight_recorder(1 << 16, 128));
    let (cycle_off, event_off) = both(&topo, &wl, base);
    let (cycle_on, event_on) = both(&topo, &wl, on);
    for (off, on, ctx) in [
        (&cycle_off, &cycle_on, "cycle on-vs-off"),
        (&event_off, &event_on, "event on-vs-off"),
    ] {
        assert_eq!(off.cycles, on.cycles, "{ctx}: cycle count");
        assert_eq!(off.flit_moves, on.flit_moves, "{ctx}: flit moves");
        assert_eq!(off.total_absorbed, on.total_absorbed, "{ctx}: absorbed");
        assert_stats_equal(&off.unicast, &on.unicast, ctx);
        assert_stats_equal(&off.multicast, &on.multicast, ctx);
        for (c, e) in off.channel_utilization.iter().zip(&on.channel_utilization) {
            assert_f64_bits(*c, *e, "channel utilization", ctx);
        }
        assert!(
            off.trace.is_none() && off.util.is_none(),
            "{ctx}: off is off"
        );
        assert!(on.trace.is_some() && on.util.is_some(), "{ctx}: on is on");
    }
}

#[test]
fn closed_loop_telemetry_identical_and_offsets_re_zeroed() {
    use quarc_noc::sim::TelemetrySpec;
    // Closed-loop runs measure from cycle 1 (no warmup): the utilization
    // series must start at window 0, and both engines must agree on it.
    let topo = Quarc::new(16).unwrap();
    let spec = ClosedLoopSpec::Coherence {
        window: 4,
        requests: 24,
        write_fraction: 0.3,
    };
    let sets = DestinationSets::random(&topo, 4, 71);
    let wl = Workload::new(8, 0.0, 0.0, sets).unwrap();
    let cfg = SimConfig::quick(71).with_telemetry(TelemetrySpec::flight_recorder(1 << 16, 64));
    let mut cycle = Simulator::new(&topo, &wl, cfg.with_engine(EngineKind::Cycle));
    cycle.install_closed_loop(&spec, 71);
    let mut event = EventSimulator::new(&topo, &wl, cfg.with_engine(EngineKind::EventDriven));
    event.install_closed_loop(&spec, 71);
    let (cycle, event) = (cycle.run(), event.run());
    assert_closed_identical(&cycle, &event, "quarc coherence telemetry");
    let util = cycle.util.as_ref().expect("util captured");
    assert!(
        util.counts
            .first()
            .is_some_and(|w| w.iter().any(|&c| c > 0)),
        "first window carries traffic — offsets re-zeroed, not warmup-shifted"
    );
    let hist = &cycle.closed_loop.as_ref().unwrap().completion_hist;
    assert_eq!(hist.count(), 16 * 24, "one completion sample per request");
}

#[test]
fn shared_plan_differential_pair_is_identical_too() {
    // The intended production setup: one SimPlan serving both engines.
    use quarc_noc::sim::{build_engine_with_plan, SimPlan};
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 5);
    let wl = Workload::new(16, 0.006, 0.1, sets).unwrap();
    let plan = SimPlan::build(&topo, &wl).expect("plan builds");
    let cfg = SimConfig::quick(43);
    let cycle = build_engine_with_plan(
        &topo,
        &wl,
        cfg.with_engine(EngineKind::Cycle),
        std::sync::Arc::clone(&plan),
    )
    .run();
    let event = build_engine_with_plan(&topo, &wl, cfg, plan).run();
    assert_runs_identical(&cycle, &event, "quarc shared plan");
}
