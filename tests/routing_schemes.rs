//! Multicast routing-scheme suite: partition invariants for every scheme
//! (proptest), `PathBased` equivalence with the pre-abstraction native
//! construction, per-scheme end-to-end runs with model-applicability
//! stamping, typed rejection of unrealizable schemes, and spec
//! serialization compatibility.
//!
//! Engine bit-equivalence per scheme lives in `tests/engine_equivalence.rs`
//! (`every_routing_scheme_is_engine_bit_identical`); byte-identical
//! `PathBased` goldens live in `tests/migration_golden.rs`.

use proptest::prelude::*;
use quarc_noc::bench::Error;
use quarc_noc::prelude::*;
use quarc_noc::topology::{RoutingError, RoutingSpec, ALL_ROUTINGS};
use std::collections::BTreeSet;

fn small_scenario(routing: RoutingSpec) -> Scenario {
    Scenario::new(
        format!("routing-{routing}"),
        TopologySpec::Mesh {
            width: 4,
            height: 4,
        },
        WorkloadSpec::new(16, 0.08, MulticastPattern::Random { group: 4 }).with_routing(routing),
        SweepSpec::Explicit { rates: vec![0.004] },
    )
    .with_sim(SimConfig::quick(5))
    .with_seed(5)
}

#[test]
fn path_based_matches_the_native_construction_on_every_topology() {
    // The pre-abstraction behaviour: whatever `Topology::multicast_streams`
    // produced is exactly what `RoutingSpec::PathBased` must produce.
    for spec in [
        TopologySpec::Quarc { n: 16 },
        TopologySpec::Ring { n: 9 },
        TopologySpec::Spidergon { n: 12 },
        TopologySpec::Mesh {
            width: 4,
            height: 3,
        },
        TopologySpec::Torus {
            width: 4,
            height: 4,
        },
        TopologySpec::Hypercube { dim: 3 },
    ] {
        let topo = spec.build().unwrap();
        let n = topo.num_nodes() as u32;
        for src in [0, n / 2, n - 1] {
            let src = NodeId(src);
            let targets: Vec<NodeId> = (0..n).map(NodeId).filter(|&t| t != src).collect();
            assert_eq!(
                RoutingSpec::PathBased.streams(topo.as_ref(), src, &targets),
                topo.multicast_streams(src, &targets),
                "{spec} src {src:?}"
            );
        }
    }
}

#[test]
fn runner_results_are_unchanged_by_an_explicit_path_based_spec() {
    // Byte-identical regression at the experiment level: a scenario that
    // never mentions routing and one that names PathBased explicitly are
    // the same experiment.
    let implicit = Scenario::new(
        "routing-implicit",
        TopologySpec::Quarc { n: 16 },
        WorkloadSpec::new(16, 0.05, MulticastPattern::Random { group: 4 }),
        SweepSpec::Explicit { rates: vec![0.004] },
    )
    .with_sim(SimConfig::quick(3))
    .with_seed(3);
    let mut explicit = implicit.clone();
    explicit.workload.routing = RoutingSpec::PathBased;
    let a = Runner::new().run(&implicit).unwrap();
    let b = Runner::new().run(&explicit).unwrap();
    assert_eq!(a.to_csv(), b.to_csv());
}

#[test]
fn every_scheme_runs_end_to_end_with_correct_model_stamps() {
    for routing in ALL_ROUTINGS {
        let res = Runner::new().run(&small_scenario(routing)).unwrap();
        let p = &res.points[0];
        assert!(
            p.sim_multicast.is_finite() && p.sim_multicast > 16.0,
            "{routing}: simulated latency {}",
            p.sim_multicast
        );
        assert!(!p.sim_saturated, "{routing}: low load must not saturate");
        assert_eq!(
            p.model_applicable,
            routing.model_applicable(),
            "{routing}: applicability stamp"
        );
        // The overlay is evaluated even out of domain — the divergence is
        // the measurement.
        assert!(
            p.model_multicast.is_finite(),
            "{routing}: overlay still evaluated"
        );
    }
}

#[test]
fn unrealizable_schemes_are_typed_spec_errors_not_panics() {
    // Concurrent-stream schemes on the one-port Spidergon.
    for routing in [RoutingSpec::DualPath, RoutingSpec::Multipath] {
        let mut sc = small_scenario(routing);
        sc.topology = TopologySpec::Spidergon { n: 12 };
        match sc.validate() {
            Err(Error::Routing(RoutingError::SingleInjectionPort { scheme, ports: 1 })) => {
                assert_eq!(scheme, routing.code());
            }
            other => panic!("{routing}: expected Error::Routing, got {other:?}"),
        }
        // The runner refuses the same way (validation runs first).
        assert!(matches!(
            Runner::new().run(&sc),
            Err(Error::Routing(RoutingError::SingleInjectionPort { .. }))
        ));
    }
    // The port-free schemes remain fine on one-port topologies.
    for routing in [RoutingSpec::PathBased, RoutingSpec::UnicastTree] {
        let mut sc = small_scenario(routing);
        sc.topology = TopologySpec::Spidergon { n: 12 };
        sc.workload.alpha = 0.0; // the spidergon model rejects multicast
        assert!(sc.validate().is_ok(), "{routing} is realizable on 1 port");
    }
}

#[test]
fn routing_specs_round_trip_and_missing_keys_default_to_path_based() {
    for routing in ALL_ROUTINGS {
        let sc = small_scenario(routing);
        let back = Scenario::from_json(&sc.to_json()).expect("round trip parses");
        assert_eq!(sc, back);
        assert_eq!(back.workload.routing, routing);
    }
    // A WorkloadSpec persisted before the routing abstraction has no
    // `routing` key; it must parse as the only scheme that existed then.
    let legacy = r#"{
        "msg_len": 16,
        "alpha": 0.05,
        "multicast": {"Random": {"group": 4}},
        "unicast": "Uniform"
    }"#;
    let spec: WorkloadSpec = serde::json::from_str(legacy).expect("legacy spec parses");
    assert_eq!(spec.routing, RoutingSpec::PathBased);
}

#[test]
fn dual_path_beats_the_unicast_baseline_on_broadcast() {
    // The qualitative ordering the schemes exist to show: hardware
    // path-based multicast amortizes one injection over many deliveries,
    // while source-replicated unicast pays per destination.
    let mk = |routing| {
        Scenario::new(
            format!("bcast-{routing}"),
            TopologySpec::Mesh {
                width: 4,
                height: 4,
            },
            WorkloadSpec::new(16, 0.05, MulticastPattern::Broadcast).with_routing(routing),
            SweepSpec::Explicit { rates: vec![0.002] },
        )
        .with_sim(SimConfig::quick(11))
        .with_seed(11)
    };
    let dual = Runner::new().run(&mk(RoutingSpec::DualPath)).unwrap();
    let uni = Runner::new().run(&mk(RoutingSpec::UnicastTree)).unwrap();
    assert!(
        dual.points[0].sim_multicast < uni.points[0].sim_multicast,
        "dual-path broadcast ({}) must beat 15 serialized unicasts ({})",
        dual.points[0].sim_multicast,
        uni.points[0].sim_multicast
    );
}

/// Shared partition-invariant check: streams cover the requested set
/// exactly once, never deliver to the source, and every path validates.
fn check_partition(topo: &dyn Topology, spec: RoutingSpec, src: NodeId, targets: &[NodeId]) {
    let streams = spec.streams(topo, src, targets);
    let mut covered = BTreeSet::new();
    for st in &streams {
        topo.network().validate_path(&st.path).unwrap();
        assert_eq!(st.path.dst, *st.targets.last().unwrap());
        for &t in &st.targets {
            assert_ne!(t, src, "{spec}: no self-delivery");
            assert!(covered.insert(t), "{spec}: {t:?} covered twice");
        }
    }
    let expected: BTreeSet<_> = targets.iter().copied().filter(|&t| t != src).collect();
    assert_eq!(covered, expected, "{spec}: exact cover");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn schemes_partition_random_sets_on_the_quarc(
        n in (2usize..=12).prop_map(|k| k * 4),
        seed in 0u64..500,
        group in 1usize..12,
        src in 0u32..48,
    ) {
        let topo = Quarc::new(n).unwrap();
        let src = NodeId(src % n as u32);
        let sets = DestinationSets::random(&topo, group.min(n - 1), seed);
        for spec in ALL_ROUTINGS {
            check_partition(&topo, spec, src, sets.set(src));
        }
    }

    #[test]
    fn schemes_partition_random_sets_on_the_mesh(
        w in 2usize..5,
        h in 2usize..5,
        seed in 0u64..500,
        src in 0u32..25,
    ) {
        let topo = Mesh::new(w, h, MeshKind::Mesh).unwrap();
        let n = w * h;
        prop_assume!(n > 2);
        let src = NodeId(src % n as u32);
        let sets = DestinationSets::random(&topo, (n / 2).max(1), seed);
        for spec in ALL_ROUTINGS {
            check_partition(&topo, spec, src, sets.set(src));
        }
    }

    #[test]
    fn schemes_partition_broadcasts_on_the_hypercube(
        dim in 2usize..6,
        src in 0u32..64,
    ) {
        let topo = Hypercube::new(dim).unwrap();
        let n = 1usize << dim;
        let src = NodeId(src % n as u32);
        let targets: Vec<NodeId> =
            (0..n as u32).map(NodeId).filter(|&t| t != src).collect();
        for spec in ALL_ROUTINGS {
            check_partition(&topo, spec, src, &targets);
            let streams = spec.streams(&topo, src, &targets);
            match spec {
                RoutingSpec::DualPath => prop_assert!(streams.len() <= 2),
                RoutingSpec::Multipath => {
                    prop_assert!(streams.len() <= topo.num_ports().max(2));
                }
                RoutingSpec::UnicastTree => prop_assert_eq!(streams.len(), n - 1),
                RoutingSpec::PathBased => {}
            }
        }
    }
}
