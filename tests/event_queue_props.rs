//! Property-based tests of the calendar event queue: model-based
//! equivalence against a sorted reference under random push/drain
//! scripts (exercising bucket wrap-around and the far-heap migration),
//! plus the frontier safety property — no event can be scheduled into
//! the past.

use proptest::prelude::*;
use quarc_noc::sim::schedule::{EventQueue, CALENDAR_SLOTS};

/// One step of a random queue script.
#[derive(Clone, Debug)]
enum Op {
    /// Push an event at `now + offset` (offsets beyond `CALENDAR_SLOTS`
    /// land in the far heap and must migrate into the window later).
    Push { offset: u64, id: u32 },
    /// Advance the clock by `advance` cycles and drain everything due.
    Drain { advance: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..5, 0u64..4 * CALENDAR_SLOTS, 0u32..64).prop_map(|(kind, t, id)| {
        if kind < 3 {
            Op::Push { offset: t, id }
        } else {
            Op::Drain {
                advance: t % (3 * CALENDAR_SLOTS),
            }
        }
    })
}

/// Execute `ops` against the queue and a sorted multiset reference.
/// Returns every popped `(time, id)` in pop order after a final
/// drain-to-empty.
fn run_script(ops: &[Op]) -> Result<Vec<(u64, u32)>, TestCaseError> {
    let mut queue = EventQueue::new();
    let mut model: Vec<(u64, u32)> = Vec::new();
    let mut now = 0u64;
    let mut popped = Vec::new();

    let drain = |queue: &mut EventQueue,
                 model: &mut Vec<(u64, u32)>,
                 popped: &mut Vec<(u64, u32)>,
                 now: u64|
     -> Result<(), TestCaseError> {
        loop {
            let due = queue.peek_time().filter(|&t| t <= now);
            match queue.pop_due(now) {
                Some(id) => {
                    let t = due.expect("pop_due returned an event peek_time did not announce");
                    // The reference: the minimum (time, id) still pending.
                    model.sort_unstable();
                    let expect = model.remove(0);
                    prop_assert_eq!((t, id), expect, "pop disagrees with the sorted reference");
                    popped.push((t, id));
                }
                None => {
                    prop_assert!(
                        model.first().is_none_or(|&(t, _)| t > now),
                        "queue withheld a due event at now={}",
                        now
                    );
                    return Ok(());
                }
            }
        }
    };

    for op in ops {
        match *op {
            Op::Push { offset, id } => {
                queue.push(now + offset, id);
                model.push((now + offset, id));
            }
            Op::Drain { advance } => {
                now += advance;
                drain(&mut queue, &mut model, &mut popped, now)?;
            }
        }
        prop_assert_eq!(
            queue.len(),
            model.len(),
            "length drifted from the reference"
        );
    }
    now = now.saturating_add(5 * CALENDAR_SLOTS);
    drain(&mut queue, &mut model, &mut popped, now)?;
    prop_assert!(queue.is_empty(), "final drain left events behind");
    Ok(popped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pops_match_a_sorted_reference_across_bucket_wraps(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let popped = run_script(&ops)?;
        // Pop order is globally non-decreasing in time and, within a
        // time, ascending in id — even as the calendar wraps its 1024
        // slots and far events migrate into the window.
        for w in popped.windows(2) {
            prop_assert!(
                w[0] <= w[1],
                "pop order regressed across a wrap: {:?} before {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn no_event_is_ever_scheduled_into_the_past(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        behind in 1u64..CALENDAR_SLOTS,
    ) {
        // Replay the script, then try to push strictly behind the drain
        // frontier (the time of the most recently popped event): the
        // queue must reject it by panicking, never silently mis-filing
        // it into a stale bucket.
        let popped = run_script(&ops)?;
        prop_assume!(popped.last().is_some_and(|&(t, _)| t > 0));
        let frontier = popped.last().unwrap().0;

        let mut queue = EventQueue::new();
        for (i, &(t, _)) in popped.iter().enumerate() {
            queue.push(t, i as u32);
        }
        let mut now = 0;
        while queue.pop_due(frontier).is_some() {
            now += 1;
        }
        prop_assert_eq!(now as usize, popped.len());

        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            queue.push(frontier - behind.min(frontier), 999);
        }));
        std::panic::set_hook(hook);
        prop_assert!(
            result.is_err(),
            "push at {} behind frontier {} was accepted",
            frontier - behind.min(frontier),
            frontier
        );
    }
}
