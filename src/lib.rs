//! # quarc-noc — facade crate
//!
//! One-stop re-export of the IPDPS 2009 reproduction workspace:
//!
//! * [`topology`] — Quarc, Spidergon, ring, mesh/torus channel graphs,
//!   deterministic routing and the [`TopologySpec`](prelude::TopologySpec)
//!   construct-by-name registry ([`noc_topology`]).
//! * [`queueing`] — M/G/1 waiting times, exponential order statistics,
//!   fixed-point solvers, simulation statistics ([`noc_queueing`]).
//! * [`sim`] — the flit-level wormhole simulator: an event-driven engine
//!   (default) plus the cycle-stepped reference oracle, bit-identical
//!   under a shared seed ([`noc_sim`]).
//! * [`model`] — the paper's analytical unicast + multicast latency model
//!   ([`quarc_core`]).
//! * [`workloads`] — destination sets, traffic patterns and rate sweeps
//!   ([`noc_workloads`]).
//! * [`bench`](mod@bench) — the declarative experiment layer: serializable
//!   [`Scenario`](prelude::Scenario) specs, the [`Runner`](prelude::Runner)
//!   that executes them, and the workspace [`Error`](prelude::Error) type
//!   ([`noc_bench`]).
//!
//! ## Quickstart
//!
//! An experiment is *data*: describe it as a [`Scenario`](prelude::Scenario)
//! (any registry topology, any traffic pattern, absolute or
//! saturation-relative sweeps), then hand it to a
//! [`Runner`](prelude::Runner). Errors compose with `?` end-to-end.
//!
//! ```
//! use quarc_noc::prelude::*;
//!
//! fn main() -> Result<(), Error> {
//!     // A 16-node Quarc, 32-flit messages, 5% multicast traffic to a
//!     // fixed random group of 4 destinations per node.
//!     let scenario = Scenario::new(
//!         "quickstart",
//!         TopologySpec::Quarc { n: 16 },
//!         WorkloadSpec::new(32, 0.05, MulticastPattern::Random { group: 4 }),
//!         SweepSpec::Explicit { rates: vec![0.002] },
//!     )
//!     .with_sim(SimConfig::quick(1))
//!     .with_seed(7);
//!
//!     // The spec is serializable: it can be stored next to its results
//!     // and re-run bit-identically.
//!     let reloaded = Scenario::from_json(&scenario.to_json())?;
//!
//!     // One runner executes any scenario: analytical model overlay plus
//!     // flit-level simulation at every sweep point.
//!     let result = Runner::new().run(&reloaded)?;
//!     let point = &result.points[0];
//!     let rel = (point.model_multicast - point.sim_multicast).abs() / point.sim_multicast;
//!     assert!(rel < 0.25, "model within 25% of simulation at low load");
//!     Ok(())
//! }
//! ```

pub use noc_bench as bench;
pub use noc_queueing as queueing;
pub use noc_sim as sim;
pub use noc_topology as topology;
pub use noc_workloads as workloads;
pub use quarc_core as model;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use noc_bench::{
        Error, MulticastPattern, PointResult, Progress, Runner, Scenario, ScenarioResult,
        SweepSpec, WorkloadSpec,
    };
    pub use noc_queueing::expmax::expected_max_exponentials;
    pub use noc_queueing::mg1::MG1;
    pub use noc_sim::{
        build_engine, record_trace, ArrivalProcess, EngineKind, EventSimulator, SimConfig,
        SimEngine, SimPlan, SimResults, Simulator,
    };
    pub use noc_topology::{
        Hypercube, Mesh, MeshKind, NodeId, PortId, Quarc, Ring, Spidergon, Topology, TopologySpec,
    };
    pub use noc_workloads::{
        DestinationSets, PatternError, RateSweep, SweepError, TraceEntry, TraceKind, TrafficError,
        TrafficSpec, UnicastPattern, Workload,
    };
    pub use quarc_core::{AnalyticModel, ModelOptions, Prediction};
}
