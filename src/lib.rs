//! # quarc-noc — facade crate
//!
//! One-stop re-export of the IPDPS 2009 reproduction workspace:
//!
//! * [`topology`] — Quarc, Spidergon, ring, mesh/torus channel graphs and
//!   deterministic routing ([`noc_topology`]).
//! * [`queueing`] — M/G/1 waiting times, exponential order statistics,
//!   fixed-point solvers, simulation statistics ([`noc_queueing`]).
//! * [`sim`] — the flit-level wormhole simulator: an event-driven engine
//!   (default) plus the cycle-stepped reference oracle, bit-identical
//!   under a shared seed ([`noc_sim`]).
//! * [`model`] — the paper's analytical unicast + multicast latency model
//!   ([`quarc_core`]).
//! * [`workloads`] — destination sets, scenarios and sweep execution
//!   ([`noc_workloads`]).
//!
//! ## Quickstart
//!
//! ```
//! use quarc_noc::prelude::*;
//!
//! // A 16-node Quarc, 32-flit messages, 5% multicast traffic.
//! let topo = Quarc::new(16).unwrap();
//! let sets = DestinationSets::random(&topo, 4, 7);
//! let workload = Workload::new(32, 0.002, 0.05, sets).unwrap();
//!
//! // Analytical prediction (the paper's model)...
//! let model = AnalyticModel::new(&topo, &workload, ModelOptions::default());
//! let pred = model.evaluate().unwrap();
//!
//! // ...and simulation ground truth.
//! let mut sim = Simulator::new(&topo, &workload, SimConfig::quick(1));
//! let measured = sim.run();
//!
//! let rel = (pred.multicast_latency - measured.multicast.mean).abs()
//!     / measured.multicast.mean;
//! assert!(rel < 0.25, "model within 25% of simulation at low load");
//! ```

pub use noc_queueing as queueing;
pub use noc_sim as sim;
pub use noc_topology as topology;
pub use noc_workloads as workloads;
pub use quarc_core as model;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use noc_queueing::expmax::expected_max_exponentials;
    pub use noc_queueing::mg1::MG1;
    pub use noc_sim::{
        build_engine, EngineKind, EventSimulator, SimConfig, SimEngine, SimPlan, SimResults,
        Simulator,
    };
    pub use noc_topology::{
        Hypercube, Mesh, MeshKind, NodeId, PortId, Quarc, Ring, Spidergon, Topology,
    };
    pub use noc_workloads::{DestinationSets, Workload};
    pub use quarc_core::{AnalyticModel, ModelOptions, Prediction};
}
