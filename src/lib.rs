// The README *is* the crate documentation, so its quickstart compiles
// and runs as a doctest — the front-page example can never rot.
#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use noc_app as app;
pub use noc_bench as bench;
pub use noc_queueing as queueing;
pub use noc_sim as sim;
pub use noc_telemetry as telemetry;
pub use noc_topology as topology;
pub use noc_workloads as workloads;
pub use quarc_core as model;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use noc_app::{AppEvent, AppProtocol, ClosedLoopSpec, Emission, NetEnv, ProtocolBank};
    pub use noc_bench::{
        Error, MulticastPattern, PointResult, Progress, Runner, Scenario, ScenarioResult,
        SweepSpec, WorkloadSpec,
    };
    pub use noc_queueing::expmax::expected_max_exponentials;
    pub use noc_queueing::mg1::MG1;
    pub use noc_sim::{
        build_engine, record_trace, ArrivalProcess, ClosedLoopResults, EngineCounters, EngineKind,
        EventSimulator, PlanError, SimConfig, SimEngine, SimPlan, SimResults, Simulator,
    };
    pub use noc_telemetry::{
        chrome_trace, validate_chrome_trace, LogHistogram, TelemetrySpec, TraceEvent,
        TraceEventKind, TraceLog, TraceMode, TrackNames, UtilSeries,
    };
    pub use noc_topology::{
        ChannelFactory, ClusterInner, Clustered, Hypercube, Mesh, MeshKind, Min, MulticastRouting,
        NodeId, PathError, PortId, Quarc, Ring, RoutingError, RoutingSpec, Spidergon, Topology,
        TopologySpec, ALL_ROUTINGS,
    };
    pub use noc_workloads::{
        DestinationSets, PatternError, RateSweep, SweepError, TraceEntry, TraceKind, TrafficError,
        TrafficSpec, UnicastPattern, Workload,
    };
    pub use quarc_core::{
        AnalyticModel, BackendSpec, ChannelBounds, MgOneBackend, ModelBackend, ModelOptions,
        NetworkCalculusBackend, Prediction, ALL_BACKENDS,
    };
}
