//! The full distribution of the multicast waiting time.
//!
//! The paper models the multicast waiting time as the maximum of `m`
//! independent exponentials but only derives its *expectation* (Eq. 13).
//! The distribution itself is available in closed form,
//!
//! ```text
//! P[max ≤ t] = Π_c (1 − e^{−µ_c t}),
//! ```
//!
//! which this module exposes as CDF, survival function, quantiles (by
//! bisection) and a sampler. Downstream, `quarc-core` uses it to report
//! tail latencies (p95/p99 multicast waiting), something the expectation
//! alone cannot provide.

use crate::expmax::expected_max_exponentials;
use rand::Rng;

/// Distribution of the maximum of independent exponential variables.
#[derive(Clone, Debug)]
pub struct MaxOfExponentials {
    rates: Vec<f64>,
}

impl MaxOfExponentials {
    /// Build from rates `µ_c`. Non-finite rates (instantly-firing ports)
    /// are dropped; all remaining rates must be positive.
    ///
    /// # Panics
    ///
    /// Panics if any finite rate is non-positive.
    pub fn new(rates: &[f64]) -> Self {
        let rates: Vec<f64> = rates.iter().copied().filter(|r| r.is_finite()).collect();
        assert!(
            rates.iter().all(|&r| r > 0.0),
            "rates must be positive, got {rates:?}"
        );
        MaxOfExponentials { rates }
    }

    /// Build from the per-port waiting times `Ω_c` (`µ_c = 1/Ω_c`,
    /// Eq. 8); zero waits are dropped (they fire instantly).
    pub fn from_waits(waits: &[f64]) -> Self {
        let rates: Vec<f64> = waits
            .iter()
            .filter(|&&w| w > 0.0)
            .map(|&w| 1.0 / w)
            .collect();
        MaxOfExponentials { rates }
    }

    /// Number of contributing variables.
    pub fn arity(&self) -> usize {
        self.rates.len()
    }

    /// `P[max ≤ t]`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return if self.rates.is_empty() { 1.0 } else { 0.0 };
        }
        self.rates.iter().map(|&r| 1.0 - (-r * t).exp()).product()
    }

    /// `P[max > t]`.
    pub fn survival(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// Expectation (closed-form inclusion–exclusion; equals Eq. 13).
    pub fn mean(&self) -> f64 {
        expected_max_exponentials(&self.rates)
    }

    /// Quantile `q ∈ (0, 1)` by bisection on the CDF, to absolute
    /// precision `1e-9` relative to the mean scale. Returns 0 for an
    /// empty distribution.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile requires q in [0, 1)");
        if self.rates.is_empty() || q == 0.0 {
            return 0.0;
        }
        // Bracket: the slowest port's own quantile is a lower bound; an
        // upper bound comes from the union bound on survival.
        let slowest = self.rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut lo = 0.0;
        let mut hi = -(1.0 - q).ln() / slowest + (self.arity() as f64).ln() / slowest + 1.0;
        while self.cdf(hi) < q {
            hi *= 2.0;
        }
        let tol = 1e-9 * (self.mean() + 1.0);
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Draw one sample (max of per-port exponential draws).
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        self.rates
            .iter()
            .map(|&r| {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                -u.ln() / r
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn single_exponential_quantiles() {
        let d = MaxOfExponentials::new(&[0.5]);
        // Median of Exp(0.5) is ln 2 / 0.5.
        let med = d.quantile(0.5);
        assert!((med - 2.0 * std::f64::consts::LN_2).abs() < 1e-6);
        assert!((d.cdf(med) - 0.5).abs() < 1e-9);
        assert!((d.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_normalised() {
        let d = MaxOfExponentials::new(&[0.2, 0.7, 1.5]);
        let mut prev = -1.0;
        for i in 0..200 {
            let t = i as f64 * 0.25;
            let c = d.cdf(t);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev);
            prev = c;
        }
        assert!(d.cdf(0.0) == 0.0);
        assert!(d.cdf(1e9) > 1.0 - 1e-12);
        assert!((d.survival(3.0) + d.cdf(3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = MaxOfExponentials::new(&[0.3, 0.9]);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let t = d.quantile(q);
            assert!((d.cdf(t) - q).abs() < 1e-6, "q={q}");
        }
        // Quantiles are monotone.
        assert!(d.quantile(0.99) > d.quantile(0.5));
    }

    #[test]
    fn mean_matches_numeric_integration_of_survival() {
        let d = MaxOfExponentials::new(&[0.4, 0.6, 1.1]);
        let dt = 0.001;
        let mut acc = 0.0;
        let mut t = dt / 2.0;
        while t < 80.0 {
            acc += d.survival(t) * dt;
            t += dt;
        }
        assert!((acc - d.mean()).abs() < 1e-3, "{acc} vs {}", d.mean());
    }

    #[test]
    fn sampling_matches_mean_and_tail() {
        let d = MaxOfExponentials::new(&[0.25, 0.5]);
        let mut rng = SmallRng::seed_from_u64(17);
        let n = 200_000;
        let mut sum = 0.0;
        let p95 = d.quantile(0.95);
        let mut above = 0usize;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            sum += x;
            if x > p95 {
                above += 1;
            }
        }
        let emp_mean = sum / n as f64;
        assert!(
            (emp_mean - d.mean()).abs() / d.mean() < 0.02,
            "MC mean {emp_mean} vs analytic {}",
            d.mean()
        );
        let emp_tail = above as f64 / n as f64;
        assert!((emp_tail - 0.05).abs() < 0.005, "tail mass {emp_tail}");
    }

    #[test]
    fn from_waits_drops_zero_ports() {
        let d = MaxOfExponentials::from_waits(&[0.0, 4.0, 0.0]);
        assert_eq!(d.arity(), 1);
        assert!((d.mean() - 4.0).abs() < 1e-12);
        let empty = MaxOfExponentials::from_waits(&[0.0]);
        assert_eq!(empty.quantile(0.9), 0.0);
        assert_eq!(empty.cdf(0.0), 1.0);
    }

    #[test]
    fn more_ports_heavier_tail() {
        let two = MaxOfExponentials::new(&[1.0, 1.0]);
        let four = MaxOfExponentials::new(&[1.0, 1.0, 1.0, 1.0]);
        assert!(four.quantile(0.95) > two.quantile(0.95));
        assert!(four.mean() > two.mean());
    }
}
