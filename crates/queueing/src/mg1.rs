//! M/G/1 channel queues (paper §2.1, Eq. 3–5).
//!
//! The analytical model views the network as a network of queues where each
//! channel is an M/G/1 queue. The mean waiting time of an M/G/1 queue with
//! arrival rate `λ`, mean service time `x̄` and service-time variance `σ²`
//! is the Pollaczek–Khinchine formula
//!
//! ```text
//! W = λ · E[S²] / (2(1 − ρ)) = ρ x̄ (1 + σ²/x̄²) / (2(1 − ρ)),   ρ = λ x̄.
//! ```
//!
//! Equation 3 of the paper prints the prefactor as `λρ / (2(1 − λx̄))`,
//! which is dimensionally a rate rather than a time; the cited Kleinrock
//! reference and the rest of the wormhole-model literature (Draper–Ghosh,
//! Ould-Khaoua) use the standard P–K form, which is the default here. The
//! literal printed form is retained as [`WaitingFormula::LiteralEq3`] so
//! the ablation bench can quantify the difference.
//!
//! The model approximates the service-time variance with the heuristic
//! `σ = x̄ − msg` (Eq. 5): service time varies between the pure message
//! drain time `msg` and the blocking-inflated mean `x̄`.

use serde::{Deserialize, Serialize};

/// Which algebraic form of the M/G/1 waiting time to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaitingFormula {
    /// Standard Pollaczek–Khinchine: `W = ρ x̄ (1 + σ²/x̄²) / (2(1−ρ))`.
    #[default]
    PollaczekKhinchine,
    /// Equation 3 exactly as printed in the paper:
    /// `W = λ ρ (1 + σ²/x̄²) / (2(1−ρ))`. Dimensionally inconsistent; kept
    /// for the ablation study only.
    LiteralEq3,
}

/// An M/G/1 queue described by its arrival rate and service moments.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MG1 {
    /// Mean arrival rate `λ` (messages per cycle).
    pub lambda: f64,
    /// Mean service time `x̄` (cycles).
    pub mean_service: f64,
    /// Service-time standard deviation `σ` (cycles).
    pub sigma: f64,
}

impl MG1 {
    /// Construct a queue with explicit moments.
    pub fn new(lambda: f64, mean_service: f64, sigma: f64) -> Self {
        debug_assert!(lambda >= 0.0 && mean_service >= 0.0 && sigma >= 0.0);
        MG1 {
            lambda,
            mean_service,
            sigma,
        }
    }

    /// Construct a queue using the paper's variance heuristic
    /// `σ = x̄ − msg` (Eq. 5), clamped at zero when blocking is absent.
    pub fn with_paper_sigma(lambda: f64, mean_service: f64, msg_len: f64) -> Self {
        MG1::new(lambda, mean_service, (mean_service - msg_len).max(0.0))
    }

    /// Server utilisation `ρ = λ x̄` (Eq. 4).
    #[inline]
    pub fn rho(&self) -> f64 {
        self.lambda * self.mean_service
    }

    /// `true` when the queue is at or beyond its stability limit.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.rho() >= 1.0
    }

    /// Mean waiting time in queue (time from arrival to start of service).
    ///
    /// Returns `f64::INFINITY` when saturated.
    pub fn waiting(&self, formula: WaitingFormula) -> f64 {
        let rho = self.rho();
        if self.lambda == 0.0 || self.mean_service == 0.0 {
            return 0.0;
        }
        if rho >= 1.0 {
            return f64::INFINITY;
        }
        let cv2 = (self.sigma / self.mean_service).powi(2);
        match formula {
            WaitingFormula::PollaczekKhinchine => {
                rho * self.mean_service * (1.0 + cv2) / (2.0 * (1.0 - rho))
            }
            WaitingFormula::LiteralEq3 => self.lambda * rho * (1.0 + cv2) / (2.0 * (1.0 - rho)),
        }
    }

    /// Mean sojourn time (waiting + service).
    pub fn sojourn(&self, formula: WaitingFormula) -> f64 {
        self.waiting(formula) + self.mean_service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn zero_load_waits_nothing() {
        let q = MG1::new(0.0, 32.0, 0.0);
        assert_eq!(q.waiting(WaitingFormula::PollaczekKhinchine), 0.0);
        assert_eq!(q.rho(), 0.0);
        assert!(!q.is_saturated());
    }

    #[test]
    fn deterministic_service_matches_md1() {
        // M/D/1: W = ρ x̄ / (2(1-ρ)).
        let q = MG1::new(0.01, 32.0, 0.0);
        let rho = 0.32;
        let expected = rho * 32.0 / (2.0 * (1.0 - rho));
        assert!(close(
            q.waiting(WaitingFormula::PollaczekKhinchine),
            expected,
            1e-12
        ));
    }

    #[test]
    fn exponential_service_matches_mm1() {
        // M/M/1: σ = x̄, so W = ρ x̄ / (1-ρ).
        let x = 20.0;
        let lambda = 0.02;
        let q = MG1::new(lambda, x, x);
        let rho = lambda * x;
        let expected = rho * x / (1.0 - rho);
        assert!(close(
            q.waiting(WaitingFormula::PollaczekKhinchine),
            expected,
            1e-12
        ));
    }

    #[test]
    fn saturation_reports_infinity() {
        let q = MG1::new(0.05, 32.0, 0.0);
        assert!(q.is_saturated());
        assert!(q.waiting(WaitingFormula::PollaczekKhinchine).is_infinite());
    }

    #[test]
    fn paper_sigma_heuristic_clamps_at_zero() {
        let q = MG1::with_paper_sigma(0.001, 30.0, 32.0);
        assert_eq!(q.sigma, 0.0);
        let q2 = MG1::with_paper_sigma(0.001, 40.0, 32.0);
        assert_eq!(q2.sigma, 8.0);
    }

    #[test]
    fn waiting_is_monotone_in_load() {
        let mut prev = 0.0;
        for i in 1..30 {
            let lambda = i as f64 * 0.001;
            let q = MG1::with_paper_sigma(lambda, 32.0, 32.0);
            let w = q.waiting(WaitingFormula::PollaczekKhinchine);
            assert!(w >= prev, "W must increase with load");
            prev = w;
        }
    }

    #[test]
    fn literal_eq3_differs_by_lambda_over_xbar() {
        // The printed form scales the P-K value by λ/x̄ — the ablation
        // quantifies how wrong that is; here we just check the relation.
        let q = MG1::new(0.004, 25.0, 5.0);
        let pk = q.waiting(WaitingFormula::PollaczekKhinchine);
        let lit = q.waiting(WaitingFormula::LiteralEq3);
        assert!(close(lit, pk * q.lambda / q.mean_service, 1e-12));
    }

    #[test]
    fn sojourn_adds_service() {
        let q = MG1::new(0.004, 25.0, 5.0);
        let w = q.waiting(WaitingFormula::PollaczekKhinchine);
        assert!(close(
            q.sojourn(WaitingFormula::PollaczekKhinchine),
            w + 25.0,
            1e-12
        ));
    }
}
