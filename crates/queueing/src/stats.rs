//! Simulation statistics: online moments, batch means and histograms.
//!
//! The simulator reports latency distributions through these accumulators.
//! [`Welford`] gives numerically stable online mean/variance; [`BatchMeans`]
//! wraps it with the classic batch-means method to produce confidence
//! intervals from autocorrelated steady-state output; [`Histogram`] records
//! fixed-width bins for latency distribution plots.

use serde::{Deserialize, Serialize};

/// Numerically stable online mean and variance (Welford's algorithm).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Batch-means confidence intervals for steady-state simulation output.
///
/// Observations are grouped into fixed-size batches; the batch averages are
/// approximately independent, so a t-style interval over them is a valid
/// interval for the steady-state mean.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    current: Welford,
    batches: Welford,
    overall: Welford,
}

impl BatchMeans {
    /// Accumulator with the given batch size (`>= 1`).
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size >= 1);
        BatchMeans {
            batch_size,
            current: Welford::new(),
            batches: Welford::new(),
            overall: Welford::new(),
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.overall.push(x);
        self.current.push(x);
        if self.current.count() == self.batch_size {
            self.batches.push(self.current.mean());
            self.current = Welford::new();
        }
    }

    /// Overall sample mean.
    pub fn mean(&self) -> f64 {
        self.overall.mean()
    }

    /// Number of raw observations.
    pub fn count(&self) -> u64 {
        self.overall.count()
    }

    /// Number of completed batches.
    pub fn completed_batches(&self) -> u64 {
        self.batches.count()
    }

    /// Half-width of an approximate 95% confidence interval on the mean,
    /// from the completed batch means (normal approximation, `z = 1.96`).
    /// Returns `NaN` with fewer than 2 completed batches.
    pub fn ci95_half_width(&self) -> f64 {
        let b = self.batches.count();
        if b < 2 {
            return f64::NAN;
        }
        1.96 * self.batches.std_dev() / (b as f64).sqrt()
    }

    /// The underlying per-observation accumulator.
    pub fn overall(&self) -> &Welford {
        &self.overall
    }
}

/// Fixed-width histogram with an overflow bucket.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Histogram covering `[0, bin_width * num_bins)` plus overflow.
    pub fn new(bin_width: f64, num_bins: usize) -> Self {
        assert!(bin_width > 0.0 && num_bins > 0);
        Histogram {
            bin_width,
            bins: vec![0; num_bins],
            overflow: 0,
            count: 0,
        }
    }

    /// Record one non-negative observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x >= 0.0);
        self.count += 1;
        let idx = (x / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations above the covered range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate quantile (`q ∈ [0,1]`) from the binned data: returns the
    /// upper edge of the bin containing the quantile. `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return (i + 1) as f64 * self.bin_width;
            }
        }
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_moments() {
        let xs = [3.0, 5.0, 7.0, 7.0, 38.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-9);
        assert_eq!(w.min(), 3.0);
        assert_eq!(w.max(), 38.0);
        assert_eq!(w.count(), 5);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0 + 20.0;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_welford_is_safe() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert!(w.min().is_nan());
        let mut a = Welford::new();
        a.merge(&w);
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn batch_means_cuts_batches() {
        let mut bm = BatchMeans::new(10);
        for i in 0..95 {
            bm.push(i as f64);
        }
        assert_eq!(bm.completed_batches(), 9);
        assert_eq!(bm.count(), 95);
        assert!((bm.mean() - 47.0).abs() < 1e-9);
        assert!(bm.ci95_half_width() > 0.0);
    }

    #[test]
    fn batch_means_needs_two_batches_for_ci() {
        let mut bm = BatchMeans::new(100);
        for i in 0..150 {
            bm.push(i as f64);
        }
        assert_eq!(bm.completed_batches(), 1);
        assert!(bm.ci95_half_width().is_nan());
    }

    #[test]
    fn ci_shrinks_with_more_data() {
        let mut narrow = BatchMeans::new(10);
        let mut wide = BatchMeans::new(10);
        let xs = |n: usize| (0..n).map(|i| ((i * 37) % 100) as f64);
        for x in xs(200) {
            wide.push(x);
        }
        for x in xs(2000) {
            narrow.push(x);
        }
        assert!(narrow.ci95_half_width() < wide.ci95_half_width());
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = Histogram::new(10.0, 10);
        for x in [5.0, 15.0, 15.5, 25.0, 250.0] {
            h.push(x);
        }
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[2], 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
        // Median falls in the second bin.
        assert_eq!(h.quantile(0.5), 20.0);
        // Quantile beyond covered range reports infinity.
        assert_eq!(h.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn empty_histogram_quantile_is_nan() {
        let h = Histogram::new(1.0, 4);
        assert!(h.quantile(0.5).is_nan());
    }
}
