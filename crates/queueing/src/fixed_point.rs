//! Damped fixed-point iteration with divergence detection.
//!
//! The per-channel service-time recursion (paper Eq. 6) defines each
//! channel's mean service time in terms of the waiting and service times of
//! its successor channels. On ring-based topologies the successor relation
//! is cyclic, so the system is solved as a fixed point `x = F(x)` by damped
//! Jacobi iteration: `x ← (1−θ)x + θF(x)`.
//!
//! The driver is generic so the model (and tests) can reuse it for any
//! vector-valued contraction. Divergence (a component exceeding `bound`, or
//! NaN) is reported as saturation by the caller.

use serde::{Deserialize, Serialize};

/// Why the iteration stopped.
#[derive(Clone, Debug, PartialEq)]
pub enum FixedPointOutcome {
    /// Converged: the max absolute update fell below `tolerance`.
    Converged {
        /// Iterations consumed.
        iterations: usize,
    },
    /// Hit the iteration budget without meeting the tolerance.
    MaxIterations {
        /// Residual (max absolute update) at the final iteration.
        residual: f64,
    },
}

/// Failure modes of the iteration.
#[derive(Clone, Debug, PartialEq)]
pub enum FixedPointError {
    /// A component exceeded the divergence bound or became non-finite —
    /// for the service-time recursion this means the offered load is beyond
    /// saturation.
    Diverged {
        /// Index of the offending component.
        index: usize,
        /// Its value when divergence was detected.
        value: f64,
        /// Iterations completed before divergence.
        iterations: usize,
    },
}

impl std::fmt::Display for FixedPointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FixedPointError::Diverged { index, value, iterations } => write!(
                f,
                "fixed point diverged at component {index} (value {value:.3e}) after {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for FixedPointError {}

/// Configuration of the fixed-point driver.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FixedPoint {
    /// Convergence tolerance on the max absolute component update.
    pub tolerance: f64,
    /// Damping factor `θ ∈ (0, 1]`; 1.0 is undamped Jacobi.
    pub damping: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Divergence bound: any component above this aborts the iteration.
    pub bound: f64,
}

impl Default for FixedPoint {
    fn default() -> Self {
        FixedPoint {
            tolerance: 1e-9,
            damping: 0.7,
            max_iterations: 10_000,
            bound: 1e12,
        }
    }
}

impl FixedPoint {
    /// Solve `x = F(x)` starting from `x0`. `f` writes `F(x)` into its
    /// output slice.
    ///
    /// Returns the solution vector and the convergence outcome, or a
    /// divergence error (the caller maps this to "saturated").
    pub fn solve<F>(
        &self,
        mut x: Vec<f64>,
        mut f: F,
    ) -> Result<(Vec<f64>, FixedPointOutcome), FixedPointError>
    where
        F: FnMut(&[f64], &mut [f64]),
    {
        let mut next = vec![0.0; x.len()];
        for iter in 0..self.max_iterations {
            f(&x, &mut next);
            let mut residual: f64 = 0.0;
            for i in 0..x.len() {
                let updated = (1.0 - self.damping) * x[i] + self.damping * next[i];
                if !updated.is_finite() || updated.abs() > self.bound {
                    return Err(FixedPointError::Diverged {
                        index: i,
                        value: updated,
                        iterations: iter,
                    });
                }
                residual = residual.max((updated - x[i]).abs());
                x[i] = updated;
            }
            if residual < self.tolerance {
                return Ok((
                    x,
                    FixedPointOutcome::Converged {
                        iterations: iter + 1,
                    },
                ));
            }
        }
        // One final evaluation to report the residual.
        f(&x, &mut next);
        let residual = x
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        Ok((x, FixedPointOutcome::MaxIterations { residual }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_scalar_contraction() {
        // x = cos(x) has the Dottie fixed point ~0.739085.
        let fp = FixedPoint {
            damping: 1.0,
            ..Default::default()
        };
        let (x, outcome) = fp.solve(vec![0.0], |x, out| out[0] = x[0].cos()).unwrap();
        assert!((x[0] - 0.739_085_133).abs() < 1e-6);
        assert!(matches!(outcome, FixedPointOutcome::Converged { .. }));
    }

    #[test]
    fn solves_linear_system() {
        // x = A x + b with spectral radius < 1: x0 = 0.5 x1 + 1, x1 = 0.3 x0 + 2.
        let fp = FixedPoint::default();
        let (x, _) = fp
            .solve(vec![0.0, 0.0], |x, out| {
                out[0] = 0.5 * x[1] + 1.0;
                out[1] = 0.3 * x[0] + 2.0;
            })
            .unwrap();
        // Exact solution: x0 = (1 + 0.5*2)/(1 - 0.15) = 2/0.85, x1 = 0.3x0 + 2.
        let x0 = 2.0 / 0.85;
        assert!((x[0] - x0).abs() < 1e-6);
        assert!((x[1] - (0.3 * x0 + 2.0)).abs() < 1e-6);
    }

    #[test]
    fn damping_tames_oscillation() {
        // x = -x + 2 oscillates undamped from x=0 (0 -> 2 -> 0 ...);
        // damping 0.5 converges to the fixed point x = 1.
        let fp = FixedPoint {
            damping: 0.5,
            ..Default::default()
        };
        let (x, outcome) = fp.solve(vec![0.0], |x, out| out[0] = -x[0] + 2.0).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!(matches!(outcome, FixedPointOutcome::Converged { .. }));
    }

    #[test]
    fn divergence_is_detected() {
        let fp = FixedPoint {
            bound: 1e6,
            ..Default::default()
        };
        let err = fp
            .solve(vec![1.0], |x, out| out[0] = 10.0 * x[0])
            .unwrap_err();
        match err {
            FixedPointError::Diverged { index, value, .. } => {
                assert_eq!(index, 0);
                assert!(value > 1e6);
            }
        }
    }

    #[test]
    fn nan_is_divergence() {
        let fp = FixedPoint::default();
        let err = fp.solve(vec![1.0], |_, out| out[0] = f64::NAN).unwrap_err();
        assert!(matches!(err, FixedPointError::Diverged { .. }));
    }

    #[test]
    fn iteration_budget_reports_residual() {
        let fp = FixedPoint {
            max_iterations: 3,
            damping: 0.1,
            ..Default::default()
        };
        let (_, outcome) = fp.solve(vec![0.0], |x, out| out[0] = x[0].cos()).unwrap();
        match outcome {
            FixedPointOutcome::MaxIterations { residual } => assert!(residual > 0.0),
            other => panic!("expected MaxIterations, got {other:?}"),
        }
    }
}
