//! Deterministic network-calculus primitives: (σ, ρ) arrival envelopes
//! and worst-case FIFO delay/backlog bounds.
//!
//! The paper's M/G/1 model predicts *mean* latencies and is only valid for
//! memoryless (Poisson) sources feeding asynchronous per-port streams. The
//! network-calculus backend (Farhi & Gaujal, arXiv 1007.4853 lineage)
//! instead works with *worst-case envelopes*: a flow is characterised by a
//! token bucket `A(t) ≤ σ + ρ·t` (burst `σ`, long-run rate `ρ`), bounds
//! compose additively over aggregation and path traversal, and no
//! distributional assumption is needed — which is exactly what makes the
//! backend applicable to bursty/trace traffic and to routing schemes whose
//! streams share prefix links.
//!
//! This module holds the topology-agnostic math; `quarc-core::calculus`
//! assembles it into per-channel bounds over routed workloads.

use serde::{Deserialize, Serialize};

/// A token-bucket arrival envelope: cumulative arrivals over any window of
/// `t` cycles are at most `sigma + rho * t`.
///
/// Units are the caller's choice (messages or flits) as long as they are
/// used consistently; aggregation of independent flows is the sum of
/// envelopes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrivalEnvelope {
    /// Burst allowance `σ` (same unit as the arrival count).
    pub sigma: f64,
    /// Long-run arrival rate `ρ` (units per cycle).
    pub rho: f64,
}

impl ArrivalEnvelope {
    /// A flow bounded by `sigma + rho * t`.
    pub fn new(sigma: f64, rho: f64) -> Self {
        ArrivalEnvelope { sigma, rho }
    }

    /// The empty flow.
    pub fn zero() -> Self {
        ArrivalEnvelope {
            sigma: 0.0,
            rho: 0.0,
        }
    }

    /// Envelope of the aggregate of two independent flows (sum of curves).
    pub fn add(&self, other: &Self) -> Self {
        ArrivalEnvelope {
            sigma: self.sigma + other.sigma,
            rho: self.rho + other.rho,
        }
    }

    /// Envelope of `k` parallel copies of this flow (e.g. converting a
    /// message envelope to flits by scaling with the message length).
    pub fn scale(&self, k: f64) -> Self {
        ArrivalEnvelope {
            sigma: self.sigma * k,
            rho: self.rho * k,
        }
    }

    /// Worst-case delay through a rate–latency server `β(t) = R·(t − T)⁺`:
    /// `T + σ/R`, or `None` when the server cannot sustain the flow
    /// (`ρ ≥ R`).
    pub fn delay_bound(&self, rate: f64, latency: f64) -> Option<f64> {
        (self.rho < rate && rate > 0.0).then(|| latency + self.sigma / rate)
    }

    /// Worst-case backlog at the same server: `σ + ρ·T` (vertical
    /// deviation), or `None` when unstable.
    pub fn backlog_bound(&self, rate: f64, latency: f64) -> Option<f64> {
        (self.rho < rate).then_some(self.sigma + self.rho * latency)
    }
}

/// Utilisations at or above this value are treated as unstable — the
/// bounds diverge as `ρ → 1` and finite arithmetic stops being meaningful
/// slightly before that.
pub const RHO_STABLE_MAX: f64 = 1.0 - 1e-9;

/// Worst-case header acquisition delay at a wormhole channel under FIFO
/// arbitration.
///
/// `sigma` is the aggregate burst (flits) of every flow crossing the
/// channel, `lambda` the aggregate message arrival rate and `holding` a
/// (worst-case) bound on the time the channel stays allocated to one
/// message. With utilisation `ρ = λ·holding`, a newly arrived header can
/// find at most the burst backlog (drained at link rate, `σ` cycles) plus
/// the utilisation feedback of messages arriving while it waits:
///
/// ```text
/// D = (σ + ρ·holding) / (1 − ρ)
/// ```
///
/// Returns `None` when `ρ ≥` [`RHO_STABLE_MAX`] (no finite bound exists).
/// Unloaded channels (`λ ≤ 0`) have zero delay.
pub fn channel_delay_bound(sigma: f64, lambda: f64, holding: f64) -> Option<f64> {
    if lambda <= 0.0 {
        return Some(0.0);
    }
    let rho = lambda * holding;
    (rho < RHO_STABLE_MAX).then(|| (sigma + rho * holding) / (1.0 - rho))
}

/// Worst-case backlog (flits queued) at the same channel: the burst plus
/// everything arriving during the delay bound, `σ + λ·msg_len·D`.
pub fn channel_backlog_bound(sigma: f64, lambda: f64, holding: f64, msg_len: f64) -> Option<f64> {
    channel_delay_bound(sigma, lambda, holding).map(|d| sigma + lambda * msg_len * d)
}

/// Message-burst envelope of an on/off source (messages): a burst of mean
/// `burst_len` messages arrives at `peak_rate` while the long-run mean is
/// `rate`, so over the burst window `(B−1)/peak` the envelope must admit
/// `B` messages:
///
/// ```text
/// σ = 1 + (B − 1)·(1 − rate/peak)
/// ```
///
/// `burst_len = 1` (or `rate = peak`) degenerates to the memoryless
/// envelope `σ = 1`. This is the envelope at the *mean* burst scale — the
/// geometric burst-length tail is unbounded, so it is an effective rather
/// than an absolute envelope (documented limitation shared with every
/// finite envelope of an unbounded process).
pub fn onoff_burstiness(burst_len: f64, peak_rate: f64, rate: f64) -> f64 {
    if peak_rate <= 0.0 {
        return 1.0;
    }
    let frac = (rate / peak_rate).clamp(0.0, 1.0);
    1.0 + (burst_len - 1.0).max(0.0) * (1.0 - frac)
}

/// Exact message-burst envelope of a recorded arrival schedule against the
/// rate line `rho`: the smallest `σ` such that the count of arrivals in
/// every window `[c_i, c_j]` satisfies `count ≤ σ + ρ·(c_j − c_i)`.
///
/// `cycles` are one node's arrival cycles in non-decreasing order. Runs in
/// one pass: with prefix index `i` and suffix index `j`,
/// `σ = max_j ((j+1 − ρ·c_j) − min_{i≤j} (i − ρ·c_i))`.
/// Empty schedules have `σ = 0`; any non-empty schedule has `σ ≥ 1` (a
/// single message is its own burst).
pub fn trace_burstiness(cycles: &[u64], rho: f64) -> f64 {
    if cycles.is_empty() {
        return 0.0;
    }
    let mut min_prefix = f64::INFINITY;
    let mut sigma = 0.0f64;
    for (j, &c) in cycles.iter().enumerate() {
        let c = c as f64;
        min_prefix = min_prefix.min(j as f64 - rho * c);
        sigma = sigma.max((j as f64 + 1.0 - rho * c) - min_prefix);
    }
    sigma.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_compose() {
        let a = ArrivalEnvelope::new(2.0, 0.1);
        let b = ArrivalEnvelope::new(1.0, 0.05);
        let agg = a.add(&b);
        assert_eq!(agg, ArrivalEnvelope::new(3.0, 0.15000000000000002));
        let flits = a.scale(16.0);
        assert_eq!(flits.sigma, 32.0);
        assert!((flits.rho - 1.6).abs() < 1e-12);
        assert_eq!(ArrivalEnvelope::zero().add(&a), a);
    }

    #[test]
    fn rate_latency_bounds() {
        let e = ArrivalEnvelope::new(4.0, 0.5);
        // R = 1, T = 2: delay ≤ 2 + 4, backlog ≤ 4 + 0.5·2.
        assert_eq!(e.delay_bound(1.0, 2.0), Some(6.0));
        assert_eq!(e.backlog_bound(1.0, 2.0), Some(5.0));
        // Unstable server.
        assert_eq!(e.delay_bound(0.5, 2.0), None);
        assert_eq!(e.backlog_bound(0.4, 2.0), None);
    }

    #[test]
    fn channel_delay_grows_with_burst_and_load() {
        // Unloaded: no waiting.
        assert_eq!(channel_delay_bound(0.0, 0.0, 32.0), Some(0.0));
        // Burst term alone at vanishing load.
        let d = channel_delay_bound(64.0, 1e-9, 32.0).unwrap();
        assert!((d - 64.0).abs() < 1e-5, "got {d}");
        // Load inflates the bound hyperbolically.
        let lo = channel_delay_bound(64.0, 0.005, 32.0).unwrap();
        let hi = channel_delay_bound(64.0, 0.02, 32.0).unwrap();
        assert!(hi > lo && lo > 64.0);
        // At/above the stability limit there is no finite bound.
        assert_eq!(channel_delay_bound(64.0, 0.04, 32.0), None);
    }

    #[test]
    fn channel_delay_dominates_mg1_waiting() {
        // The NC bound must sit above the M/G/1 mean wait at the same
        // (λ, x̄): D ≥ ρ·x̄/(1−ρ) ≥ W_PK with the paper's σ = x̄ − msg.
        use crate::mg1::{WaitingFormula, MG1};
        for &(lambda, x, msg) in &[(0.004, 35.0, 32.0), (0.02, 40.0, 32.0), (0.05, 17.0, 16.0)] {
            let w =
                MG1::with_paper_sigma(lambda, x, msg).waiting(WaitingFormula::PollaczekKhinchine);
            // Even the smallest possible aggregate burst (one message).
            let d = channel_delay_bound(msg, lambda, x).unwrap();
            assert!(d >= w, "D {d} must dominate W {w} at λ={lambda}");
        }
    }

    #[test]
    fn backlog_bound_exceeds_burst() {
        let b = channel_backlog_bound(64.0, 0.01, 32.0, 32.0).unwrap();
        assert!(b > 64.0);
        assert_eq!(channel_backlog_bound(64.0, 0.04, 32.0, 32.0), None);
    }

    #[test]
    fn onoff_burstiness_brackets() {
        // Memoryless degenerate cases.
        assert_eq!(onoff_burstiness(1.0, 0.5, 0.01), 1.0);
        assert_eq!(onoff_burstiness(8.0, 0.5, 0.5), 1.0);
        // Rate far below peak: nearly the whole burst counts.
        let s = onoff_burstiness(8.0, 0.5, 0.005);
        assert!(s > 7.9 && s < 8.0, "got {s}");
        // Monotone in burst length.
        assert!(onoff_burstiness(16.0, 0.5, 0.01) > onoff_burstiness(4.0, 0.5, 0.01));
    }

    #[test]
    fn trace_burstiness_exact_on_known_schedules() {
        // Empty and singleton.
        assert_eq!(trace_burstiness(&[], 0.01), 0.0);
        assert_eq!(trace_burstiness(&[100], 0.01), 1.0);
        // An evenly spaced schedule at exactly rate ρ: σ = 1 (window
        // [c_i, c_j] holds j−i+1 arrivals vs ρ·gap = j−i).
        let even: Vec<u64> = (1..=50).map(|k| k * 100).collect();
        let s = trace_burstiness(&even, 0.01);
        assert!((s - 1.0).abs() < 1e-9, "got {s}");
        // A back-to-back clump of 5 messages vs a slow rate line: the
        // whole clump is one burst.
        let clump = [1000, 1001, 1002, 1003, 1004];
        let s = trace_burstiness(&clump, 0.001);
        assert!((s - 4.996).abs() < 1e-9, "got {s}");
        // Two clumps far apart at a rate that absorbs one clump per
        // window: σ stays at the single-clump scale.
        let mut two = vec![10, 11, 12];
        two.extend([100_010, 100_011, 100_012]);
        let s = trace_burstiness(&two, 3.0 / 100_000.0);
        assert!(s < 4.0, "distant clumps must not stack: {s}");
    }

    #[test]
    fn trace_burstiness_is_a_valid_envelope() {
        // σ must make every window feasible: count ≤ σ + ρ·gap.
        let cycles = [3u64, 10, 11, 12, 40, 41, 90, 91, 92, 93];
        let rho = 0.05;
        let sigma = trace_burstiness(&cycles, rho);
        for i in 0..cycles.len() {
            for j in i..cycles.len() {
                let count = (j - i + 1) as f64;
                let gap = (cycles[j] - cycles[i]) as f64;
                assert!(
                    count <= sigma + rho * gap + 1e-9,
                    "window [{i},{j}] violates the envelope"
                );
            }
        }
    }
}
