//! # noc-queueing
//!
//! Queueing-theory and statistics substrate for the IPDPS 2009
//! reproduction.
//!
//! * [`mg1`] — M/G/1 waiting times (Pollaczek–Khinchine, paper Eq. 3–5),
//!   including the paper's `σ = x̄ − msg` variance heuristic and the
//!   literal-as-printed variant of Eq. 3 for ablation.
//! * [`expmax`] — order statistics of independent exponential random
//!   variables: the expected minimum (Eq. 9–10) and the expected maximum
//!   via both the paper's memoryless recursion (Eq. 11–12) and the
//!   closed-form inclusion–exclusion identity.
//! * [`distribution`] — the full distribution of the maximum (CDF,
//!   quantiles, sampling): the paper derives only the expectation; the
//!   distribution enables tail-latency (p95/p99) predictions.
//! * [`fixed_point`] — a damped fixed-point driver with divergence
//!   detection, used by the per-channel service-time recursion (Eq. 6).
//! * [`network_calculus`] — deterministic (σ, ρ) arrival envelopes and
//!   worst-case FIFO delay/backlog bounds (the substrate of the
//!   distribution-free analytical backend; Farhi & Gaujal lineage).
//! * [`stats`] — Welford accumulators, batch-means confidence intervals and
//!   fixed-bin histograms for the simulator.
//! * [`poisson`] — discrete-time Poisson arrival processes for the sources.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
pub mod expmax;
pub mod fixed_point;
pub mod mg1;
pub mod network_calculus;
pub mod poisson;
pub mod stats;

pub use distribution::MaxOfExponentials;
pub use expmax::{expected_max_exponentials, expected_max_recursive, expected_min_exponentials};
pub use fixed_point::{FixedPoint, FixedPointError, FixedPointOutcome};
pub use mg1::{WaitingFormula, MG1};
pub use network_calculus::ArrivalEnvelope;
pub use poisson::PoissonProcess;
pub use stats::{BatchMeans, Histogram, Welford};
