//! Order statistics of independent exponential random variables
//! (paper §2.2, Eq. 9–13).
//!
//! The multicast waiting time of an asynchronous multi-port router is the
//! expected time of the *last* arrival among `m` independent exponentially
//! distributed port waiting times. The paper derives it from two
//! properties: exponentials are memoryless, and the minimum of independent
//! exponentials is exponential with the summed rate (Eq. 9–10). The
//! resulting recursion (Eq. 12) is
//!
//! ```text
//! E[max(µ₁..µ_m)] = 1/Σµ + Σ_i (µ_i/Σµ) · E[max of the others]
//! ```
//!
//! which has the closed-form inclusion–exclusion solution
//!
//! ```text
//! E[max] = Σ_{∅ ≠ S ⊆ {1..m}} (−1)^{|S|+1} / Σ_{i∈S} µ_i.
//! ```
//!
//! Both are implemented; a property test asserts they agree, and the bench
//! suite compares their cost. Infinite rates (zero waiting time on a port)
//! are handled by dropping that port from the maximum — a variable with
//! rate `∞` fires instantly and can never be the last event.

/// Expected value of the minimum of independent exponentials (Eq. 10).
///
/// Returns `0.0` for an empty slice (no events to wait for).
pub fn expected_min_exponentials(rates: &[f64]) -> f64 {
    let sum: f64 = rates.iter().sum();
    if rates.is_empty() || sum == 0.0 {
        return 0.0;
    }
    if sum.is_infinite() {
        return 0.0;
    }
    1.0 / sum
}

/// Expected value of the maximum of independent exponentials, by the
/// closed-form inclusion–exclusion identity.
///
/// `rates` are the `µ` parameters (events per cycle); non-finite rates are
/// treated as instantly-firing variables and skipped. Panics in debug mode
/// if a rate is negative or zero (a zero rate would make the expectation
/// infinite, which the model never produces for a loaded port).
pub fn expected_max_exponentials(rates: &[f64]) -> f64 {
    let finite: Vec<f64> = rates.iter().copied().filter(|r| r.is_finite()).collect();
    debug_assert!(finite.iter().all(|&r| r > 0.0), "rates must be positive");
    let m = finite.len();
    if m == 0 {
        return 0.0;
    }
    if m > 25 {
        // 2^m subsets would overflow; fall back to the O(m log m)
        // order-statistics identity E[max] = Σ_k 1/(Σ of k largest-suffix)
        // via sorting — exact only for i.i.d. rates, so instead integrate
        // the survival function numerically. The model never exceeds m = 4
        // (quad-port routers); this path exists for API robustness.
        return expected_max_by_integration(&finite);
    }
    let mut total = 0.0;
    for mask in 1u32..(1 << m) {
        let mut rate_sum = 0.0;
        for (i, &r) in finite.iter().enumerate() {
            if mask & (1 << i) != 0 {
                rate_sum += r;
            }
        }
        let sign = if mask.count_ones() % 2 == 1 {
            1.0
        } else {
            -1.0
        };
        total += sign / rate_sum;
    }
    total
}

/// Expected value of the maximum by the paper's memoryless recursion
/// (Eq. 12), memoised over subsets.
///
/// Semantically identical to [`expected_max_exponentials`]; retained to
/// validate the paper's derivation and exercised by property tests.
pub fn expected_max_recursive(rates: &[f64]) -> f64 {
    let finite: Vec<f64> = rates.iter().copied().filter(|r| r.is_finite()).collect();
    let m = finite.len();
    if m == 0 {
        return 0.0;
    }
    assert!(m <= 25, "recursive form limited to m <= 25 ports");
    let full: u32 = (1 << m) - 1;
    let mut memo: Vec<f64> = vec![0.0; (full + 1) as usize];
    // Iterate masks in increasing popcount order by plain increasing value:
    // every proper submask of `mask` is numerically smaller, so a single
    // ascending pass satisfies the dependency order of the recursion.
    for mask in 1u32..=full {
        let mut rate_sum = 0.0;
        for (i, &r) in finite.iter().enumerate() {
            if mask & (1 << i) != 0 {
                rate_sum += r;
            }
        }
        // Eq. 12: first event at 1/Σµ, then the max of the remaining set,
        // weighted by which variable fired first.
        let mut v = 1.0 / rate_sum;
        for (i, &r) in finite.iter().enumerate() {
            if mask & (1 << i) != 0 {
                let rest = mask & !(1 << i);
                if rest != 0 {
                    v += (r / rate_sum) * memo[rest as usize];
                }
            }
        }
        memo[mask as usize] = v;
    }
    memo[full as usize]
}

/// Numerical fallback for very large `m`: integrate
/// `E[max] = ∫₀^∞ (1 − Π(1 − e^{−µᵢ t})) dt` with adaptive step doubling.
fn expected_max_by_integration(rates: &[f64]) -> f64 {
    // Upper bound: max is below max_i(1/µ_i) · (ln m + ~3) with high mass.
    let slowest: f64 = rates.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let horizon = (rates.len() as f64).ln().max(1.0) * 40.0 / slowest;
    let steps = 200_000usize;
    let dt = horizon / steps as f64;
    let mut acc = 0.0;
    for s in 0..steps {
        let t = (s as f64 + 0.5) * dt;
        let mut prod = 1.0;
        for &r in rates {
            prod *= 1.0 - (-r * t).exp();
        }
        acc += (1.0 - prod) * dt;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1e-12)
    }

    #[test]
    fn single_variable_is_its_mean() {
        assert!(close(expected_max_exponentials(&[0.5]), 2.0, 1e-12));
        assert!(close(expected_max_recursive(&[0.5]), 2.0, 1e-12));
    }

    #[test]
    fn empty_and_infinite_rates() {
        assert_eq!(expected_max_exponentials(&[]), 0.0);
        assert_eq!(expected_max_recursive(&[]), 0.0);
        // An instantly-firing port cannot be the last event.
        let with_inf = expected_max_exponentials(&[1.0, f64::INFINITY]);
        assert!(close(with_inf, 1.0, 1e-12));
        assert_eq!(expected_min_exponentials(&[1.0, f64::INFINITY]), 0.0);
    }

    #[test]
    fn two_equal_rates_give_three_halves_mean() {
        // E[max of two iid Exp(µ)] = 3/(2µ).
        for mu in [0.1, 1.0, 7.5] {
            let e = expected_max_exponentials(&[mu, mu]);
            assert!(close(e, 1.5 / mu, 1e-12), "mu={mu}");
        }
    }

    #[test]
    fn iid_max_is_harmonic_series() {
        // E[max of m iid Exp(1)] = H_m.
        let h: f64 = (1..=5).map(|k| 1.0 / k as f64).sum();
        let e = expected_max_exponentials(&[1.0; 5]);
        assert!(close(e, h, 1e-12));
    }

    #[test]
    fn eq11_two_variable_form() {
        // Paper Eq. 11: E[max] = 1/(µ1+µ2) + P1/µ2 + P2/µ1.
        let (m1, m2) = (0.3, 0.7);
        let s = m1 + m2;
        let expected = 1.0 / s + (m1 / s) / m2 + (m2 / s) / m1;
        assert!(close(expected_max_exponentials(&[m1, m2]), expected, 1e-12));
        assert!(close(expected_max_recursive(&[m1, m2]), expected, 1e-12));
    }

    #[test]
    fn min_of_independent_exponentials() {
        assert!(close(expected_min_exponentials(&[0.25, 0.75]), 1.0, 1e-12));
        assert_eq!(expected_min_exponentials(&[]), 0.0);
    }

    #[test]
    fn integration_fallback_agrees_for_moderate_m() {
        let rates = [0.2, 0.4, 0.9, 1.3];
        let exact = expected_max_exponentials(&rates);
        let approx = expected_max_by_integration(&rates);
        assert!(close(approx, exact, 1e-3), "{approx} vs {exact}");
    }

    #[test]
    fn max_dominates_min_and_each_mean() {
        let rates = [0.5, 0.8, 2.0, 4.0];
        let max = expected_max_exponentials(&rates);
        assert!(max >= expected_min_exponentials(&rates));
        for r in rates {
            assert!(max >= 1.0 / r - 1e-12, "max must dominate each mean");
        }
    }

    proptest! {
        #[test]
        fn recursion_matches_closed_form(
            rates in proptest::collection::vec(0.01f64..100.0, 1..7)
        ) {
            let a = expected_max_exponentials(&rates);
            let b = expected_max_recursive(&rates);
            prop_assert!(close(a, b, 1e-9), "closed {a} vs recursive {b}");
        }

        #[test]
        fn adding_a_port_never_decreases_the_max(
            rates in proptest::collection::vec(0.01f64..100.0, 1..6),
            extra in 0.01f64..100.0
        ) {
            let base = expected_max_exponentials(&rates);
            let mut more = rates.clone();
            more.push(extra);
            let bigger = expected_max_exponentials(&more);
            prop_assert!(bigger >= base - 1e-9);
        }

        #[test]
        fn max_bounded_by_sum_of_means(
            rates in proptest::collection::vec(0.01f64..100.0, 1..6)
        ) {
            let max = expected_max_exponentials(&rates);
            let sum: f64 = rates.iter().map(|r| 1.0 / r).sum();
            prop_assert!(max <= sum + 1e-9);
        }
    }

    // Order-statistics monotonicity: both expectations respect the
    // stochastic ordering of exponentials — raising any rate (making that
    // port faster) can only lower the expected min and max, and the two
    // statistics never cross.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn min_never_exceeds_max(
            rates in proptest::collection::vec(0.01f64..100.0, 1..7)
        ) {
            let min = expected_min_exponentials(&rates);
            let max = expected_max_exponentials(&rates);
            prop_assert!(min <= max + 1e-12, "min {min} above max {max}");
        }

        #[test]
        fn min_is_inverse_rate_sum(
            rates in proptest::collection::vec(0.01f64..100.0, 1..7)
        ) {
            let min = expected_min_exponentials(&rates);
            let sum: f64 = rates.iter().sum();
            prop_assert!(close(min, 1.0 / sum, 1e-12));
        }

        #[test]
        fn raising_one_rate_lowers_both_order_stats(
            rates in proptest::collection::vec(0.01f64..100.0, 1..6),
            which in 0usize..6,
            factor in 1.0f64..50.0,
        ) {
            let idx = which % rates.len();
            let mut faster = rates.clone();
            faster[idx] *= factor;
            prop_assert!(
                expected_min_exponentials(&faster)
                    <= expected_min_exponentials(&rates) + 1e-12
            );
            prop_assert!(
                expected_max_exponentials(&faster)
                    <= expected_max_exponentials(&rates) + 1e-9
            );
        }

        #[test]
        fn scale_invariance(
            rates in proptest::collection::vec(0.01f64..100.0, 1..6),
            c in 0.1f64..10.0,
        ) {
            // Exponentials with rates cµ are the originals divided by c, so
            // both expectations scale by exactly 1/c.
            let scaled: Vec<f64> = rates.iter().map(|r| r * c).collect();
            let max = expected_max_exponentials(&rates);
            let max_scaled = expected_max_exponentials(&scaled);
            prop_assert!(close(max_scaled, max / c, 1e-6), "{max_scaled} vs {}", max / c);
            let min = expected_min_exponentials(&rates);
            let min_scaled = expected_min_exponentials(&scaled);
            prop_assert!(close(min_scaled, min / c, 1e-9));
        }
    }
}
