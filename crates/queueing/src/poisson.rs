//! Discrete-time Poisson arrival processes.
//!
//! The paper's sources "produce the messages according to a Poisson
//! distribution". In a cycle-accurate simulator the natural discretisation
//! is a Bernoulli trial per cycle with success probability `λ` (messages
//! per node per cycle): inter-arrival gaps are geometric, the discrete
//! analogue of the exponential, and the arrival counts converge to Poisson
//! for the small per-cycle rates the evaluation sweeps use (λ ≤ ~0.05).
//!
//! Rates above 1 message/cycle are rejected — a single injection queue
//! cannot accept more than one new message per cycle anyway.

use rand::Rng;

/// A per-cycle Bernoulli approximation of a Poisson source.
#[derive(Clone, Debug)]
pub struct PoissonProcess {
    rate: f64,
}

impl PoissonProcess {
    /// Create a process generating on average `rate` arrivals per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative, non-finite or above 1.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "per-cycle rate must be in [0, 1], got {rate}"
        );
        PoissonProcess { rate }
    }

    /// The configured rate.
    #[inline]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Does an arrival occur this cycle?
    #[inline]
    pub fn arrives(&self, rng: &mut impl Rng) -> bool {
        self.rate > 0.0 && rng.gen::<f64>() < self.rate
    }

    /// Sample the gap (in whole cycles, >= 1) to the next arrival.
    ///
    /// Geometric distribution with success probability `rate`; returns
    /// `u64::MAX` for a zero-rate process.
    pub fn next_gap(&self, rng: &mut impl Rng) -> u64 {
        if self.rate <= 0.0 {
            return u64::MAX;
        }
        if self.rate >= 1.0 {
            return 1;
        }
        // Inverse-CDF sampling of the geometric distribution.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let g = (u.ln() / (1.0 - self.rate).ln()).ceil();
        g.max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_rates() {
        assert!(std::panic::catch_unwind(|| PoissonProcess::new(-0.1)).is_err());
        assert!(std::panic::catch_unwind(|| PoissonProcess::new(1.5)).is_err());
        assert!(std::panic::catch_unwind(|| PoissonProcess::new(f64::NAN)).is_err());
    }

    #[test]
    fn zero_rate_never_arrives() {
        let p = PoissonProcess::new(0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| p.arrives(&mut rng)));
        assert_eq!(p.next_gap(&mut rng), u64::MAX);
    }

    #[test]
    fn empirical_rate_matches_configured() {
        let p = PoissonProcess::new(0.02);
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 500_000;
        let hits = (0..n).filter(|_| p.arrives(&mut rng)).count();
        let empirical = hits as f64 / n as f64;
        assert!(
            (empirical - 0.02).abs() < 0.002,
            "empirical rate {empirical} should be near 0.02"
        );
    }

    #[test]
    fn gap_sampling_matches_rate() {
        let p = PoissonProcess::new(0.05);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| p.next_gap(&mut rng)).sum();
        let mean_gap = total as f64 / n as f64;
        assert!(
            (mean_gap - 20.0).abs() < 0.5,
            "mean gap {mean_gap} should be near 1/0.05 = 20"
        );
    }

    #[test]
    fn gaps_are_at_least_one_cycle() {
        let p = PoissonProcess::new(0.9);
        let mut rng = SmallRng::seed_from_u64(9);
        assert!((0..1000).all(|_| p.next_gap(&mut rng) >= 1));
        let full = PoissonProcess::new(1.0);
        assert_eq!(full.next_gap(&mut rng), 1);
    }
}
