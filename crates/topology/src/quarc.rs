//! The Quarc NoC (paper §3).
//!
//! The Quarc improves on the Spidergon by (i) doubling the cross link into a
//! *cross-left* and a *cross-right* physical link, (ii) upgrading the
//! one-port router to an **all-port** router, and (iii) letting routers
//! absorb-and-forward flits simultaneously. Routing requires no logic in the
//! switch: the route is completely determined by the injection port chosen
//! by the source transceiver (§3.3.1).
//!
//! For a Quarc of size `N = 4k`, node `s` reaches the other `N − 1` nodes
//! through four disjoint quadrants (Eq. 1–2):
//!
//! | port         | destinations (clockwise distance `d` from `s`) | route |
//! |--------------|--------------------------------------------------|-------|
//! | `CW`         | `d ∈ [1, k]`                                     | `d` clockwise rim links |
//! | `CCW`        | `d ∈ [3k, 4k−1]`                                 | `N − d` counter-clockwise rim links |
//! | `CROSS_LEFT` | `d ∈ [k+1, 2k]`                                  | cross link, then `2k − d` ccw rim links |
//! | `CROSS_RIGHT`| `d ∈ [2k+1, 3k−1]`                               | cross link, then `d − 2k` cw rim links |
//!
//! For `N = 16` and source 0 this reproduces the paper's broadcast example
//! exactly: the four streams terminate at nodes 4, 12, 5 and 11, and the
//! cross-left stream visits `8, 7, 6, 5` while cross-right visits
//! `9, 10, 11` (Fig. 3).
//!
//! Rim links carry two virtual channels with a dateline discipline
//! (inherited from the Spidergon) to break the cyclic channel dependency of
//! each rim ring.

use crate::channel::Channel;
use crate::ids::{ChannelId, NodeId, PortId};
use crate::network::{Network, Topology, TopologyError};
use crate::path::{Hop, MulticastStream, Path};

/// Port indices of the Quarc all-port router.
pub mod port {
    use crate::ids::PortId;

    /// Clockwise rim port.
    pub const CW: PortId = PortId(0);
    /// Counter-clockwise rim port.
    pub const CCW: PortId = PortId(1);
    /// Cross-left port (serves the far quadrant reached via the cross link
    /// and then counter-clockwise rim travel; includes the opposite node).
    pub const CROSS_LEFT: PortId = PortId(2);
    /// Cross-right port (far quadrant reached via the cross link and then
    /// clockwise rim travel).
    pub const CROSS_RIGHT: PortId = PortId(3);

    /// All four ports in index order.
    pub const ALL: [PortId; 4] = [CW, CCW, CROSS_LEFT, CROSS_RIGHT];
}

/// The Quarc topology (`N = 4k` nodes, `k ≥ 2`).
#[derive(Clone, Debug)]
pub struct Quarc {
    n: usize,
    k: usize,
    net: Network,
}

impl Quarc {
    /// Build a Quarc NoC with `n` nodes. Requires `n % 4 == 0` and `n ≥ 8`.
    pub fn new(n: usize) -> Result<Self, TopologyError> {
        if n < 8 || !n.is_multiple_of(4) {
            return Err(TopologyError::UnsupportedSize {
                n,
                requirement: "Quarc requires N % 4 == 0 and N >= 8",
            });
        }
        let k = n / 4;
        let nu = n as u32;
        let mut channels = Vec::with_capacity(12 * n);
        // Clockwise rim links: id i, i -> i+1; dateline at i == n-1.
        for i in 0..nu {
            let to = (i + 1) % nu;
            channels.push(Channel::link(
                ChannelId(i),
                NodeId(i),
                NodeId(to),
                port::CW,
                2,
                i == nu - 1,
                format!("cw {i}->{to}"),
            ));
        }
        // Counter-clockwise rim links: id n+i, i -> i-1; dateline at i == 0.
        for i in 0..nu {
            let to = (i + nu - 1) % nu;
            channels.push(Channel::link(
                ChannelId(nu + i),
                NodeId(i),
                NodeId(to),
                port::CCW,
                2,
                i == 0,
                format!("ccw {i}->{to}"),
            ));
        }
        // Cross-left links: id 2n+i, i -> i + n/2.
        for i in 0..nu {
            let to = (i + nu / 2) % nu;
            channels.push(Channel::link(
                ChannelId(2 * nu + i),
                NodeId(i),
                NodeId(to),
                port::CROSS_LEFT,
                1,
                false,
                format!("xl {i}->{to}"),
            ));
        }
        // Cross-right links: id 3n+i, i -> i + n/2 (separate physical link).
        for i in 0..nu {
            let to = (i + nu / 2) % nu;
            channels.push(Channel::link(
                ChannelId(3 * nu + i),
                NodeId(i),
                NodeId(to),
                port::CROSS_RIGHT,
                1,
                false,
                format!("xr {i}->{to}"),
            ));
        }
        // Injection channels: id 4n + i*4 + p.
        let mut injection = Vec::with_capacity(4 * n);
        for i in 0..nu {
            for p in 0..4u8 {
                let id = ChannelId(4 * nu + i * 4 + p as u32);
                channels.push(Channel::injection(
                    id,
                    NodeId(i),
                    PortId(p),
                    format!("inj {i}.{p}"),
                ));
                injection.push(id);
            }
        }
        // Ejection channels: id 8n + i*4 + p (p = input direction).
        let mut ejection = Vec::with_capacity(4 * n);
        for i in 0..nu {
            for p in 0..4u8 {
                let id = ChannelId(8 * nu + i * 4 + p as u32);
                channels.push(Channel::ejection(
                    id,
                    NodeId(i),
                    PortId(p),
                    format!("ej {i}.{p}"),
                ));
                ejection.push(id);
            }
        }
        let net = Network::new(n, 4, channels, injection, ejection);
        Ok(Quarc { n, k, net })
    }

    /// Node count.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Quadrant size `k = N/4` (also the network diameter in links).
    #[inline]
    pub fn quadrant_size(&self) -> usize {
        self.k
    }

    /// Clockwise distance from `s` to `d` in `[0, N)`.
    #[inline]
    pub fn cw_dist(&self, s: NodeId, d: NodeId) -> usize {
        (d.idx() + self.n - s.idx()) % self.n
    }

    #[inline]
    fn node(&self, i: usize) -> NodeId {
        NodeId((i % self.n) as u32)
    }

    fn cw_link(&self, i: usize) -> ChannelId {
        ChannelId((i % self.n) as u32)
    }

    fn ccw_link(&self, i: usize) -> ChannelId {
        ChannelId((self.n + i % self.n) as u32)
    }

    fn xl_link(&self, i: usize) -> ChannelId {
        ChannelId((2 * self.n + i % self.n) as u32)
    }

    fn xr_link(&self, i: usize) -> ChannelId {
        ChannelId((3 * self.n + i % self.n) as u32)
    }

    /// Append clockwise rim hops from `from` for `count` links, applying the
    /// dateline VC discipline (VC 1 from the dateline link onwards).
    fn push_cw_hops(&self, hops: &mut Vec<Hop>, from: usize, count: usize) {
        let mut crossed = false;
        for step in 0..count {
            let i = (from + step) % self.n;
            if i == self.n - 1 {
                crossed = true;
            }
            hops.push(Hop::new(self.cw_link(i), u8::from(crossed)));
        }
    }

    /// Append counter-clockwise rim hops from `from` for `count` links.
    fn push_ccw_hops(&self, hops: &mut Vec<Hop>, from: usize, count: usize) {
        let mut crossed = false;
        for step in 0..count {
            let i = (from + self.n - step) % self.n;
            if i == 0 {
                crossed = true;
            }
            hops.push(Hop::new(self.ccw_link(i), u8::from(crossed)));
        }
    }

    /// Build the route serving clockwise-quadrant destination at cw
    /// distance `d ∈ [1, k]`.
    fn path_cw(&self, s: NodeId, d: usize) -> Path {
        let dst = self.node(s.idx() + d);
        let mut hops = Vec::with_capacity(d + 2);
        hops.push(Hop::new(self.net.injection_channel(s, port::CW), 0));
        self.push_cw_hops(&mut hops, s.idx(), d);
        hops.push(Hop::new(self.net.ejection_channel(dst, port::CW), 0));
        Path {
            src: s,
            dst,
            port: port::CW,
            hops,
        }
    }

    /// Build the route serving counter-clockwise destination at ccw
    /// distance `d ∈ [1, k]`.
    fn path_ccw(&self, s: NodeId, d: usize) -> Path {
        let dst = self.node(s.idx() + self.n - d);
        let mut hops = Vec::with_capacity(d + 2);
        hops.push(Hop::new(self.net.injection_channel(s, port::CCW), 0));
        self.push_ccw_hops(&mut hops, s.idx(), d);
        hops.push(Hop::new(self.net.ejection_channel(dst, port::CCW), 0));
        Path {
            src: s,
            dst,
            port: port::CCW,
            hops,
        }
    }

    /// Build the cross-left route to cw distance `d ∈ [k+1, 2k]`:
    /// cross link, then `2k − d` ccw rim links.
    fn path_xl(&self, s: NodeId, d: usize) -> Path {
        let opposite = s.idx() + self.n / 2;
        let rim = 2 * self.k - d;
        let dst = self.node(s.idx() + d);
        let mut hops = Vec::with_capacity(rim + 3);
        hops.push(Hop::new(self.net.injection_channel(s, port::CROSS_LEFT), 0));
        hops.push(Hop::new(self.xl_link(s.idx()), 0));
        self.push_ccw_hops(&mut hops, opposite, rim);
        let ej_port = if rim == 0 {
            port::CROSS_LEFT
        } else {
            port::CCW
        };
        hops.push(Hop::new(self.net.ejection_channel(dst, ej_port), 0));
        Path {
            src: s,
            dst,
            port: port::CROSS_LEFT,
            hops,
        }
    }

    /// Build the cross-right route to cw distance `d ∈ [2k+1, 3k−1]`:
    /// cross link, then `d − 2k` cw rim links.
    fn path_xr(&self, s: NodeId, d: usize) -> Path {
        let opposite = s.idx() + self.n / 2;
        let rim = d - 2 * self.k;
        let dst = self.node(s.idx() + d);
        let mut hops = Vec::with_capacity(rim + 3);
        hops.push(Hop::new(
            self.net.injection_channel(s, port::CROSS_RIGHT),
            0,
        ));
        hops.push(Hop::new(self.xr_link(s.idx()), 0));
        self.push_cw_hops(&mut hops, opposite, rim);
        // rim >= 1 always in this quadrant, so arrival is via a cw link.
        hops.push(Hop::new(self.net.ejection_channel(dst, port::CW), 0));
        Path {
            src: s,
            dst,
            port: port::CROSS_RIGHT,
            hops,
        }
    }

    /// The last node visited by a broadcast stream on `p` (the destination
    /// address the transceiver writes into the header flit, §3.3.2).
    pub fn broadcast_last_node(&self, s: NodeId, p: PortId) -> NodeId {
        let k = self.k;
        match p {
            x if x == port::CW => self.node(s.idx() + k),
            x if x == port::CCW => self.node(s.idx() + self.n - k),
            x if x == port::CROSS_LEFT => self.node(s.idx() + k + 1),
            x if x == port::CROSS_RIGHT => self.node(s.idx() + 3 * k - 1),
            _ => panic!("invalid Quarc port {p:?}"),
        }
    }
}

impl Topology for Quarc {
    fn name(&self) -> &str {
        "quarc"
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn port_for(&self, src: NodeId, dst: NodeId) -> PortId {
        assert_ne!(src, dst, "no port routes a node to itself");
        let d = self.cw_dist(src, dst);
        let k = self.k;
        if d <= k {
            port::CW
        } else if d <= 2 * k {
            port::CROSS_LEFT
        } else if d < 3 * k {
            port::CROSS_RIGHT
        } else {
            port::CCW
        }
    }

    fn unicast_path(&self, src: NodeId, dst: NodeId) -> Path {
        assert_ne!(src, dst, "no route from a node to itself");
        let d = self.cw_dist(src, dst);
        let k = self.k;
        if d <= k {
            self.path_cw(src, d)
        } else if d <= 2 * k {
            self.path_xl(src, d)
        } else if d < 3 * k {
            self.path_xr(src, d)
        } else {
            self.path_ccw(src, self.n - d)
        }
    }

    fn quadrant(&self, src: NodeId, p: PortId) -> Vec<NodeId> {
        let k = self.k;
        let s = src.idx();
        match p {
            x if x == port::CW => (1..=k).map(|d| self.node(s + d)).collect(),
            x if x == port::CCW => (1..=k).map(|d| self.node(s + self.n - d)).collect(),
            // Visit order: opposite node first, then counter-clockwise.
            x if x == port::CROSS_LEFT => (0..k).map(|i| self.node(s + 2 * k - i)).collect(),
            // Visit order: first node past the opposite, then clockwise.
            x if x == port::CROSS_RIGHT => (1..k).map(|i| self.node(s + 2 * k + i)).collect(),
            _ => panic!("invalid Quarc port {p:?}"),
        }
    }

    fn multicast_streams(&self, src: NodeId, targets: &[NodeId]) -> Vec<MulticastStream> {
        let mut by_port: [Vec<usize>; 4] = Default::default(); // cw distances
        for &t in targets {
            if t == src {
                continue;
            }
            let d = self.cw_dist(src, t);
            by_port[self.port_for(src, t).idx()].push(d);
        }
        let mut streams = Vec::new();
        for p in port::ALL {
            let ds = &mut by_port[p.idx()];
            if ds.is_empty() {
                continue;
            }
            ds.sort_unstable();
            ds.dedup();
            // Visit order per quadrant geometry: CW and CROSS_RIGHT visit
            // ascending cw distance; CCW visits ascending ccw distance
            // (= descending cw) and CROSS_LEFT starts at the opposite node
            // (d = 2k) and walks down. The last element is the final target.
            let mut visit_order = ds.clone();
            if p == port::CCW || p == port::CROSS_LEFT {
                visit_order.reverse();
            }
            let last_d = *visit_order.last().unwrap();
            let path = self.unicast_path(src, self.node(src.idx() + last_d));
            let targets: Vec<NodeId> = visit_order
                .iter()
                .map(|&d| self.node(src.idx() + d))
                .collect();
            streams.push(MulticastStream {
                port: p,
                path,
                targets,
            });
        }
        streams
    }

    fn diameter(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn quarc16() -> Quarc {
        Quarc::new(16).unwrap()
    }

    #[test]
    fn rejects_unsupported_sizes() {
        for n in [0, 1, 4, 6, 10, 14] {
            assert!(Quarc::new(n).is_err(), "N={n} should be rejected");
        }
        for n in [8, 12, 16, 32, 64, 128] {
            assert!(Quarc::new(n).is_ok(), "N={n} should be accepted");
        }
    }

    #[test]
    fn channel_census() {
        let q = quarc16();
        let net = q.network();
        assert_eq!(net.num_channels(), 12 * 16);
        assert_eq!(net.links().count(), 4 * 16);
        assert_eq!(net.ports_per_node(), 4);
    }

    #[test]
    fn paper_broadcast_example_n16() {
        // Paper §3.3.2: node 0 broadcasts; destination addresses are
        // 4, 5, 11 and 12 for the rim-left, cross-left, cross-right and
        // rim-right streams.
        let q = quarc16();
        let s = NodeId(0);
        assert_eq!(q.broadcast_last_node(s, port::CW), NodeId(4));
        assert_eq!(q.broadcast_last_node(s, port::CCW), NodeId(12));
        assert_eq!(q.broadcast_last_node(s, port::CROSS_LEFT), NodeId(5));
        assert_eq!(q.broadcast_last_node(s, port::CROSS_RIGHT), NodeId(11));
    }

    #[test]
    fn paper_quadrants_n16() {
        let q = quarc16();
        let s = NodeId(0);
        let nv = |v: &[u32]| v.iter().map(|&i| NodeId(i)).collect::<Vec<_>>();
        assert_eq!(q.quadrant(s, port::CW), nv(&[1, 2, 3, 4]));
        assert_eq!(q.quadrant(s, port::CCW), nv(&[15, 14, 13, 12]));
        // Cross-left visits 8, 7, 6, 5 in that order (Fig. 3).
        assert_eq!(q.quadrant(s, port::CROSS_LEFT), nv(&[8, 7, 6, 5]));
        // Cross-right visits 9, 10, 11.
        assert_eq!(q.quadrant(s, port::CROSS_RIGHT), nv(&[9, 10, 11]));
    }

    #[test]
    fn quadrants_partition_all_other_nodes() {
        for n in [8, 16, 32] {
            let q = Quarc::new(n).unwrap();
            for s in 0..n {
                let s = NodeId(s as u32);
                let mut seen = BTreeSet::new();
                for p in port::ALL {
                    for t in q.quadrant(s, p) {
                        assert_ne!(t, s);
                        assert!(seen.insert(t), "node {t:?} in two quadrants of {s:?}");
                    }
                }
                assert_eq!(seen.len(), n - 1, "quadrants must cover N-1 nodes");
            }
        }
    }

    #[test]
    fn unicast_paths_are_valid_and_shortest() {
        for n in [8, 16, 32] {
            let q = Quarc::new(n).unwrap();
            let net = q.network();
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let (s, d) = (NodeId(s as u32), NodeId(d as u32));
                    let p = q.unicast_path(s, d);
                    net.validate_path(&p).expect("path must be valid");
                    assert_eq!(p.src, s);
                    assert_eq!(p.dst, d);
                    assert_eq!(p.port, q.port_for(s, d));
                    assert!(p.link_count() <= q.diameter());
                    // Shortest-path check: the Quarc route length equals the
                    // graph distance min(dcw, dccw, 1 + rim-from-opposite).
                    let dcw = q.cw_dist(s, d);
                    let dccw = n - dcw;
                    let via_cross = 1 + dcw.abs_diff(n / 2);
                    let dist = dcw.min(dccw).min(via_cross);
                    assert_eq!(
                        p.link_count(),
                        dist,
                        "route {s:?}->{d:?} should be shortest"
                    );
                }
            }
        }
    }

    #[test]
    fn port_for_matches_quadrants() {
        let q = quarc16();
        for s in 0..16u32 {
            let s = NodeId(s);
            for p in port::ALL {
                for t in q.quadrant(s, p) {
                    assert_eq!(q.port_for(s, t), p);
                }
            }
        }
    }

    #[test]
    fn dateline_vc_discipline() {
        let q = quarc16();
        // Path from 14 clockwise to 2 crosses the cw dateline link 15->0.
        let p = q.unicast_path(NodeId(14), NodeId(2));
        assert_eq!(p.port, port::CW);
        let vcs: Vec<u8> = p.hops.iter().map(|h| h.vc.0).collect();
        // injection, cw 14->15 (vc0), cw 15->0 (dateline, vc1),
        // cw 0->1 (vc1), cw 1->2 (vc1), ejection.
        assert_eq!(vcs, vec![0, 0, 1, 1, 1, 0]);

        // A path that does not wrap stays on vc 0.
        let p2 = q.unicast_path(NodeId(1), NodeId(4));
        assert!(p2.hops.iter().all(|h| h.vc.0 == 0));

        // Counter-clockwise wrap: 1 -> 15 crosses ccw dateline 0->15.
        let p3 = q.unicast_path(NodeId(1), NodeId(15));
        assert_eq!(p3.port, port::CCW);
        let vcs3: Vec<u8> = p3.hops.iter().map(|h| h.vc.0).collect();
        assert_eq!(vcs3, vec![0, 0, 1, 0]);
    }

    #[test]
    fn cross_left_serves_opposite_node_directly() {
        let q = quarc16();
        let p = q.unicast_path(NodeId(3), NodeId(11));
        assert_eq!(p.port, port::CROSS_LEFT);
        assert_eq!(p.link_count(), 1);
        // Ejection via the cross-left input direction.
        let ej = q.network().channel(p.hops.last().unwrap().channel);
        assert_eq!(ej.port, port::CROSS_LEFT);
    }

    #[test]
    fn broadcast_streams_cover_network_disjointly() {
        for n in [8, 16, 32, 64] {
            let q = Quarc::new(n).unwrap();
            for s in [0, 1, n / 2, n - 1] {
                let s = NodeId(s as u32);
                let streams = q.broadcast_streams(s);
                assert_eq!(streams.len(), 4);
                let mut seen = BTreeSet::new();
                for st in &streams {
                    q.network().validate_path(&st.path).unwrap();
                    assert_eq!(st.path.dst, *st.targets.last().unwrap());
                    assert_eq!(st.path.dst, q.broadcast_last_node(s, st.port));
                    for &t in &st.targets {
                        assert!(seen.insert(t));
                    }
                }
                assert_eq!(seen.len(), n - 1);
            }
        }
    }

    #[test]
    fn broadcast_stream_depth_is_quadrant_size() {
        // All four broadcast streams traverse exactly k links (paper:
        // broadcast requires N/4 hops in the Quarc vs N-1 in Spidergon).
        let q = Quarc::new(32).unwrap();
        for st in q.broadcast_streams(NodeId(5)) {
            assert_eq!(st.path.link_count(), q.quadrant_size());
        }
    }

    #[test]
    fn multicast_stream_targets_in_visit_order() {
        let q = quarc16();
        let s = NodeId(0);
        let targets = [NodeId(6), NodeId(8), NodeId(3), NodeId(9), NodeId(11)];
        let streams = q.multicast_streams(s, &targets);
        // CW stream: target 3 only.
        let cw = streams.iter().find(|st| st.port == port::CW).unwrap();
        assert_eq!(cw.targets, vec![NodeId(3)]);
        assert_eq!(cw.path.dst, NodeId(3));
        // Cross-left: visits 8 then 6; last target 6.
        let xl = streams
            .iter()
            .find(|st| st.port == port::CROSS_LEFT)
            .unwrap();
        assert_eq!(xl.targets, vec![NodeId(8), NodeId(6)]);
        assert_eq!(xl.path.dst, NodeId(6));
        // Cross-right: visits 9 then 11.
        let xr = streams
            .iter()
            .find(|st| st.port == port::CROSS_RIGHT)
            .unwrap();
        assert_eq!(xr.targets, vec![NodeId(9), NodeId(11)]);
        assert_eq!(xr.path.dst, NodeId(11));
        // No CCW stream.
        assert!(streams.iter().all(|st| st.port != port::CCW));
    }

    #[test]
    fn multicast_ignores_source_and_duplicates() {
        let q = quarc16();
        let s = NodeId(2);
        let streams = q.multicast_streams(s, &[s, NodeId(5), NodeId(5)]);
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].targets, vec![NodeId(5)]);
    }

    #[test]
    fn target_distances_match_quadrant_geometry() {
        let q = quarc16();
        let s = NodeId(0);
        let streams = q.multicast_streams(s, &[NodeId(8), NodeId(6), NodeId(5)]);
        let xl = &streams[0];
        assert_eq!(xl.port, port::CROSS_LEFT);
        let net = q.network();
        let dists = xl.target_distances(|c| net.downstream(c));
        // 8 at 1 link, 6 at 3 links, 5 at 4 links.
        assert_eq!(dists, vec![1, 3, 4]);
    }
}
