//! Paths and multicast streams.
//!
//! A [`Path`] is the complete, ordered sequence of channel traversals of a
//! wormhole message: injection channel, link channels, ejection channel.
//! Virtual-channel choices are resolved at path-construction time (the
//! routing is deterministic, so the VC of every hop is a function of the
//! path alone — the "dateline" discipline of ring topologies).
//!
//! A [`MulticastStream`] is one of the `m` independent port streams of a
//! path-based (BRCP) multicast: the stream's path runs from the source to
//! the *last* target served by that injection port, and `targets` lists the
//! absorb-and-forward nodes in visit order (paper §3.3.2–3.3.3).

use crate::ids::{ChannelId, NodeId, PortId, VcId};
use serde::{Deserialize, Serialize};

/// One channel traversal of a path, with its resolved virtual channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hop {
    /// The channel being traversed.
    pub channel: ChannelId,
    /// The virtual channel used on it.
    pub vc: VcId,
}

impl Hop {
    /// Convenience constructor.
    #[inline]
    pub fn new(channel: ChannelId, vc: u8) -> Self {
        Hop {
            channel,
            vc: VcId(vc),
        }
    }
}

/// A complete route: injection hop, link hops, ejection hop.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    /// Source node.
    pub src: NodeId,
    /// Destination node (the node whose ejection channel terminates the
    /// path; for multicast streams, the last node visited).
    pub dst: NodeId,
    /// Injection port used at the source.
    pub port: PortId,
    /// Hops in traversal order. Always at least 2 entries (injection +
    /// ejection); `hops.len() - 2` link traversals in between.
    pub hops: Vec<Hop>,
}

impl Path {
    /// Number of inter-router links traversed.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.hops.len().saturating_sub(2)
    }

    /// The hop count `D` used by the analytical model: `len() - 1`, so that
    /// the zero-load latency `msg + D` matches the flit-level simulator
    /// exactly (see the crate-level documentation).
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }

    /// Total number of channel traversals (injection + links + ejection).
    #[inline]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// `true` if the path has no hops (never produced by the topologies).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Iterate over the channel ids in traversal order.
    pub fn channels(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.hops.iter().map(|h| h.channel)
    }

    /// Consecutive `(from, to)` channel pairs, used to build the
    /// next-channel transition counts of the analytical model (Eq. 6).
    pub fn transitions(&self) -> impl Iterator<Item = (ChannelId, ChannelId)> + '_ {
        self.hops.windows(2).map(|w| (w[0].channel, w[1].channel))
    }
}

/// One port stream of a path-based multicast operation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MulticastStream {
    /// The injection port this stream leaves through.
    pub port: PortId,
    /// Path from the source to the last target of this stream.
    pub path: Path,
    /// Targets absorbed by this stream, in visit order. The final element
    /// equals `path.dst`. Intermediate entries are absorb-and-forward nodes
    /// (clone to the local sink while forwarding along the rim).
    pub targets: Vec<NodeId>,
}

impl MulticastStream {
    /// Link distances (1-based link counts from the source) of each target,
    /// matched against an externally supplied visit order.
    ///
    /// The topologies construct streams such that `targets` appear in the
    /// same order as the path visits them; this helper re-derives each
    /// target's distance given the per-hop downstream nodes.
    pub fn target_distances(&self, downstream_of: impl Fn(ChannelId) -> NodeId) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.targets.len());
        let mut next_target = 0usize;
        // Link hops are hops[1..len-1]; hop i (1-based among links) lands on
        // downstream_of(channel).
        for (i, hop) in self.path.hops[1..self.path.hops.len() - 1]
            .iter()
            .enumerate()
        {
            let node = downstream_of(hop.channel);
            if next_target < self.targets.len() && self.targets[next_target] == node {
                out.push(i + 1);
                next_target += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_path() -> Path {
        Path {
            src: NodeId(0),
            dst: NodeId(3),
            port: PortId(0),
            hops: vec![
                Hop::new(ChannelId(100), 0), // injection
                Hop::new(ChannelId(0), 0),
                Hop::new(ChannelId(1), 0),
                Hop::new(ChannelId(2), 1),
                Hop::new(ChannelId(200), 0), /* ejection */
            ],
        }
    }

    #[test]
    fn hop_accounting() {
        let p = sample_path();
        assert_eq!(p.len(), 5);
        assert_eq!(p.link_count(), 3);
        assert_eq!(p.hop_count(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn transitions_cover_consecutive_pairs() {
        let p = sample_path();
        let t: Vec<_> = p.transitions().collect();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], (ChannelId(100), ChannelId(0)));
        assert_eq!(t[3], (ChannelId(2), ChannelId(200)));
    }

    #[test]
    fn channels_iterates_in_order() {
        let p = sample_path();
        let cs: Vec<_> = p.channels().collect();
        assert_eq!(cs.first(), Some(&ChannelId(100)));
        assert_eq!(cs.last(), Some(&ChannelId(200)));
    }
}
