//! k-ary multistage interconnection networks (butterfly/Omega MINs).
//!
//! Stergiou's study of multistage interconnection networks under wormhole
//! routing (arXiv 2007.02550) is the natural scale-out counterpart to the
//! flat rim topologies of the paper: `N = k^s` terminals connected through
//! `s` stages of `N/k` radix-`k` switches. This module implements the
//! banyan (butterfly) wiring with destination-tag routing:
//!
//! * **Wires.** Between stage boundary `b` (`0..=s`) there are exactly `N`
//!   wires, one per `s`-digit base-`k` word `w`. Boundary `0` wires leave
//!   the terminals, boundary `s` wires enter them, interior boundaries
//!   connect consecutive switch stages.
//! * **Routing.** A header at boundary `b` carrying word `w` has its digit
//!   at position `s-1-b` (MSB first) replaced by the destination's digit —
//!   after `s` replacements the word *is* the destination. Every route
//!   therefore crosses exactly `s + 1` links: minimal, uniform and
//!   stage-monotone, which also makes the channel dependency graph a DAG
//!   (feed-forward network, single virtual channel, no dateline).
//! * **One-port terminals.** Like the Spidergon baseline, each terminal
//!   has a single injection port; a multicast is a train of consecutive
//!   unicasts through that port (ascending destination order).
//!
//! The channel graph is **implicit**: a [`ChannelFactory`] computes any
//! channel in O(1) from `(k, s)`, so a 64k-terminal MIN costs a few words
//! of memory. [`Min::materialized`] force-builds the dense oracle the
//! differential suite compares against.

use crate::channel::Channel;
use crate::ids::{ChannelId, NodeId, PortId};
use crate::network::{ChannelFactory, Network, Topology, TopologyError};
use crate::path::{Hop, MulticastStream, Path};
use std::sync::Arc;

/// The single injection/ejection port of a MIN terminal.
const THE_PORT: PortId = PortId(0);

/// Largest supported terminal count (`k^stages`); keeps every channel id
/// comfortably inside the `u32` id space with room for the `s + 3`
/// channel classes per terminal.
const MAX_TERMINALS: usize = 1 << 24;

/// A k-ary `s`-stage butterfly MIN with destination-tag routing.
#[derive(Clone, Debug)]
pub struct Min {
    k: usize,
    stages: usize,
    n: usize,
    net: Network,
}

/// O(1) channel computation for the butterfly wiring.
///
/// Channel id layout (`N = k^s` terminals, `s` stages):
///
/// ```text
/// [0, N)                injection, terminal i
/// [N + b·N, N + (b+1)·N) boundary-b wire w, for b in 0..=s
/// [N·(s+2), N·(s+3))    ejection, terminal i
/// ```
///
/// Switches are addressed as pseudo-nodes `N + stage·(N/k) + sw`, where
/// `sw` is the wire word with the digit the switch permutes removed —
/// they never appear as routable terminals, only as link endpoints.
#[derive(Clone, Debug)]
struct MinFactory {
    k: usize,
    stages: usize,
    n: usize,
}

impl MinFactory {
    /// Digit of `x` at base-`k` position `pos` (0 = least significant).
    #[inline]
    fn digit(&self, x: usize, pos: usize) -> usize {
        (x / self.k.pow(pos as u32)) % self.k
    }

    /// `x` with the digit at `pos` replaced by `d`.
    #[inline]
    fn replace_digit(&self, x: usize, pos: usize, d: usize) -> usize {
        let p = self.k.pow(pos as u32);
        x - self.digit(x, pos) * p + d * p
    }

    /// Wire word `w` with the digit at `pos` removed — the index of the
    /// switch that permutes that digit.
    #[inline]
    fn sw_excl(&self, w: usize, pos: usize) -> usize {
        let p = self.k.pow(pos as u32);
        (w / (p * self.k)) * p + w % p
    }

    /// Pseudo-node id of switch `sw` in switch stage `stage`.
    #[inline]
    fn switch(&self, stage: usize, sw: usize) -> NodeId {
        NodeId((self.n + stage * (self.n / self.k) + sw) as u32)
    }

    /// Endpoints of the boundary-`b` wire carrying word `w`.
    fn wire_endpoints(&self, b: usize, w: usize) -> (NodeId, NodeId) {
        let s = self.stages;
        let from = if b == 0 {
            NodeId(w as u32)
        } else {
            self.switch(b - 1, self.sw_excl(w, s - b))
        };
        let to = if b == s {
            NodeId(w as u32)
        } else {
            self.switch(b, self.sw_excl(w, s - 1 - b))
        };
        (from, to)
    }

    #[inline]
    fn ejection_base(&self) -> usize {
        self.n * (self.stages + 2)
    }
}

impl ChannelFactory for MinFactory {
    fn num_channels(&self) -> usize {
        self.n * (self.stages + 3)
    }

    fn channel(&self, id: ChannelId) -> Channel {
        let i = id.idx();
        let n = self.n;
        if i < n {
            Channel::injection(id, NodeId(i as u32), THE_PORT, format!("inj {i}"))
        } else if i < self.ejection_base() {
            let b = (i - n) / n;
            let w = (i - n) % n;
            let (from, to) = self.wire_endpoints(b, w);
            Channel::link(id, from, to, THE_PORT, 1, false, format!("b{b} w{w}"))
        } else {
            let node = i - self.ejection_base();
            Channel::ejection(id, NodeId(node as u32), THE_PORT, format!("ej {node}"))
        }
    }

    fn vcs(&self, _id: ChannelId) -> u8 {
        1
    }

    fn downstream(&self, id: ChannelId) -> NodeId {
        let i = id.idx();
        let n = self.n;
        if i < n {
            NodeId(i as u32)
        } else if i < self.ejection_base() {
            self.wire_endpoints((i - n) / n, (i - n) % n).1
        } else {
            NodeId((i - self.ejection_base()) as u32)
        }
    }

    fn injection_channel(&self, node: NodeId, _port: PortId) -> ChannelId {
        ChannelId(node.0)
    }

    fn ejection_channel(&self, node: NodeId, _port: PortId) -> ChannelId {
        ChannelId((self.ejection_base() + node.idx()) as u32)
    }
}

impl Min {
    /// Build a `k`-ary `stages`-stage MIN with implicit (O(1)) channel
    /// storage — the representation used for large-scale sweeps.
    pub fn new(k: usize, stages: usize) -> Result<Min, TopologyError> {
        Min::build(k, stages, false)
    }

    /// Build the same MIN with force-materialized dense channel tables:
    /// the oracle the differential suite compares the implicit path
    /// against, bit-for-bit.
    pub fn materialized(k: usize, stages: usize) -> Result<Min, TopologyError> {
        Min::build(k, stages, true)
    }

    fn build(k: usize, stages: usize, materialize: bool) -> Result<Min, TopologyError> {
        if k < 2 {
            return Err(TopologyError::UnsupportedSize {
                n: k,
                requirement: "MIN radix (k) must be at least 2",
            });
        }
        if stages < 1 {
            return Err(TopologyError::UnsupportedSize {
                n: stages,
                requirement: "MIN must have at least one stage",
            });
        }
        let n = u32::try_from(stages)
            .ok()
            .and_then(|s| k.checked_pow(s))
            .filter(|&n| n <= MAX_TERMINALS)
            .ok_or(TopologyError::UnsupportedSize {
                n: usize::MAX,
                requirement: "MIN terminal count k^stages must be at most 2^24",
            })?;
        let factory = Arc::new(MinFactory { k, stages, n });
        let net = Network::implicit(n, 1, factory);
        let net = if materialize { net.materialize() } else { net };
        Ok(Min { k, stages, n, net })
    }

    /// Switch radix `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of switch stages `s` (every route crosses `s + 1` links).
    #[inline]
    pub fn stages(&self) -> usize {
        self.stages
    }

    fn factory(&self) -> MinFactory {
        MinFactory {
            k: self.k,
            stages: self.stages,
            n: self.n,
        }
    }
}

impl Topology for Min {
    fn name(&self) -> &str {
        "min"
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn port_for(&self, _src: NodeId, _dst: NodeId) -> PortId {
        THE_PORT
    }

    fn unicast_path(&self, src: NodeId, dst: NodeId) -> Path {
        assert_ne!(src, dst, "unicast_path requires distinct endpoints");
        let f = self.factory();
        let (n, s) = (self.n, self.stages);
        let mut hops = Vec::with_capacity(s + 3);
        hops.push(Hop::new(ChannelId(src.0), 0));
        // Destination-tag routing, MSB first: the wire word morphs from
        // `src` to `dst` one digit per switch stage.
        let mut w = src.idx();
        for b in 0..=s {
            hops.push(Hop::new(ChannelId((n + b * n + w) as u32), 0));
            if b < s {
                let pos = s - 1 - b;
                w = f.replace_digit(w, pos, f.digit(dst.idx(), pos));
            }
        }
        debug_assert_eq!(w, dst.idx());
        hops.push(Hop::new(
            ChannelId((f.ejection_base() + dst.idx()) as u32),
            0,
        ));
        Path {
            src,
            dst,
            port: THE_PORT,
            hops,
        }
    }

    fn quadrant(&self, src: NodeId, _port: PortId) -> Vec<NodeId> {
        (0..self.n as u32)
            .map(NodeId)
            .filter(|&t| t != src)
            .collect()
    }

    fn multicast_streams(&self, src: NodeId, targets: &[NodeId]) -> Vec<MulticastStream> {
        // One-port terminal: a multicast is a train of consecutive
        // unicasts through the single port, in ascending destination
        // order (mirrors the Spidergon baseline; all MIN routes have the
        // same length, so no distance sort applies).
        let mut dests: Vec<NodeId> = targets.iter().copied().filter(|&t| t != src).collect();
        dests.sort_unstable();
        dests.dedup();
        dests
            .into_iter()
            .map(|t| MulticastStream {
                port: THE_PORT,
                path: self.unicast_path(src, t),
                targets: vec![t],
            })
            .collect()
    }

    fn diameter(&self) -> usize {
        // Every route crosses all `s + 1` stage boundaries.
        self.stages + 1
    }

    fn has_linear_order(&self) -> bool {
        // Terminals only connect through the switch fabric; no pair of
        // terminals is physically adjacent, so no Hamiltonian order
        // exists for the order-walking schemes.
        false
    }

    fn share(&self) -> Option<Arc<dyn Topology>> {
        Some(Arc::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn construction_validates_parameters() {
        assert!(Min::new(1, 3).is_err());
        assert!(Min::new(2, 0).is_err());
        assert!(Min::new(2, 40).is_err(), "2^40 terminals exceed the cap");
        let m = Min::new(2, 3).unwrap();
        assert_eq!(m.num_nodes(), 8);
        assert_eq!(m.num_ports(), 1);
        assert_eq!(m.name(), "min");
        assert!(m.network().is_implicit());
        assert!(!m.has_linear_order());
        assert!(!m.concurrent_multicast());
    }

    #[test]
    fn channel_count_is_n_times_stages_plus_three() {
        for (k, s) in [(2, 1), (2, 3), (4, 2), (3, 3)] {
            let m = Min::new(k, s).unwrap();
            assert_eq!(m.network().num_channels(), m.num_nodes() * (s + 3));
        }
    }

    #[test]
    fn every_route_validates_on_the_materialized_oracle() {
        for (k, s) in [(2, 2), (2, 3), (4, 2), (3, 2)] {
            let m = Min::new(k, s).unwrap();
            let oracle = m.network().materialize();
            let n = m.num_nodes() as u32;
            for src in 0..n {
                for dst in 0..n {
                    if src == dst {
                        continue;
                    }
                    let p = m.unicast_path(NodeId(src), NodeId(dst));
                    oracle.validate_path(&p).unwrap();
                    assert_eq!(p.link_count(), s + 1, "uniform minimal length");
                }
            }
        }
    }

    #[test]
    fn routes_are_stage_monotone() {
        let m = Min::new(4, 3).unwrap();
        let n = m.num_nodes();
        let p = m.unicast_path(NodeId(5), NodeId(42));
        for (b, hop) in p.hops[1..p.hops.len() - 1].iter().enumerate() {
            let id = hop.channel.idx();
            assert!(
                (n + b * n..n + (b + 1) * n).contains(&id),
                "link {b} must be a boundary-{b} wire, got {id}"
            );
        }
    }

    #[test]
    fn multicast_is_an_ascending_unicast_train() {
        let m = Min::new(2, 3).unwrap();
        let src = NodeId(3);
        let targets = [NodeId(6), NodeId(1), NodeId(6), src, NodeId(4)];
        let streams = m.multicast_streams(src, &targets);
        let visited: Vec<NodeId> = streams.iter().map(|s| s.targets[0]).collect();
        assert_eq!(visited, vec![NodeId(1), NodeId(4), NodeId(6)]);
        let oracle = m.network().materialize();
        let mut covered = BTreeSet::new();
        for st in &streams {
            oracle.validate_path(&st.path).unwrap();
            assert_eq!(st.port, THE_PORT);
            assert_eq!(st.targets.len(), 1);
            assert_eq!(st.path.dst, st.targets[0]);
            assert!(covered.insert(st.targets[0]));
        }
    }

    #[test]
    fn diameter_matches_route_length() {
        let m = Min::new(2, 4).unwrap();
        assert_eq!(m.diameter(), 5);
        assert_eq!(m.unicast_path(NodeId(0), NodeId(15)).link_count(), 5);
    }

    #[test]
    fn quadrant_covers_all_other_terminals() {
        let m = Min::new(2, 2).unwrap();
        let q = m.quadrant(NodeId(1), THE_PORT);
        assert_eq!(q.len(), 3);
        assert!(!q.contains(&NodeId(1)));
    }

    #[test]
    fn materialized_and_implicit_agree_on_channels() {
        let implicit = Min::new(2, 3).unwrap();
        let dense = Min::materialized(2, 3).unwrap();
        assert!(!dense.network().is_implicit());
        for id in 0..implicit.network().num_channels() as u32 {
            assert_eq!(
                implicit.network().channel_at(ChannelId(id)),
                dense.network().channel_at(ChannelId(id))
            );
        }
    }

    #[test]
    fn share_returns_a_working_handle() {
        let m = Min::new(2, 2).unwrap();
        let shared = m.share().expect("MINs are shareable");
        assert_eq!(
            shared.unicast_path(NodeId(0), NodeId(3)),
            m.unicast_path(NodeId(0), NodeId(3))
        );
    }
}
