//! Declarative, serializable topology specifications and the
//! construct-by-name registry.
//!
//! A [`TopologySpec`] is *data*: it can be stored in a scenario file,
//! round-tripped through JSON and only turned into a live channel graph
//! when an experiment runs ([`TopologySpec::build`]). The registry maps
//! short names (`"quarc"`, `"mesh"`, ...) to constructors so scenario
//! files and CLIs can request any supported topology without compiling a
//! new binary; unknown names and invalid sizes surface as
//! [`TopologyError`] values with actionable messages.

use crate::clustered::Clustered;
use crate::hypercube::Hypercube;
use crate::mesh::{Mesh, MeshKind};
use crate::min::Min;
use crate::network::{Topology, TopologyError};
use crate::quarc::Quarc;
use crate::ring::Ring;
use crate::spidergon::Spidergon;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A serializable description of a topology, sufficient to construct it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// The paper's evaluation platform: `n`-node Quarc (all-port routers,
    /// doubled cross links), `n % 4 == 0`, `n >= 8`.
    Quarc {
        /// Node count.
        n: usize,
    },
    /// Bidirectional ring, the minimal two-port multicast topology.
    Ring {
        /// Node count.
        n: usize,
    },
    /// One-port Spidergon baseline.
    Spidergon {
        /// Node count.
        n: usize,
    },
    /// Open mesh with XY routing and dual-path Hamiltonian multicast.
    Mesh {
        /// Columns.
        width: usize,
        /// Rows.
        height: usize,
    },
    /// Torus (wrap-around mesh).
    Torus {
        /// Columns.
        width: usize,
        /// Rows.
        height: usize,
    },
    /// Binary hypercube with e-cube unicast and Gray-code dual-path
    /// multicast.
    Hypercube {
        /// Dimension (`2^dim` nodes).
        dim: usize,
    },
    /// k-ary multistage (butterfly) interconnection network with
    /// `k^stages` one-port terminals and implicit O(1) channel storage.
    Min {
        /// Switch radix.
        k: usize,
        /// Number of switch stages (`k^stages` terminals).
        stages: usize,
    },
    /// Hierarchical composition: `clusters` copies of a flat inner
    /// topology bridged by gateway express links, with implicit O(1)
    /// channel storage.
    Clustered {
        /// Number of clusters (>= 2).
        clusters: usize,
        /// The inner (per-cluster) topology.
        inner: ClusterInner,
    },
}

/// The inner topology of a [`TopologySpec::Clustered`] composition — the
/// six flat families, mirrored so the spec stays `Copy` and nesting of
/// implicit families is unrepresentable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterInner {
    /// Quarc cluster.
    Quarc {
        /// Node count per cluster.
        n: usize,
    },
    /// Bidirectional-ring cluster.
    Ring {
        /// Node count per cluster.
        n: usize,
    },
    /// One-port Spidergon cluster.
    Spidergon {
        /// Node count per cluster.
        n: usize,
    },
    /// Open-mesh cluster.
    Mesh {
        /// Columns.
        width: usize,
        /// Rows.
        height: usize,
    },
    /// Torus cluster.
    Torus {
        /// Columns.
        width: usize,
        /// Rows.
        height: usize,
    },
    /// Hypercube cluster.
    Hypercube {
        /// Dimension (`2^dim` nodes per cluster).
        dim: usize,
    },
}

impl ClusterInner {
    /// The flat [`TopologySpec`] this inner selection mirrors.
    pub fn spec(self) -> TopologySpec {
        match self {
            ClusterInner::Quarc { n } => TopologySpec::Quarc { n },
            ClusterInner::Ring { n } => TopologySpec::Ring { n },
            ClusterInner::Spidergon { n } => TopologySpec::Spidergon { n },
            ClusterInner::Mesh { width, height } => TopologySpec::Mesh { width, height },
            ClusterInner::Torus { width, height } => TopologySpec::Torus { width, height },
            ClusterInner::Hypercube { dim } => TopologySpec::Hypercube { dim },
        }
    }

    /// Mirror a flat spec into an inner selection; `None` for the
    /// implicit families (no nesting).
    pub fn from_spec(spec: TopologySpec) -> Option<ClusterInner> {
        Some(match spec {
            TopologySpec::Quarc { n } => ClusterInner::Quarc { n },
            TopologySpec::Ring { n } => ClusterInner::Ring { n },
            TopologySpec::Spidergon { n } => ClusterInner::Spidergon { n },
            TopologySpec::Mesh { width, height } => ClusterInner::Mesh { width, height },
            TopologySpec::Torus { width, height } => ClusterInner::Torus { width, height },
            TopologySpec::Hypercube { dim } => ClusterInner::Hypercube { dim },
            TopologySpec::Min { .. } | TopologySpec::Clustered { .. } => return None,
        })
    }
}

impl fmt::Display for ClusterInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.spec().fmt(f)
    }
}

/// The registry's topology names, in registry order.
pub const KNOWN_TOPOLOGIES: &[&str] = &[
    "quarc",
    "ring",
    "spidergon",
    "mesh",
    "torus",
    "hypercube",
    "min",
    "clustered",
];

impl TopologySpec {
    /// Construct the described topology.
    pub fn build(&self) -> Result<Box<dyn Topology>, TopologyError> {
        Ok(match *self {
            TopologySpec::Quarc { n } => Box::new(Quarc::new(n)?),
            TopologySpec::Ring { n } => Box::new(Ring::new(n)?),
            TopologySpec::Spidergon { n } => Box::new(Spidergon::new(n)?),
            TopologySpec::Mesh { width, height } => {
                Box::new(Mesh::new(width, height, MeshKind::Mesh)?)
            }
            TopologySpec::Torus { width, height } => {
                Box::new(Mesh::new(width, height, MeshKind::Torus)?)
            }
            TopologySpec::Hypercube { dim } => Box::new(Hypercube::new(dim)?),
            TopologySpec::Min { k, stages } => Box::new(Min::new(k, stages)?),
            TopologySpec::Clustered { clusters, inner } => {
                let inner: Arc<dyn Topology> = Arc::from(inner.spec().build()?);
                Box::new(Clustered::new(clusters, inner)?)
            }
        })
    }

    /// The registry name of this spec's topology family.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TopologySpec::Quarc { .. } => "quarc",
            TopologySpec::Ring { .. } => "ring",
            TopologySpec::Spidergon { .. } => "spidergon",
            TopologySpec::Mesh { .. } => "mesh",
            TopologySpec::Torus { .. } => "torus",
            TopologySpec::Hypercube { .. } => "hypercube",
            TopologySpec::Min { .. } => "min",
            TopologySpec::Clustered { .. } => "clustered",
        }
    }

    /// Node count the spec describes (without building the topology).
    pub fn num_nodes(&self) -> usize {
        match *self {
            TopologySpec::Quarc { n }
            | TopologySpec::Ring { n }
            | TopologySpec::Spidergon { n } => n,
            TopologySpec::Mesh { width, height } | TopologySpec::Torus { width, height } => {
                width * height
            }
            // Saturate on absurd dimensions instead of overflowing the
            // shift: specs are data and may describe sizes `build()`
            // would reject, but this accessor must never panic or wrap.
            TopologySpec::Hypercube { dim } => 1usize
                .checked_shl(dim.min(u32::MAX as usize) as u32)
                .unwrap_or(usize::MAX),
            TopologySpec::Min { k, stages } => k
                .checked_pow(stages.min(u32::MAX as usize) as u32)
                .unwrap_or(usize::MAX),
            TopologySpec::Clustered { clusters, inner } => {
                clusters.saturating_mul(inner.spec().num_nodes())
            }
        }
    }

    /// Injection ports per node of the described topology (`m` in the
    /// paper), without building it. Used by spec-level validation of
    /// routing schemes that need concurrent ports.
    pub fn num_ports(&self) -> usize {
        match *self {
            TopologySpec::Quarc { .. } => 4,
            TopologySpec::Ring { .. } => 2,
            TopologySpec::Spidergon { .. } => 1,
            TopologySpec::Mesh { .. } | TopologySpec::Torus { .. } => 4,
            TopologySpec::Hypercube { dim } => dim,
            TopologySpec::Min { .. } => 1,
            TopologySpec::Clustered { inner, .. } => inner.spec().num_ports(),
        }
    }

    /// Whether the described topology has a usable Hamiltonian linear
    /// order (see [`Topology::has_linear_order`]): true for the six flat
    /// families, false for the multistage/hierarchical scale families.
    /// Used by spec-level validation of the order-walking multicast
    /// schemes without building the topology.
    pub fn has_linear_order(&self) -> bool {
        !matches!(
            self,
            TopologySpec::Min { .. } | TopologySpec::Clustered { .. }
        )
    }

    /// Construct a spec from a registry name and a *size* argument: the
    /// node count for ring topologies, `width == height` for mesh/torus
    /// (the size must be a perfect square), the dimension for hypercubes.
    pub fn from_name(name: &str, size: usize) -> Result<TopologySpec, TopologyError> {
        match name {
            "quarc" => Ok(TopologySpec::Quarc { n: size }),
            "ring" => Ok(TopologySpec::Ring { n: size }),
            "spidergon" => Ok(TopologySpec::Spidergon { n: size }),
            "hypercube" => Ok(TopologySpec::Hypercube { dim: size }),
            "mesh" | "torus" => {
                let side = (size as f64).sqrt().round() as usize;
                if side * side != size {
                    return Err(TopologyError::InvalidSpec {
                        spec: format!("{name}-{size}"),
                        reason: "mesh/torus size must be a perfect square \
                                 (or use the `WxH` form, e.g. `mesh-4x4`)"
                            .into(),
                    });
                }
                Ok(if name == "mesh" {
                    TopologySpec::Mesh {
                        width: side,
                        height: side,
                    }
                } else {
                    TopologySpec::Torus {
                        width: side,
                        height: side,
                    }
                })
            }
            "min" | "clustered" => Err(TopologyError::InvalidSpec {
                spec: format!("{name}-{size}"),
                reason: format!(
                    "`{name}` has no single-size form; use `min-<k>x<stages>` \
                     or `clustered-<C>x-<inner-spec>`"
                ),
            }),
            other => Err(TopologyError::UnknownTopology {
                name: other.to_string(),
            }),
        }
    }

    /// Parse a compact spec string: `<name>-<size>` (e.g. `quarc-16`,
    /// `hypercube-4`), `<name>-<W>x<H>` for mesh/torus (e.g. `mesh-4x4`),
    /// `min-<k>x<stages>` (e.g. `min-64x2`), or
    /// `clustered-<C>x-<inner-spec>` (e.g. `clustered-4x-mesh-4x4`).
    /// This is the format [`TopologySpec`] displays as, so
    /// `parse(spec.to_string())` round-trips.
    pub fn parse(s: &str) -> Result<TopologySpec, TopologyError> {
        let bad = |reason: &str| TopologyError::InvalidSpec {
            spec: s.to_string(),
            reason: reason.to_string(),
        };
        let (name, arg) = s.split_once('-').ok_or_else(|| {
            bad("expected `<name>-<size>` or `<name>-<W>x<H>` (e.g. `quarc-16`, `mesh-4x4`)")
        })?;
        if !KNOWN_TOPOLOGIES.contains(&name) {
            return Err(TopologyError::UnknownTopology {
                name: name.to_string(),
            });
        }
        if name == "min" {
            let (k, stages) = arg
                .split_once('x')
                .ok_or_else(|| bad("min needs `min-<k>x<stages>` (e.g. `min-64x2`)"))?;
            let k: usize = k.parse().map_err(|_| bad("MIN radix is not a number"))?;
            let stages: usize = stages
                .parse()
                .map_err(|_| bad("MIN stage count is not a number"))?;
            return Ok(TopologySpec::Min { k, stages });
        }
        if name == "clustered" {
            let (count, inner) = arg.split_once('-').ok_or_else(|| {
                bad("clustered needs `clustered-<C>x-<inner-spec>` (e.g. `clustered-4x-mesh-4x4`)")
            })?;
            let count = count.strip_suffix('x').ok_or_else(|| {
                bad("cluster count must end with `x` (e.g. `clustered-4x-mesh-4x4`)")
            })?;
            let clusters: usize = count
                .parse()
                .map_err(|_| bad("cluster count is not a number"))?;
            let inner = ClusterInner::from_spec(TopologySpec::parse(inner)?).ok_or_else(|| {
                bad("inner topology must be one of the flat families (no nested min/clustered)")
            })?;
            return Ok(TopologySpec::Clustered { clusters, inner });
        }
        if let Some((w, h)) = arg.split_once('x') {
            if name != "mesh" && name != "torus" {
                return Err(bad("only mesh/torus accept the `WxH` size form"));
            }
            let width: usize = w.parse().map_err(|_| bad("width is not a number"))?;
            let height: usize = h.parse().map_err(|_| bad("height is not a number"))?;
            return Ok(if name == "mesh" {
                TopologySpec::Mesh { width, height }
            } else {
                TopologySpec::Torus { width, height }
            });
        }
        let size: usize = arg.parse().map_err(|_| bad("size is not a number"))?;
        TopologySpec::from_name(name, size)
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologySpec::Mesh { width, height } | TopologySpec::Torus { width, height } => {
                write!(f, "{}-{}x{}", self.kind_name(), width, height)
            }
            TopologySpec::Hypercube { dim } => write!(f, "hypercube-{dim}"),
            TopologySpec::Min { k, stages } => write!(f, "min-{k}x{stages}"),
            TopologySpec::Clustered { clusters, inner } => {
                write!(f, "clustered-{clusters}x-{inner}")
            }
            _ => write!(f, "{}-{}", self.kind_name(), self.num_nodes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_every_family() {
        for (spec, nodes) in [
            (TopologySpec::Quarc { n: 16 }, 16),
            (TopologySpec::Ring { n: 6 }, 6),
            (TopologySpec::Spidergon { n: 8 }, 8),
            (
                TopologySpec::Mesh {
                    width: 3,
                    height: 3,
                },
                9,
            ),
            (
                TopologySpec::Torus {
                    width: 4,
                    height: 4,
                },
                16,
            ),
            (TopologySpec::Hypercube { dim: 3 }, 8),
        ] {
            assert_eq!(spec.num_nodes(), nodes);
            let topo = spec.build().expect("valid spec");
            assert_eq!(topo.num_nodes(), nodes);
            assert_eq!(topo.name(), spec.kind_name());
            assert_eq!(
                spec.num_ports(),
                topo.num_ports(),
                "spec-level port count must match the built topology"
            );
        }
    }

    #[test]
    fn display_parse_round_trips() {
        for spec in [
            TopologySpec::Quarc { n: 32 },
            TopologySpec::Ring { n: 10 },
            TopologySpec::Spidergon { n: 16 },
            TopologySpec::Mesh {
                width: 4,
                height: 2,
            },
            TopologySpec::Torus {
                width: 3,
                height: 3,
            },
            TopologySpec::Hypercube { dim: 5 },
        ] {
            assert_eq!(TopologySpec::parse(&spec.to_string()), Ok(spec));
        }
    }

    #[test]
    fn unknown_names_are_rejected_with_the_name() {
        let err = TopologySpec::parse("warpgrid-16").unwrap_err();
        assert!(err.to_string().contains("warpgrid"), "{err}");
        assert!(
            err.to_string().contains("quarc"),
            "should list known: {err}"
        );
        assert!(matches!(
            TopologySpec::from_name("warpgrid", 16),
            Err(TopologyError::UnknownTopology { .. })
        ));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(TopologySpec::parse("quarc").is_err());
        assert!(TopologySpec::parse("quarc-abc").is_err());
        assert!(TopologySpec::parse("ring-4x4").is_err());
        assert!(TopologySpec::parse("mesh-4xzz").is_err());
        assert!(matches!(
            TopologySpec::from_name("mesh", 12),
            Err(TopologyError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn invalid_sizes_fail_at_build_with_the_constraint() {
        let err = match (TopologySpec::Quarc { n: 7 }).build() {
            Err(e) => e,
            Ok(_) => panic!("a 7-node Quarc must be rejected"),
        };
        assert!(matches!(err, TopologyError::UnsupportedSize { n: 7, .. }));
        assert!(TopologySpec::Hypercube { dim: 0 }.build().is_err());
        assert!(TopologySpec::Mesh {
            width: 1,
            height: 1
        }
        .build()
        .is_err());
    }

    #[test]
    fn huge_hypercube_dims_saturate_instead_of_overflowing() {
        // Parse does not bound the dimension (build() does, to 2..=10);
        // the size accessor must stay total on such specs.
        let spec = TopologySpec::parse("hypercube-64").unwrap();
        assert_eq!(spec.num_nodes(), usize::MAX);
        assert_eq!(
            (TopologySpec::Hypercube { dim: 1000 }).num_nodes(),
            usize::MAX
        );
        assert!(spec.build().is_err(), "build still rejects it");
    }

    #[test]
    fn mesh_from_square_size() {
        assert_eq!(
            TopologySpec::from_name("torus", 16),
            Ok(TopologySpec::Torus {
                width: 4,
                height: 4
            })
        );
    }

    #[test]
    fn scale_families_parse_build_and_round_trip() {
        let min = TopologySpec::parse("min-64x2").unwrap();
        assert_eq!(min, TopologySpec::Min { k: 64, stages: 2 });
        assert_eq!(min.num_nodes(), 4096);
        assert_eq!(min.num_ports(), 1);
        assert!(!min.has_linear_order());
        assert_eq!(min.to_string(), "min-64x2");
        let topo = min.build().unwrap();
        assert_eq!(topo.num_nodes(), 4096);
        assert!(topo.network().is_implicit());

        let cl = TopologySpec::parse("clustered-4x-mesh-4x4").unwrap();
        assert_eq!(
            cl,
            TopologySpec::Clustered {
                clusters: 4,
                inner: ClusterInner::Mesh {
                    width: 4,
                    height: 4
                }
            }
        );
        assert_eq!(cl.num_nodes(), 64);
        assert_eq!(cl.num_ports(), 4);
        assert!(!cl.has_linear_order());
        assert_eq!(cl.to_string(), "clustered-4x-mesh-4x4");
        let topo = cl.build().unwrap();
        assert_eq!(topo.num_nodes(), 64);
        assert_eq!(TopologySpec::parse(&cl.to_string()), Ok(cl));
    }

    #[test]
    fn scale_family_malformed_specs_are_rejected() {
        // No single-size form.
        assert!(matches!(
            TopologySpec::from_name("min", 64),
            Err(TopologyError::InvalidSpec { .. })
        ));
        assert!(TopologySpec::parse("min-64").is_err());
        assert!(TopologySpec::parse("min-4xq").is_err());
        assert!(
            TopologySpec::parse("clustered-4-mesh-4x4").is_err(),
            "missing x"
        );
        assert!(TopologySpec::parse("clustered-4x-warp-16").is_err());
        // Nested implicit families are unrepresentable.
        assert!(TopologySpec::parse("clustered-2x-min-2x2").is_err());
        assert!(TopologySpec::parse("clustered-2x-clustered-2x-ring-6").is_err());
        // Stage/cluster counts that parse but violate constraints fail at
        // build time with the constraint in the message.
        assert!(TopologySpec::parse("min-4x0").unwrap().build().is_err());
        assert!(TopologySpec::parse("clustered-0x-mesh-4x4")
            .unwrap()
            .build()
            .is_err());
    }
}
