//! Channel descriptors.
//!
//! A *channel* is the unit of resource allocation in a wormhole-routed
//! network and the unit of queueing in the analytical model: the network is
//! "viewed as a network of queues, where each channel is modeled as an
//! M/G/1 queue" (paper, §2.1).

use crate::ids::{ChannelId, NodeId, PortId};
use serde::{Deserialize, Serialize};

/// The role a channel plays in the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Internal link from the local node (its transceiver / passive queue)
    /// into the router, one per port in a multi-port architecture.
    Injection,
    /// External link between two neighbouring routers.
    Link,
    /// Internal link from the router to the local sink, one per input
    /// direction in a multi-port architecture.
    Ejection,
}

impl ChannelKind {
    /// `true` for channels internal to a node (injection/ejection).
    #[inline]
    pub fn is_internal(self) -> bool {
        !matches!(self, ChannelKind::Link)
    }
}

/// A directed channel of the network.
///
/// For `Injection` and `Ejection` channels, `from == to == node`. For `Link`
/// channels, `from` is the upstream router and `to` the downstream router.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Dense identifier; equals the channel's index in the network table.
    pub id: ChannelId,
    /// Role of the channel.
    pub kind: ChannelKind,
    /// Source endpoint.
    pub from: NodeId,
    /// Destination endpoint.
    pub to: NodeId,
    /// Port (direction class) the channel belongs to. For a link, the output
    /// port of `from` it is wired to; for injection/ejection channels, the
    /// router port they serve.
    pub port: PortId,
    /// Number of virtual channels multiplexed on this physical channel.
    pub vcs: u8,
    /// Whether this link is the *dateline* of the ring it belongs to.
    ///
    /// Messages whose path traverses a dateline link switch from virtual
    /// channel 0 to virtual channel 1 at the dateline, breaking the cyclic
    /// channel dependency of ring topologies (deadlock avoidance).
    pub dateline: bool,
    /// Human-readable label, e.g. `"cw 3->4"`, used by the renderers.
    pub label: String,
}

impl Channel {
    /// Construct a link channel.
    pub fn link(
        id: ChannelId,
        from: NodeId,
        to: NodeId,
        port: PortId,
        vcs: u8,
        dateline: bool,
        label: impl Into<String>,
    ) -> Self {
        Channel {
            id,
            kind: ChannelKind::Link,
            from,
            to,
            port,
            vcs,
            dateline,
            label: label.into(),
        }
    }

    /// Construct an injection channel at `node` for `port`.
    pub fn injection(id: ChannelId, node: NodeId, port: PortId, label: impl Into<String>) -> Self {
        Channel {
            id,
            kind: ChannelKind::Injection,
            from: node,
            to: node,
            port,
            vcs: 1,
            dateline: false,
            label: label.into(),
        }
    }

    /// Construct an ejection channel at `node` for input direction `port`.
    pub fn ejection(id: ChannelId, node: NodeId, port: PortId, label: impl Into<String>) -> Self {
        Channel {
            id,
            kind: ChannelKind::Ejection,
            from: node,
            to: node,
            port,
            vcs: 1,
            dateline: false,
            label: label.into(),
        }
    }

    /// The node at which this channel queues traffic (its upstream side).
    #[inline]
    pub fn queueing_node(&self) -> NodeId {
        self.from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kinds() {
        let inj = Channel::injection(ChannelId(0), NodeId(3), PortId(1), "inj");
        assert_eq!(inj.kind, ChannelKind::Injection);
        assert_eq!(inj.from, inj.to);
        assert!(inj.kind.is_internal());

        let link = Channel::link(
            ChannelId(1),
            NodeId(3),
            NodeId(4),
            PortId(0),
            2,
            false,
            "cw 3->4",
        );
        assert_eq!(link.kind, ChannelKind::Link);
        assert!(!link.kind.is_internal());
        assert_eq!(link.vcs, 2);

        let ej = Channel::ejection(ChannelId(2), NodeId(4), PortId(0), "ej");
        assert_eq!(ej.kind, ChannelKind::Ejection);
        assert!(ej.kind.is_internal());
        assert_eq!(ej.queueing_node(), NodeId(4));
    }

    #[test]
    fn dateline_flag_is_preserved() {
        let link = Channel::link(
            ChannelId(7),
            NodeId(15),
            NodeId(0),
            PortId(0),
            2,
            true,
            "cw 15->0",
        );
        assert!(link.dateline);
    }
}
