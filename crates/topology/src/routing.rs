//! Pluggable multicast routing schemes.
//!
//! The paper's model (§2.2, Eq. 8–16) assumes *path-based* multicast: each
//! injection port of the source carries one wormhole stream that visits
//! its share of the destinations in hardware (absorb-and-forward). That is
//! only one point in the design space the NoC-multicast literature
//! explores — Berejuck's overview (arXiv:1610.00751) taxonomizes
//! unicast-based, path-based and tree-based schemes, and Tiwari et al.'s
//! Dynamic Partition Merging (arXiv:2108.00566) partitions destinations
//! across paths to cut latency. This module makes the scheme a pluggable
//! axis:
//!
//! * [`RoutingSpec::PathBased`] — the topology's native stream
//!   construction ([`Topology::multicast_streams`]): BRCP rim streams on
//!   the Quarc/ring, Hamiltonian dual-path on mesh/torus/hypercube.
//!   Bit-identical to the pre-abstraction behaviour.
//! * [`RoutingSpec::DualPath`] — the generic Lin–Ni split: destinations
//!   are divided into the half *above* and the half *below* the source on
//!   the topology's linear order ([`Topology::linear_label`]) and each
//!   half is served by one stream walking the order label-by-label,
//!   absorbing at targets.
//! * [`RoutingSpec::Multipath`] — DPM-style partitioned multipath
//!   (arXiv:2108.00566): the two dual-path halves are greedily split into
//!   up to `m` (ports per node) contiguous segments, each served by its
//!   own walk — shorter absorb lists per stream at the cost of shared
//!   prefix links.
//! * [`RoutingSpec::UnicastTree`] — the no-hardware-support baseline: the
//!   source replicates the message into one plain unicast per
//!   destination; streams sharing an injection port serialize there.
//!
//! Every scheme produces ordinary [`MulticastStream`]s, so the simulator
//! engines and the analytical model consume them unchanged.
//!
//! ## Deadlock discipline
//!
//! Wormhole multicast paths hold channels across many hops, so route
//! construction carries the deadlock-freedom argument. The order-based
//! schemes (`DualPath`/`Multipath`) move **strictly monotonically** along
//! the linear order using only links between order-adjacent nodes, on
//! each link's *top* virtual channel. Monotonicity makes the channel
//! dependency graph of the up (and, mirrored, the down) subnetwork
//! acyclic — the Lin–Ni argument the native mesh/hypercube dual-path
//! construction also uses. On grid/cube topologies the top VC *is* the
//! reserved multicast class; on rim topologies (Quarc/ring) it is the
//! dateline class, which stays acyclic because the walk never crosses the
//! wrap link. (An earlier construction chained shortest unicast legs
//! instead; its mid-path turns deadlocked under load — see
//! `tests/routing_schemes.rs` for the regression.) `UnicastTree` streams
//! are plain unicast routes and inherit the base routing's discipline.
//!
//! The analytical model's asynchronous-port assumption holds for the
//! path-based and dual-path schemes, whose streams use disjoint channels;
//! [`RoutingSpec::model_applicable`] flags `Multipath` (one operation's
//! segments co-arrive on shared prefix links) and `UnicastTree` (streams
//! serialize at shared injection ports) as outside the model's domain —
//! contention between a single operation's streams is exactly what the
//! independent-exponentials combination of Eq. 12–13 does not see.

use crate::ids::NodeId;
use crate::network::Topology;
use crate::path::{Hop, MulticastStream, Path};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when a routing scheme cannot be realized on a topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoutingError {
    /// The scheme needs at least two injection ports per node to produce
    /// concurrent streams (e.g. `Multipath`/`DualPath` on the one-port
    /// Spidergon degenerate to a serialized path — reject instead of
    /// silently modelling concurrency that cannot exist).
    SingleInjectionPort {
        /// The scheme's registry code.
        scheme: &'static str,
        /// Injection ports per node of the offending topology.
        ports: usize,
    },
    /// The scheme needs more nodes than the topology has (a multicast
    /// needs at least one possible destination besides the source).
    TooFewNodes {
        /// The scheme's registry code.
        scheme: &'static str,
        /// Node count of the offending topology.
        nodes: usize,
    },
    /// The scheme walks the topology's Hamiltonian linear order, which
    /// the topology does not have (multistage/hierarchical families —
    /// see [`Topology::has_linear_order`]).
    NoLinearOrder {
        /// The scheme's registry code.
        scheme: &'static str,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::SingleInjectionPort { scheme, ports } => write!(
                f,
                "routing scheme `{scheme}` requires >= 2 injection ports per node \
                 for concurrent streams, topology has {ports}"
            ),
            RoutingError::TooFewNodes { scheme, nodes } => write!(
                f,
                "routing scheme `{scheme}` requires >= 2 nodes, topology has {nodes}"
            ),
            RoutingError::NoLinearOrder { scheme } => write!(
                f,
                "routing scheme `{scheme}` walks a Hamiltonian linear order, \
                 which multistage/hierarchical topologies do not have"
            ),
        }
    }
}

impl std::error::Error for RoutingError {}

/// A multicast routing scheme: turns `(topology, source, destination set)`
/// into per-port wormhole streams.
///
/// Implementations must uphold the *partition invariants* the simulator
/// and the model rely on: the streams' target lists cover every requested
/// destination (minus the source, minus duplicates) **exactly once**, and
/// every stream path is valid on the topology's channel graph.
pub trait MulticastRouting: Send + Sync {
    /// Short registry code (`"path"`, `"dual-path"`, ...).
    fn code(&self) -> &'static str;

    /// Check the scheme is realizable on a topology of `num_nodes` nodes
    /// with `num_ports` injection ports per node; `has_linear_order`
    /// states whether the topology has a usable Hamiltonian linear order
    /// ([`Topology::has_linear_order`]), which the order-walking schemes
    /// require.
    fn validate(
        &self,
        num_nodes: usize,
        num_ports: usize,
        has_linear_order: bool,
    ) -> Result<(), RoutingError>;

    /// Decompose a multicast from `src` to `targets` into streams.
    /// `src` entries and duplicates in `targets` are ignored.
    fn streams(&self, topo: &dyn Topology, src: NodeId, targets: &[NodeId])
        -> Vec<MulticastStream>;

    /// Does the paper's asynchronous-port waiting model (Eq. 8–16) apply
    /// to this scheme's streams?
    fn model_applicable(&self) -> bool {
        true
    }
}

/// Drop `src` and duplicates from a target list, preserving first-seen
/// order (the shared sanitation step of all generic schemes, mirroring
/// what the native topology constructions do).
fn sanitize(src: NodeId, targets: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(targets.len());
    for &t in targets {
        if t != src && !out.contains(&t) {
            out.push(t);
        }
    }
    out
}

/// Shared per-call context of the order-based schemes: for each
/// order-adjacent node pair, the connecting link. Built once per
/// `streams()` call.
struct OrderWalk {
    /// `step_up[h]` — the link from label `h` to label `h + 1`
    /// (`step_up[n-1]` is unused and left as `None`).
    step_up: Vec<Option<Hop>>,
    /// `step_down[h]` — the link from label `h` to label `h - 1`.
    step_down: Vec<Option<Hop>>,
}

impl OrderWalk {
    fn build(topo: &dyn Topology) -> Self {
        let net = topo.network();
        let n = net.num_nodes();
        let mut step_up: Vec<Option<Hop>> = vec![None; n];
        let mut step_down: Vec<Option<Hop>> = vec![None; n];
        for ch in net.links() {
            let hf = topo.linear_label(ch.from);
            let ht = topo.linear_label(ch.to);
            // Order-based streams ride each link's top virtual channel:
            // the reserved multicast class on grid/cube topologies, the
            // (never-wrapped-into) dateline class on rim topologies.
            let hop = Hop::new(ch.id, ch.vcs - 1);
            if ht == hf + 1 {
                step_up[hf] = Some(hop);
            } else if hf == ht + 1 {
                step_down[hf] = Some(hop);
            }
        }
        OrderWalk { step_up, step_down }
    }

    /// Build one stream from `src` that walks the linear order up (or
    /// down) to the last of `visits`, absorbing at each visit.
    /// `visits` must be sorted by label, ascending when `up`, strictly on
    /// the `up` side of `src`'s label.
    fn stream(
        &self,
        topo: &dyn Topology,
        src: NodeId,
        visits: &[NodeId],
        up: bool,
    ) -> MulticastStream {
        debug_assert!(!visits.is_empty());
        let net = topo.network();
        let last = topo.linear_label(*visits.last().unwrap());
        let mut h = topo.linear_label(src);
        let mut links: Vec<Hop> = Vec::new();
        while h != last {
            let step = if up {
                self.step_up[h]
            } else {
                self.step_down[h]
            };
            links.push(step.unwrap_or_else(|| {
                panic!(
                    "order-based routing requires a link between \
                     order-adjacent nodes (none at label {h})"
                )
            }));
            h = if up { h + 1 } else { h - 1 };
        }
        let first_link = net.channel(links[0].channel);
        let last_link = net.channel(links[links.len() - 1].channel);
        let port = first_link.port;
        let dst = last_link.to;
        let mut hops = Vec::with_capacity(links.len() + 2);
        hops.push(Hop::new(net.injection_channel(src, port), 0));
        hops.extend_from_slice(&links);
        hops.push(Hop::new(net.ejection_channel(dst, last_link.port), 0));
        MulticastStream {
            port,
            path: Path {
                src,
                dst,
                port,
                hops,
            },
            targets: visits.to_vec(),
        }
    }
}

/// Split the sanitized targets into the label-sorted halves above
/// (ascending) and below (descending) `src`.
fn order_halves(
    topo: &dyn Topology,
    src: NodeId,
    targets: &[NodeId],
) -> (Vec<NodeId>, Vec<NodeId>) {
    let h0 = topo.linear_label(src);
    let mut high: Vec<(usize, NodeId)> = Vec::new();
    let mut low: Vec<(usize, NodeId)> = Vec::new();
    for t in sanitize(src, targets) {
        let h = topo.linear_label(t);
        if h > h0 {
            high.push((h, t));
        } else {
            low.push((h, t));
        }
    }
    high.sort_unstable();
    low.sort_unstable();
    low.reverse();
    (
        high.into_iter().map(|(_, t)| t).collect(),
        low.into_iter().map(|(_, t)| t).collect(),
    )
}

/// The topology's native path-based construction
/// ([`Topology::multicast_streams`]) — the paper's BRCP scheme on the
/// Quarc and ring, Hamiltonian dual-path on mesh/torus/hypercube.
#[derive(Clone, Copy, Debug, Default)]
pub struct PathBased;

impl MulticastRouting for PathBased {
    fn code(&self) -> &'static str {
        "path"
    }

    fn validate(
        &self,
        num_nodes: usize,
        _num_ports: usize,
        _has_linear_order: bool,
    ) -> Result<(), RoutingError> {
        if num_nodes < 2 {
            return Err(RoutingError::TooFewNodes {
                scheme: self.code(),
                nodes: num_nodes,
            });
        }
        Ok(())
    }

    fn streams(
        &self,
        topo: &dyn Topology,
        src: NodeId,
        targets: &[NodeId],
    ) -> Vec<MulticastStream> {
        topo.multicast_streams(src, targets)
    }
}

/// Generic Lin–Ni dual-path: split the destinations into the halves above
/// and below the source on [`Topology::linear_label`] and serve each half
/// with one stream walking the order label-by-label (absorbing at
/// targets) on the links' top virtual channel.
///
/// On mesh/torus/hypercube this reproduces the native Hamiltonian
/// dual-path construction exactly; on the Quarc it is the two-rim-stream
/// alternative to the native four-port BRCP decomposition.
#[derive(Clone, Copy, Debug, Default)]
pub struct DualPath;

impl MulticastRouting for DualPath {
    fn code(&self) -> &'static str {
        "dual-path"
    }

    fn validate(
        &self,
        num_nodes: usize,
        num_ports: usize,
        has_linear_order: bool,
    ) -> Result<(), RoutingError> {
        if num_nodes < 2 {
            return Err(RoutingError::TooFewNodes {
                scheme: self.code(),
                nodes: num_nodes,
            });
        }
        if num_ports < 2 {
            return Err(RoutingError::SingleInjectionPort {
                scheme: self.code(),
                ports: num_ports,
            });
        }
        if !has_linear_order {
            return Err(RoutingError::NoLinearOrder {
                scheme: self.code(),
            });
        }
        Ok(())
    }

    fn streams(
        &self,
        topo: &dyn Topology,
        src: NodeId,
        targets: &[NodeId],
    ) -> Vec<MulticastStream> {
        let (high, low) = order_halves(topo, src, targets);
        let walk = OrderWalk::build(topo);
        let mut streams = Vec::new();
        for (half, up) in [(high, true), (low, false)] {
            if !half.is_empty() {
                streams.push(walk.stream(topo, src, &half, up));
            }
        }
        streams
    }
}

/// DPM-style partitioned multipath (arXiv:2108.00566): the dual-path
/// halves are greedily split into up to `m` (injection ports per node)
/// contiguous label segments — always splitting the segment with the most
/// targets — and each segment gets its own order walk. More streams mean
/// shorter absorb lists (lower per-stream service time) at the cost of
/// shared prefix links near the source.
#[derive(Clone, Copy, Debug, Default)]
pub struct Multipath;

impl MulticastRouting for Multipath {
    fn code(&self) -> &'static str {
        "multipath"
    }

    fn validate(
        &self,
        num_nodes: usize,
        num_ports: usize,
        has_linear_order: bool,
    ) -> Result<(), RoutingError> {
        if num_nodes < 2 {
            return Err(RoutingError::TooFewNodes {
                scheme: self.code(),
                nodes: num_nodes,
            });
        }
        if num_ports < 2 {
            return Err(RoutingError::SingleInjectionPort {
                scheme: self.code(),
                ports: num_ports,
            });
        }
        if !has_linear_order {
            return Err(RoutingError::NoLinearOrder {
                scheme: self.code(),
            });
        }
        Ok(())
    }

    fn streams(
        &self,
        topo: &dyn Topology,
        src: NodeId,
        targets: &[NodeId],
    ) -> Vec<MulticastStream> {
        let (high, low) = order_halves(topo, src, targets);
        let budget = topo.num_ports();
        // Greedy partitioning: start from the dual-path halves and keep
        // splitting the largest segment in half until the port budget is
        // spent or every segment is a single target.
        let mut segments: Vec<(Vec<NodeId>, bool)> = [(high, true), (low, false)]
            .into_iter()
            .filter(|(half, _)| !half.is_empty())
            .collect();
        while segments.len() < budget {
            let (i, _) = match segments
                .iter()
                .enumerate()
                .filter(|(_, (seg, _))| seg.len() > 1)
                .max_by_key(|(_, (seg, _))| seg.len())
            {
                Some((i, seg)) => (i, seg),
                None => break, // all segments are singletons
            };
            let (seg, up) = segments.remove(i);
            let (near, far) = seg.split_at(seg.len() / 2);
            segments.insert(i, (near.to_vec(), up));
            segments.insert(i + 1, (far.to_vec(), up));
        }
        let walk = OrderWalk::build(topo);
        segments
            .into_iter()
            .map(|(seg, up)| walk.stream(topo, src, &seg, up))
            .collect()
    }

    /// Segments of the same half share their prefix links, so one
    /// operation's streams co-arrive on common channels — a synchronized
    /// contention the model's independent-exponentials combination
    /// (Eq. 12–13) does not see (empirically a ~50% underprediction even
    /// at 30% load). Out of the model's domain, like [`UnicastTree`].
    fn model_applicable(&self) -> bool {
        false
    }
}

/// Source-replicated unicast: one plain unicast stream per destination,
/// the baseline for routers with no multicast hardware support. Streams
/// that share an injection port serialize there — the asynchronous-port
/// model does not apply ([`MulticastRouting::model_applicable`] is
/// `false`).
#[derive(Clone, Copy, Debug, Default)]
pub struct UnicastTree;

impl MulticastRouting for UnicastTree {
    fn code(&self) -> &'static str {
        "unicast"
    }

    fn validate(
        &self,
        num_nodes: usize,
        _num_ports: usize,
        _has_linear_order: bool,
    ) -> Result<(), RoutingError> {
        if num_nodes < 2 {
            return Err(RoutingError::TooFewNodes {
                scheme: self.code(),
                nodes: num_nodes,
            });
        }
        Ok(())
    }

    fn streams(
        &self,
        topo: &dyn Topology,
        src: NodeId,
        targets: &[NodeId],
    ) -> Vec<MulticastStream> {
        sanitize(src, targets)
            .into_iter()
            .map(|t| {
                let path = topo.unicast_path(src, t);
                MulticastStream {
                    port: path.port,
                    targets: vec![t],
                    path,
                }
            })
            .collect()
    }

    fn model_applicable(&self) -> bool {
        false
    }
}

/// The serializable multicast-routing selector of a workload.
///
/// Missing keys in persisted scenarios deserialize to the paper's
/// [`RoutingSpec::PathBased`] (the only scheme that existed before the
/// abstraction), so old spec files stay readable.
///
/// # Example
///
/// ```
/// use noc_topology::{NodeId, Quarc, RoutingSpec, Topology};
///
/// let quarc = Quarc::new(16).unwrap();
/// let targets = [NodeId(3), NodeId(8), NodeId(12)];
/// // The native path-based scheme decomposes over the injection ports...
/// let path = RoutingSpec::PathBased.streams(&quarc, NodeId(0), &targets);
/// assert!(path.len() <= quarc.num_ports());
/// // ...while the unicast baseline replicates one stream per destination
/// // (and the model's asynchronous-port assumption no longer applies).
/// let uni = RoutingSpec::UnicastTree.streams(&quarc, NodeId(0), &targets);
/// assert_eq!(uni.len(), targets.len());
/// assert!(!RoutingSpec::UnicastTree.model_applicable());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingSpec {
    /// The topology's native path-based (BRCP) construction — the paper's
    /// scheme and the default.
    #[default]
    PathBased,
    /// Generic Lin–Ni dual-path over the topology's linear order.
    DualPath,
    /// DPM-style one-partition-per-port multipath.
    Multipath,
    /// Source-replicated unicast (no multicast hardware support).
    UnicastTree,
}

/// Every scheme in registry order (sweep binaries iterate this).
pub const ALL_ROUTINGS: [RoutingSpec; 4] = [
    RoutingSpec::PathBased,
    RoutingSpec::DualPath,
    RoutingSpec::Multipath,
    RoutingSpec::UnicastTree,
];

impl RoutingSpec {
    /// The scheme implementation this spec selects.
    pub fn scheme(&self) -> &'static dyn MulticastRouting {
        match self {
            RoutingSpec::PathBased => &PathBased,
            RoutingSpec::DualPath => &DualPath,
            RoutingSpec::Multipath => &Multipath,
            RoutingSpec::UnicastTree => &UnicastTree,
        }
    }

    /// Short code used in derived labels (`"path"`, `"dual-path"`,
    /// `"multipath"`, `"unicast"`).
    pub fn code(&self) -> &'static str {
        self.scheme().code()
    }

    /// Check the scheme is realizable on a topology of `num_nodes` nodes
    /// with `num_ports` injection ports per node and (for the
    /// order-walking schemes) a usable Hamiltonian linear order.
    pub fn validate(
        &self,
        num_nodes: usize,
        num_ports: usize,
        has_linear_order: bool,
    ) -> Result<(), RoutingError> {
        self.scheme()
            .validate(num_nodes, num_ports, has_linear_order)
    }

    /// Decompose a multicast from `src` to `targets` into streams under
    /// this scheme (see [`MulticastRouting::streams`]).
    pub fn streams(
        &self,
        topo: &dyn Topology,
        src: NodeId,
        targets: &[NodeId],
    ) -> Vec<MulticastStream> {
        self.scheme().streams(topo, src, targets)
    }

    /// Does the paper's asynchronous-port waiting model apply? `false`
    /// for [`RoutingSpec::Multipath`] (segments of one operation share
    /// their prefix links) and [`RoutingSpec::UnicastTree`] (streams
    /// serialize at shared injection ports).
    pub fn model_applicable(&self) -> bool {
        self.scheme().model_applicable()
    }
}

impl fmt::Display for RoutingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Mesh, MeshKind};
    use crate::quarc::Quarc;
    use crate::ring::Ring;
    use std::collections::BTreeSet;

    fn check_partition(topo: &dyn Topology, spec: RoutingSpec, src: NodeId, targets: &[NodeId]) {
        let streams = spec.streams(topo, src, targets);
        let mut covered = BTreeSet::new();
        for st in &streams {
            topo.network().validate_path(&st.path).unwrap();
            assert_eq!(st.path.dst, *st.targets.last().unwrap());
            assert_eq!(st.port, st.path.port);
            for &t in &st.targets {
                assert_ne!(t, src, "{spec}: no self-delivery");
                assert!(covered.insert(t), "{spec}: target {t:?} covered twice");
            }
        }
        let expected: BTreeSet<_> = targets.iter().copied().filter(|&t| t != src).collect();
        assert_eq!(covered, expected, "{spec}: all targets covered");
    }

    #[test]
    fn path_based_is_the_native_construction() {
        let q = Quarc::new(16).unwrap();
        let targets = [NodeId(3), NodeId(8), NodeId(12), NodeId(5)];
        assert_eq!(
            RoutingSpec::PathBased.streams(&q, NodeId(0), &targets),
            q.multicast_streams(NodeId(0), &targets)
        );
    }

    #[test]
    fn every_scheme_partitions_on_multi_port_topologies() {
        let quarc = Quarc::new(16).unwrap();
        let mesh = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
        let ring = Ring::new(9).unwrap();
        let topos: [&dyn Topology; 3] = [&quarc, &mesh, &ring];
        for topo in topos {
            let n = topo.num_nodes() as u32;
            let targets: Vec<NodeId> = (1..n).step_by(2).map(NodeId).collect();
            for spec in ALL_ROUTINGS {
                check_partition(topo, spec, NodeId(0), &targets);
            }
        }
    }

    #[test]
    fn src_and_duplicates_are_ignored_by_generic_schemes() {
        let q = Quarc::new(16).unwrap();
        let src = NodeId(2);
        let messy = [src, NodeId(5), NodeId(5), NodeId(9), src];
        for spec in [
            RoutingSpec::DualPath,
            RoutingSpec::Multipath,
            RoutingSpec::UnicastTree,
        ] {
            check_partition(&q, spec, src, &messy);
        }
    }

    #[test]
    fn dual_path_yields_at_most_two_streams_in_label_order() {
        let mesh = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
        let src = NodeId(5);
        let targets: Vec<NodeId> = (0..16).map(NodeId).filter(|&t| t != src).collect();
        let streams = RoutingSpec::DualPath.streams(&mesh, src, &targets);
        assert_eq!(streams.len(), 2);
        let h0 = mesh.linear_label(src);
        let labels = |st: &MulticastStream| -> Vec<usize> {
            st.targets.iter().map(|&t| mesh.linear_label(t)).collect()
        };
        let high = labels(&streams[0]);
        assert!(high.windows(2).all(|w| w[0] < w[1]), "ascending: {high:?}");
        assert!(high.iter().all(|&h| h > h0));
        let low = labels(&streams[1]);
        assert!(low.windows(2).all(|w| w[0] > w[1]), "descending: {low:?}");
        assert!(low.iter().all(|&h| h < h0));
    }

    #[test]
    fn multipath_splits_into_at_most_ports_contiguous_segments() {
        let q = Quarc::new(16).unwrap();
        let src = NodeId(0);
        let targets: Vec<NodeId> = (1..16).map(NodeId).collect();
        let streams = RoutingSpec::Multipath.streams(&q, src, &targets);
        assert_eq!(streams.len(), q.num_ports(), "port budget fully used");
        for st in &streams {
            q.network().validate_path(&st.path).unwrap();
            // Each stream's targets are monotone in the linear order
            // (contiguous label segments of one dual-path half).
            let labels: Vec<usize> = st.targets.iter().map(|&t| q.linear_label(t)).collect();
            assert!(
                labels.windows(2).all(|w| w[0] < w[1]) || labels.windows(2).all(|w| w[0] > w[1]),
                "segment labels must be monotone: {labels:?}"
            );
        }
        // Few targets: one singleton stream each, never more than targets.
        let streams = RoutingSpec::Multipath.streams(&q, src, &[NodeId(2), NodeId(9)]);
        assert_eq!(streams.len(), 2);
        assert!(streams.iter().all(|st| st.targets.len() == 1));
    }

    #[test]
    fn dual_path_reproduces_the_native_construction_on_ordered_topologies() {
        // On mesh/hypercube the native multicast *is* the Hamiltonian
        // dual-path; the generic order walk must reproduce it exactly.
        let mesh = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
        let cube = crate::hypercube::Hypercube::new(4).unwrap();
        let topos: [&dyn Topology; 2] = [&mesh, &cube];
        for topo in topos {
            for src in [NodeId(0), NodeId(5), NodeId(10)] {
                let targets: Vec<NodeId> = (0..16)
                    .map(NodeId)
                    .filter(|&t| t != src)
                    .step_by(3)
                    .collect();
                assert_eq!(
                    RoutingSpec::DualPath.streams(topo, src, &targets),
                    topo.multicast_streams(src, &targets),
                    "{} src {src:?}",
                    topo.name()
                );
            }
        }
    }

    #[test]
    fn order_walks_ride_the_top_virtual_channel_monotonically() {
        let q = Quarc::new(16).unwrap();
        let src = NodeId(4);
        let targets = [NodeId(7), NodeId(11), NodeId(2)];
        for spec in [RoutingSpec::DualPath, RoutingSpec::Multipath] {
            for st in spec.streams(&q, src, &targets) {
                let mut prev = q.linear_label(src);
                let up = q.linear_label(st.targets[0]) > prev;
                for hop in &st.path.hops[1..st.path.hops.len() - 1] {
                    let ch = q.network().channel(hop.channel);
                    assert_eq!(hop.vc.0, ch.vcs - 1, "{spec}: top VC");
                    assert!(!ch.dateline, "{spec}: the walk never wraps");
                    let next = q.linear_label(ch.to);
                    assert_eq!(
                        next,
                        if up { prev + 1 } else { prev - 1 },
                        "{spec}: label-adjacent monotone walk"
                    );
                    prev = next;
                }
            }
        }
    }

    #[test]
    fn unicast_tree_is_one_plain_unicast_per_destination() {
        let q = Quarc::new(16).unwrap();
        let targets = [NodeId(3), NodeId(8), NodeId(12)];
        let streams = RoutingSpec::UnicastTree.streams(&q, NodeId(0), &targets);
        assert_eq!(streams.len(), 3);
        for (st, &t) in streams.iter().zip(&targets) {
            assert_eq!(st.targets, vec![t]);
            assert_eq!(st.path, q.unicast_path(NodeId(0), t));
        }
    }

    #[test]
    fn validation_rejects_unrealizable_schemes() {
        // One-port topologies cannot run concurrent-stream schemes.
        for spec in [RoutingSpec::DualPath, RoutingSpec::Multipath] {
            assert_eq!(
                spec.validate(16, 1, true),
                Err(RoutingError::SingleInjectionPort {
                    scheme: spec.code(),
                    ports: 1
                })
            );
        }
        // The always-realizable schemes accept one port.
        assert_eq!(RoutingSpec::PathBased.validate(16, 1, true), Ok(()));
        assert_eq!(RoutingSpec::UnicastTree.validate(16, 1, true), Ok(()));
        // Nothing routes on a single node.
        for spec in ALL_ROUTINGS {
            assert!(matches!(
                spec.validate(1, 4, true),
                Err(RoutingError::TooFewNodes { .. })
            ));
        }
        // Errors display their scheme code.
        let err = RoutingSpec::Multipath.validate(16, 1, true).unwrap_err();
        assert!(err.to_string().contains("multipath"), "{err}");
    }

    #[test]
    fn order_walking_schemes_require_a_linear_order() {
        // Multistage/hierarchical topologies have no Hamiltonian order;
        // the order-walking schemes reject them at validation time.
        for spec in [RoutingSpec::DualPath, RoutingSpec::Multipath] {
            assert_eq!(
                spec.validate(64, 4, false),
                Err(RoutingError::NoLinearOrder {
                    scheme: spec.code()
                })
            );
            let err = spec.validate(64, 4, false).unwrap_err();
            assert!(err.to_string().contains(spec.code()), "{err}");
        }
        // The non-walking schemes do not care.
        assert_eq!(RoutingSpec::PathBased.validate(64, 4, false), Ok(()));
        assert_eq!(RoutingSpec::UnicastTree.validate(64, 4, false), Ok(()));
    }

    #[test]
    fn default_is_path_based_and_codes_are_stable() {
        assert_eq!(RoutingSpec::default(), RoutingSpec::PathBased);
        assert!(RoutingSpec::PathBased.model_applicable());
        assert!(RoutingSpec::DualPath.model_applicable());
        assert!(!RoutingSpec::Multipath.model_applicable());
        assert!(!RoutingSpec::UnicastTree.model_applicable());
        let codes: Vec<_> = ALL_ROUTINGS.iter().map(|s| s.code()).collect();
        assert_eq!(codes, ["path", "dual-path", "multipath", "unicast"]);
    }

    #[test]
    fn specs_serialize_round_trip() {
        for spec in ALL_ROUTINGS {
            let json = serde::json::to_string_pretty(&spec);
            let back: RoutingSpec = serde::json::from_str(&json).expect("round trip parses");
            assert_eq!(spec, back);
        }
    }
}
