//! Mesh and torus topologies with multi-port routers.
//!
//! The paper's conclusion names "multi-port mesh and torus" as the next
//! target for the multicast model. This module provides both:
//!
//! * **Unicast**: dimension-ordered (XY) routing. On the torus each
//!   dimension ring uses the dateline virtual-channel discipline.
//! * **Multicast**: the classic *dual-path* scheme (Lin–Ni): nodes are
//!   ordered along a boustrophedon Hamiltonian path `h(·)`; a multicast
//!   splits into a *high* stream visiting targets with `h(t) > h(src)` in
//!   increasing `h` order and a *low* stream visiting targets with
//!   `h(t) < h(src)` in decreasing order. Both streams follow physical
//!   mesh links between `h`-consecutive nodes, absorbing-and-forwarding at
//!   targets exactly like the Quarc's BRCP streams — giving `m = 2`
//!   asynchronous port streams for the analytical model.
//!
//! Multicast streams travel on virtual channel 1 of the rim links while XY
//! unicast uses virtual channel 0; the high/low Hamiltonian subnetworks are
//! acyclic by construction, so the two traffic classes cannot deadlock each
//! other.

use crate::channel::Channel;
use crate::ids::{ChannelId, NodeId, PortId};
use crate::network::{Network, Topology, TopologyError};
use crate::path::{Hop, MulticastStream, Path};

/// Port indices of the mesh/torus all-port router.
pub mod port {
    use crate::ids::PortId;

    /// +x direction (east).
    pub const XPLUS: PortId = PortId(0);
    /// −x direction (west).
    pub const XMINUS: PortId = PortId(1);
    /// +y direction (north).
    pub const YPLUS: PortId = PortId(2);
    /// −y direction (south).
    pub const YMINUS: PortId = PortId(3);

    /// All four ports in index order.
    pub const ALL: [PortId; 4] = [XPLUS, XMINUS, YPLUS, YMINUS];
}

/// Whether wrap-around links exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeshKind {
    /// No wrap-around links.
    Mesh,
    /// Wrap-around links in both dimensions (k-ary 2-cube).
    Torus,
}

/// A `width × height` mesh or torus with 4-port routers.
#[derive(Clone, Debug)]
pub struct Mesh {
    width: usize,
    height: usize,
    kind: MeshKind,
    net: Network,
    /// `links[(node, port)] -> ChannelId` for existing output links.
    out_link: Vec<Option<ChannelId>>,
}

impl Mesh {
    /// Build a mesh (`kind = Mesh`) or torus (`kind = Torus`) of
    /// `width × height` nodes. Requires `width ≥ 2` and `height ≥ 2`
    /// (torus: `≥ 3` per dimension so that wrap links are distinct).
    pub fn new(width: usize, height: usize, kind: MeshKind) -> Result<Self, TopologyError> {
        let min = match kind {
            MeshKind::Mesh => 2,
            MeshKind::Torus => 3,
        };
        if width < min || height < min {
            return Err(TopologyError::UnsupportedSize {
                n: width * height,
                requirement: "Mesh requires width,height >= 2 (torus >= 3)",
            });
        }
        let n = width * height;
        let mut channels: Vec<Channel> = Vec::new();
        let mut out_link: Vec<Option<ChannelId>> = vec![None; n * 4];
        let node = |x: usize, y: usize| NodeId((y * width + x) as u32);
        let mut push_link = |channels: &mut Vec<Channel>,
                             from: NodeId,
                             to: NodeId,
                             p: PortId,
                             dateline: bool,
                             label: String| {
            let id = ChannelId(channels.len() as u32);
            // Rim links carry 2 VCs: vc0 = XY unicast (+ torus dateline uses
            // vc1), vc1 = Hamiltonian multicast class. To keep the VC budget
            // small we give torus links 3 VCs (0/1 for XY dateline, 2 for
            // multicast) and mesh links 2 VCs (0 XY, 1 multicast).
            let vcs = match kind {
                MeshKind::Mesh => 2,
                MeshKind::Torus => 3,
            };
            channels.push(Channel::link(id, from, to, p, vcs, dateline, label));
            out_link[from.idx() * 4 + p.idx()] = Some(id);
        };
        for y in 0..height {
            for x in 0..width {
                let from = node(x, y);
                // +x
                if x + 1 < width {
                    push_link(
                        &mut channels,
                        from,
                        node(x + 1, y),
                        port::XPLUS,
                        false,
                        format!("x+ ({x},{y})"),
                    );
                } else if kind == MeshKind::Torus {
                    push_link(
                        &mut channels,
                        from,
                        node(0, y),
                        port::XPLUS,
                        true,
                        format!("x+ wrap ({x},{y})"),
                    );
                }
                // -x
                if x > 0 {
                    push_link(
                        &mut channels,
                        from,
                        node(x - 1, y),
                        port::XMINUS,
                        false,
                        format!("x- ({x},{y})"),
                    );
                } else if kind == MeshKind::Torus {
                    push_link(
                        &mut channels,
                        from,
                        node(width - 1, y),
                        port::XMINUS,
                        true,
                        format!("x- wrap ({x},{y})"),
                    );
                }
                // +y
                if y + 1 < height {
                    push_link(
                        &mut channels,
                        from,
                        node(x, y + 1),
                        port::YPLUS,
                        false,
                        format!("y+ ({x},{y})"),
                    );
                } else if kind == MeshKind::Torus {
                    push_link(
                        &mut channels,
                        from,
                        node(x, 0),
                        port::YPLUS,
                        true,
                        format!("y+ wrap ({x},{y})"),
                    );
                }
                // -y
                if y > 0 {
                    push_link(
                        &mut channels,
                        from,
                        node(x, y - 1),
                        port::YMINUS,
                        false,
                        format!("y- ({x},{y})"),
                    );
                } else if kind == MeshKind::Torus {
                    push_link(
                        &mut channels,
                        from,
                        node(x, height - 1),
                        port::YMINUS,
                        true,
                        format!("y- wrap ({x},{y})"),
                    );
                }
            }
        }
        let mut injection = Vec::with_capacity(n * 4);
        for i in 0..n {
            for p in 0..4u8 {
                let id = ChannelId(channels.len() as u32);
                channels.push(Channel::injection(
                    id,
                    NodeId(i as u32),
                    PortId(p),
                    format!("inj {i}.{p}"),
                ));
                injection.push(id);
            }
        }
        let mut ejection = Vec::with_capacity(n * 4);
        for i in 0..n {
            for p in 0..4u8 {
                let id = ChannelId(channels.len() as u32);
                channels.push(Channel::ejection(
                    id,
                    NodeId(i as u32),
                    PortId(p),
                    format!("ej {i}.{p}"),
                ));
                ejection.push(id);
            }
        }
        let net = Network::new(n, 4, channels, injection, ejection);
        Ok(Mesh {
            width,
            height,
            kind,
            net,
            out_link,
        })
    }

    /// Grid width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Mesh or torus.
    #[inline]
    pub fn kind(&self) -> MeshKind {
        self.kind
    }

    /// `(x, y)` coordinates of a node.
    #[inline]
    pub fn coords(&self, n: NodeId) -> (usize, usize) {
        (n.idx() % self.width, n.idx() / self.width)
    }

    /// Node at `(x, y)`.
    #[inline]
    pub fn node(&self, x: usize, y: usize) -> NodeId {
        NodeId((y * self.width + x) as u32)
    }

    fn link(&self, from: NodeId, p: PortId) -> ChannelId {
        self.out_link[from.idx() * 4 + p.idx()]
            .unwrap_or_else(|| panic!("no {p:?} link at {from:?}"))
    }

    /// Per-dimension signed step list for XY routing: returns the ordered
    /// `(port, steps)` legs. On the torus, each leg goes the short way
    /// around (ties broken toward the positive direction).
    fn xy_legs(&self, src: NodeId, dst: NodeId) -> Vec<(PortId, usize)> {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut legs = Vec::with_capacity(2);
        let leg = |s: usize, d: usize, extent: usize, plus: PortId, minus: PortId| {
            if s == d {
                return None;
            }
            match self.kind {
                MeshKind::Mesh => {
                    if d > s {
                        Some((plus, d - s))
                    } else {
                        Some((minus, s - d))
                    }
                }
                MeshKind::Torus => {
                    let fwd = (d + extent - s) % extent;
                    let bwd = extent - fwd;
                    if fwd <= bwd {
                        Some((plus, fwd))
                    } else {
                        Some((minus, bwd))
                    }
                }
            }
        };
        if let Some(l) = leg(sx, dx, self.width, port::XPLUS, port::XMINUS) {
            legs.push(l);
        }
        if let Some(l) = leg(sy, dy, self.height, port::YPLUS, port::YMINUS) {
            legs.push(l);
        }
        legs
    }

    fn step(&self, from: NodeId, p: PortId) -> NodeId {
        self.net.downstream(self.link(from, p))
    }

    /// Boustrophedon Hamiltonian label of a node (row-major, odd rows
    /// reversed), used by the dual-path multicast.
    #[inline]
    pub fn hamiltonian_label(&self, n: NodeId) -> usize {
        let (x, y) = self.coords(n);
        if y.is_multiple_of(2) {
            y * self.width + x
        } else {
            y * self.width + (self.width - 1 - x)
        }
    }

    /// Inverse of [`Mesh::hamiltonian_label`].
    #[inline]
    pub fn node_at_label(&self, h: usize) -> NodeId {
        let y = h / self.width;
        let x = h % self.width;
        if y.is_multiple_of(2) {
            self.node(x, y)
        } else {
            self.node(self.width - 1 - x, y)
        }
    }

    /// The physical port leading from label `h` to label `h+1` (or `h-1`
    /// when `up` is false).
    fn hamiltonian_port(&self, h: usize, up: bool) -> PortId {
        let (from, to) = if up {
            (self.node_at_label(h), self.node_at_label(h + 1))
        } else {
            (self.node_at_label(h), self.node_at_label(h - 1))
        };
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        if ty == fy {
            if tx == fx + 1 {
                port::XPLUS
            } else {
                port::XMINUS
            }
        } else if ty == fy + 1 {
            port::YPLUS
        } else {
            port::YMINUS
        }
    }

    /// The VC index reserved for Hamiltonian multicast streams.
    fn multicast_vc(&self) -> u8 {
        match self.kind {
            MeshKind::Mesh => 1,
            MeshKind::Torus => 2,
        }
    }

    /// Build one dual-path stream from `src` covering targets at the given
    /// Hamiltonian labels (sorted in visit order).
    fn hamiltonian_stream(&self, src: NodeId, labels: &[usize], up: bool) -> MulticastStream {
        debug_assert!(!labels.is_empty());
        let vc = self.multicast_vc();
        let h0 = self.hamiltonian_label(src);
        let last_label = *labels.last().unwrap();
        let first_port = self.hamiltonian_port(h0, up);
        let mut hops = vec![Hop::new(self.net.injection_channel(src, first_port), 0)];
        let mut h = h0;
        let mut at = src;
        let mut arrival_port = first_port;
        while h != last_label {
            let p = self.hamiltonian_port(h, up);
            hops.push(Hop::new(self.link(at, p), vc));
            at = self.step(at, p);
            arrival_port = p;
            h = if up { h + 1 } else { h - 1 };
        }
        let dst = at;
        hops.push(Hop::new(self.net.ejection_channel(dst, arrival_port), 0));
        MulticastStream {
            port: first_port,
            path: Path {
                src,
                dst,
                port: first_port,
                hops,
            },
            targets: labels.iter().map(|&l| self.node_at_label(l)).collect(),
        }
    }
}

impl Topology for Mesh {
    fn name(&self) -> &str {
        match self.kind {
            MeshKind::Mesh => "mesh",
            MeshKind::Torus => "torus",
        }
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn port_for(&self, src: NodeId, dst: NodeId) -> PortId {
        assert_ne!(src, dst);
        self.xy_legs(src, dst)[0].0
    }

    fn unicast_path(&self, src: NodeId, dst: NodeId) -> Path {
        assert_ne!(src, dst, "no route from a node to itself");
        let legs = self.xy_legs(src, dst);
        let first_port = legs[0].0;
        let mut hops = vec![Hop::new(self.net.injection_channel(src, first_port), 0)];
        let mut at = src;
        let mut arrival = first_port;
        for (p, steps) in legs {
            let mut crossed = false;
            for _ in 0..steps {
                let link = self.link(at, p);
                if self.net.channel(link).dateline {
                    crossed = true;
                }
                hops.push(Hop::new(link, u8::from(crossed)));
                at = self.step(at, p);
                arrival = p;
            }
        }
        hops.push(Hop::new(self.net.ejection_channel(at, arrival), 0));
        Path {
            src,
            dst: at,
            port: first_port,
            hops,
        }
    }

    fn quadrant(&self, src: NodeId, p: PortId) -> Vec<NodeId> {
        (0..self.num_nodes() as u32)
            .map(NodeId)
            .filter(|&d| d != src && self.port_for(src, d) == p)
            .collect()
    }

    fn multicast_streams(&self, src: NodeId, targets: &[NodeId]) -> Vec<MulticastStream> {
        let h0 = self.hamiltonian_label(src);
        let mut high: Vec<usize> = Vec::new();
        let mut low: Vec<usize> = Vec::new();
        for &t in targets {
            if t == src {
                continue;
            }
            let h = self.hamiltonian_label(t);
            if h > h0 {
                high.push(h);
            } else {
                low.push(h);
            }
        }
        let mut streams = Vec::new();
        high.sort_unstable();
        high.dedup();
        if !high.is_empty() {
            streams.push(self.hamiltonian_stream(src, &high, true));
        }
        low.sort_unstable();
        low.dedup();
        low.reverse();
        if !low.is_empty() {
            streams.push(self.hamiltonian_stream(src, &low, false));
        }
        streams
    }

    fn diameter(&self) -> usize {
        match self.kind {
            MeshKind::Mesh => (self.width - 1) + (self.height - 1),
            MeshKind::Torus => self.width / 2 + self.height / 2,
        }
    }

    fn linear_label(&self, node: NodeId) -> usize {
        self.hamiltonian_label(node)
    }

    /// Dual-path multicast always uses two streams at most, but they leave
    /// through genuinely independent ports, so it is concurrent.
    fn concurrent_multicast(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn rejects_degenerate_sizes() {
        assert!(Mesh::new(1, 4, MeshKind::Mesh).is_err());
        assert!(Mesh::new(2, 2, MeshKind::Torus).is_err());
        assert!(Mesh::new(2, 2, MeshKind::Mesh).is_ok());
        assert!(Mesh::new(3, 3, MeshKind::Torus).is_ok());
    }

    #[test]
    fn xy_paths_valid_all_pairs_mesh_and_torus() {
        for kind in [MeshKind::Mesh, MeshKind::Torus] {
            let m = Mesh::new(4, 3, kind).unwrap();
            let n = m.num_nodes();
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let p = m.unicast_path(NodeId(s as u32), NodeId(d as u32));
                    m.network().validate_path(&p).unwrap();
                    assert!(p.link_count() <= m.diameter());
                }
            }
        }
    }

    #[test]
    fn mesh_path_length_is_manhattan() {
        let m = Mesh::new(5, 4, MeshKind::Mesh).unwrap();
        for s in 0..20u32 {
            for d in 0..20u32 {
                if s == d {
                    continue;
                }
                let (sx, sy) = m.coords(NodeId(s));
                let (dx, dy) = m.coords(NodeId(d));
                let p = m.unicast_path(NodeId(s), NodeId(d));
                assert_eq!(p.link_count(), sx.abs_diff(dx) + sy.abs_diff(dy));
            }
        }
    }

    #[test]
    fn torus_wraps_short_way() {
        let t = Mesh::new(5, 5, MeshKind::Torus).unwrap();
        // (0,0) -> (4,0): short way is one -x wrap hop.
        let p = t.unicast_path(t.node(0, 0), t.node(4, 0));
        assert_eq!(p.link_count(), 1);
        assert_eq!(p.port, port::XMINUS);
        // Wrap hop switches to vc1 (dateline).
        assert_eq!(p.hops[1].vc.0, 1);
    }

    #[test]
    fn quadrants_partition_mesh() {
        let m = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
        for s in 0..16u32 {
            let s = NodeId(s);
            let mut seen = BTreeSet::new();
            for p in port::ALL {
                for t in m.quadrant(s, p) {
                    assert!(seen.insert(t));
                }
            }
            assert_eq!(seen.len(), 15);
        }
    }

    #[test]
    fn hamiltonian_labels_are_a_bijection_between_adjacent_nodes() {
        let m = Mesh::new(4, 3, MeshKind::Mesh).unwrap();
        let mut seen = BTreeSet::new();
        for i in 0..12u32 {
            seen.insert(m.hamiltonian_label(NodeId(i)));
            assert_eq!(m.node_at_label(m.hamiltonian_label(NodeId(i))), NodeId(i));
        }
        assert_eq!(seen.len(), 12);
        // Consecutive labels are physically adjacent.
        for h in 0..11usize {
            let a = m.coords(m.node_at_label(h));
            let b = m.coords(m.node_at_label(h + 1));
            assert_eq!(a.0.abs_diff(b.0) + a.1.abs_diff(b.1), 1, "h={h}");
        }
    }

    #[test]
    fn dual_path_multicast_covers_targets() {
        let m = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
        let src = m.node(1, 1);
        let targets = [m.node(3, 0), m.node(0, 2), m.node(3, 3), m.node(0, 0)];
        let streams = m.multicast_streams(src, &targets);
        assert!(streams.len() <= 2);
        let covered: BTreeSet<_> = streams.iter().flat_map(|s| s.targets.clone()).collect();
        assert_eq!(covered, targets.iter().copied().collect());
        for st in &streams {
            m.network().validate_path(&st.path).unwrap();
            assert_eq!(st.path.dst, *st.targets.last().unwrap());
            // Multicast hops ride the reserved VC.
            for hop in &st.path.hops[1..st.path.hops.len() - 1] {
                assert_eq!(hop.vc.0, 1);
            }
        }
    }

    #[test]
    fn dual_path_broadcast_covers_everything() {
        for kind in [MeshKind::Mesh, MeshKind::Torus] {
            let m = Mesh::new(4, 4, kind).unwrap();
            let streams = m.broadcast_streams(m.node(2, 1));
            let covered: BTreeSet<_> = streams.iter().flat_map(|s| s.targets.clone()).collect();
            assert_eq!(covered.len(), 15);
            assert_eq!(streams.len(), 2);
        }
    }
}
