//! The channel graph ([`Network`]) and the [`Topology`] trait.

use crate::channel::{Channel, ChannelKind};
use crate::ids::{ChannelId, NodeId, PortId};
use crate::path::{MulticastStream, Path};
use std::fmt;

/// Errors raised by topology constructors and the spec registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// The requested node count is not supported by the topology
    /// (e.g. the Quarc requires `N % 4 == 0`, `N >= 8`).
    UnsupportedSize {
        /// The offending node count.
        n: usize,
        /// Human-readable constraint description.
        requirement: &'static str,
    },
    /// A spec named a topology the registry does not know.
    UnknownTopology {
        /// The unrecognized name.
        name: String,
    },
    /// A spec string or size argument was malformed.
    InvalidSpec {
        /// The offending spec string.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnsupportedSize { n, requirement } => {
                write!(f, "unsupported network size {n}: {requirement}")
            }
            TopologyError::UnknownTopology { name } => {
                write!(
                    f,
                    "unknown topology `{name}` (known: {})",
                    crate::spec::KNOWN_TOPOLOGIES.join(", ")
                )
            }
            TopologyError::InvalidSpec { spec, reason } => {
                write!(f, "invalid topology spec `{spec}`: {reason}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The directed channel graph of a NoC.
///
/// Channels are stored in a dense table indexed by [`ChannelId`]. Per-node
/// injection/ejection channels are retrievable by `(node, port)`.
#[derive(Clone, Debug)]
pub struct Network {
    num_nodes: usize,
    ports_per_node: usize,
    channels: Vec<Channel>,
    /// `injection[node * ports + port]`
    injection: Vec<ChannelId>,
    /// `ejection[node * ports + port]`
    ejection: Vec<ChannelId>,
}

impl Network {
    /// Build a network from its parts. Intended for topology constructors.
    ///
    /// # Panics
    ///
    /// Panics if the channel table ids are not dense and in order, or if the
    /// injection/ejection tables have the wrong shape — these are internal
    /// construction invariants of the topology builders.
    pub fn new(
        num_nodes: usize,
        ports_per_node: usize,
        channels: Vec<Channel>,
        injection: Vec<ChannelId>,
        ejection: Vec<ChannelId>,
    ) -> Self {
        assert_eq!(injection.len(), num_nodes * ports_per_node);
        assert_eq!(ejection.len(), num_nodes * ports_per_node);
        for (i, ch) in channels.iter().enumerate() {
            assert_eq!(ch.id.idx(), i, "channel table must be dense and ordered");
        }
        Network {
            num_nodes,
            ports_per_node,
            channels,
            injection,
            ejection,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Injection ports per node.
    #[inline]
    pub fn ports_per_node(&self) -> usize {
        self.ports_per_node
    }

    /// The full channel table.
    #[inline]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Total channel count.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Look up one channel.
    #[inline]
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.idx()]
    }

    /// The injection channel of `(node, port)`.
    #[inline]
    pub fn injection_channel(&self, node: NodeId, port: PortId) -> ChannelId {
        self.injection[node.idx() * self.ports_per_node + port.idx()]
    }

    /// The ejection channel of `(node, input port/direction)`.
    #[inline]
    pub fn ejection_channel(&self, node: NodeId, port: PortId) -> ChannelId {
        self.ejection[node.idx() * self.ports_per_node + port.idx()]
    }

    /// Iterate over all link channels.
    pub fn links(&self) -> impl Iterator<Item = &Channel> {
        self.channels.iter().filter(|c| c.kind == ChannelKind::Link)
    }

    /// The downstream node of a channel (`to` endpoint).
    #[inline]
    pub fn downstream(&self, id: ChannelId) -> NodeId {
        self.channels[id.idx()].to
    }

    /// Validate a path against this network: hops must be chained
    /// (each link's `to` equals the next link's `from`), start with the
    /// injection channel of `(src, port)` and end with an ejection channel
    /// at `dst`. Used by tests and debug assertions.
    pub fn validate_path(&self, path: &Path) -> Result<(), String> {
        if path.hops.len() < 2 {
            return Err("path must contain at least injection + ejection".into());
        }
        let first = self.channel(path.hops[0].channel);
        if first.kind != ChannelKind::Injection || first.from != path.src {
            return Err(format!(
                "path must start with an injection channel at {:?}, got {:?}",
                path.src, first
            ));
        }
        if self.injection_channel(path.src, path.port) != first.id {
            return Err(format!(
                "path claims port {:?} but starts at {:?}",
                path.port, first
            ));
        }
        let last = self.channel(path.hops[path.hops.len() - 1].channel);
        if last.kind != ChannelKind::Ejection || last.to != path.dst {
            return Err(format!(
                "path must end with an ejection channel at {:?}, got {:?}",
                path.dst, last
            ));
        }
        let mut at = path.src;
        for hop in &path.hops[1..path.hops.len() - 1] {
            let ch = self.channel(hop.channel);
            if ch.kind != ChannelKind::Link {
                return Err(format!("interior hop {:?} is not a link", ch));
            }
            if ch.from != at {
                return Err(format!(
                    "link {:?} departs {:?} but the message is at {:?}",
                    ch, ch.from, at
                ));
            }
            if hop.vc.idx() >= ch.vcs as usize {
                return Err(format!(
                    "hop uses vc {:?} but channel {:?} has only {} vcs",
                    hop.vc, ch.id, ch.vcs
                ));
            }
            at = ch.to;
        }
        if at != path.dst {
            return Err(format!(
                "links end at {:?} but path.dst is {:?}",
                at, path.dst
            ));
        }
        Ok(())
    }
}

/// A concrete topology: a channel graph plus deterministic routing, the
/// port partition of destinations (Eq. 1–2 of the paper) and path-based
/// multicast stream construction.
pub trait Topology: Send + Sync {
    /// Short human-readable name (`"quarc"`, `"spidergon"`, ...).
    fn name(&self) -> &str;

    /// The channel graph.
    fn network(&self) -> &Network;

    /// Number of nodes.
    fn num_nodes(&self) -> usize {
        self.network().num_nodes()
    }

    /// Injection ports per node (`m` in the paper; 1 for one-port
    /// architectures).
    fn num_ports(&self) -> usize {
        self.network().ports_per_node()
    }

    /// The injection port used to reach `dst` from `src` under the
    /// deterministic base routing.
    ///
    /// # Panics
    ///
    /// May panic if `src == dst`.
    fn port_for(&self, src: NodeId, dst: NodeId) -> PortId;

    /// Deterministic unicast route from `src` to `dst` (injection + links +
    /// ejection), with virtual channels resolved.
    ///
    /// # Panics
    ///
    /// May panic if `src == dst`.
    fn unicast_path(&self, src: NodeId, dst: NodeId) -> Path;

    /// The subset `S_{j,c}` of nodes served by injection port `port` of
    /// `src` (Eq. 1). The subsets over all ports partition the other
    /// `N - 1` nodes (Eq. 2).
    fn quadrant(&self, src: NodeId, port: PortId) -> Vec<NodeId>;

    /// Decompose a multicast from `src` to `targets` into independent
    /// path-based streams, one per injection port with at least one target
    /// (BRCP routing: each stream follows the base unicast route to the
    /// last target of its port subset, absorbing-and-forwarding at
    /// intermediate targets).
    ///
    /// `targets` must not contain `src`; duplicates are ignored.
    fn multicast_streams(&self, src: NodeId, targets: &[NodeId]) -> Vec<MulticastStream>;

    /// Broadcast = multicast to all other nodes.
    fn broadcast_streams(&self, src: NodeId) -> Vec<MulticastStream> {
        let all: Vec<NodeId> = (0..self.num_nodes() as u32)
            .map(NodeId)
            .filter(|&n| n != src)
            .collect();
        self.multicast_streams(src, &all)
    }

    /// Network diameter in links (longest shortest path).
    fn diameter(&self) -> usize;

    /// Position of `node` on the topology's deterministic Hamiltonian
    /// ("linear") node order, a bijection `NodeId → 0..N` used by the
    /// order-based multicast schemes (`RoutingSpec::DualPath` splits the
    /// destinations at the source's label and walks the order). Nodes
    /// with consecutive labels must be physically adjacent, and the wrap
    /// pair `(N-1, 0)` must not be required — the order walk never wraps,
    /// which is what keeps the top-VC channel dependency graph acyclic.
    /// The default — the node index — is such an order for ring-like
    /// topologies; grid/cube topologies override it with their
    /// boustrophedon/Gray-code orders.
    fn linear_label(&self, node: NodeId) -> usize {
        node.idx()
    }

    /// Whether multicast streams of distinct ports are genuinely
    /// concurrent (multi-port, asynchronous) — true for Quarc/ring/mesh,
    /// false for the one-port Spidergon baseline, whose "multicast" is a
    /// train of consecutive unicasts through the single port.
    fn concurrent_multicast(&self) -> bool {
        self.num_ports() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::ids::VcId;
    use crate::path::Hop;

    /// Tiny 2-node hand-built network: n0 --link--> n1.
    fn two_node_net() -> Network {
        let channels = vec![
            Channel::injection(ChannelId(0), NodeId(0), PortId(0), "inj0"),
            Channel::injection(ChannelId(1), NodeId(1), PortId(0), "inj1"),
            Channel::link(
                ChannelId(2),
                NodeId(0),
                NodeId(1),
                PortId(0),
                1,
                false,
                "l01",
            ),
            Channel::link(
                ChannelId(3),
                NodeId(1),
                NodeId(0),
                PortId(0),
                1,
                false,
                "l10",
            ),
            Channel::ejection(ChannelId(4), NodeId(0), PortId(0), "ej0"),
            Channel::ejection(ChannelId(5), NodeId(1), PortId(0), "ej1"),
        ];
        Network::new(
            2,
            1,
            channels,
            vec![ChannelId(0), ChannelId(1)],
            vec![ChannelId(4), ChannelId(5)],
        )
    }

    #[test]
    fn lookup_tables_work() {
        let net = two_node_net();
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.ports_per_node(), 1);
        assert_eq!(net.num_channels(), 6);
        assert_eq!(net.injection_channel(NodeId(0), PortId(0)), ChannelId(0));
        assert_eq!(net.ejection_channel(NodeId(1), PortId(0)), ChannelId(5));
        assert_eq!(net.links().count(), 2);
        assert_eq!(net.downstream(ChannelId(2)), NodeId(1));
    }

    #[test]
    fn validate_path_accepts_wellformed() {
        let net = two_node_net();
        let p = Path {
            src: NodeId(0),
            dst: NodeId(1),
            port: PortId(0),
            hops: vec![
                Hop {
                    channel: ChannelId(0),
                    vc: VcId(0),
                },
                Hop {
                    channel: ChannelId(2),
                    vc: VcId(0),
                },
                Hop {
                    channel: ChannelId(5),
                    vc: VcId(0),
                },
            ],
        };
        assert_eq!(net.validate_path(&p), Ok(()));
    }

    #[test]
    fn validate_path_rejects_broken_chain() {
        let net = two_node_net();
        let p = Path {
            src: NodeId(0),
            dst: NodeId(1),
            port: PortId(0),
            hops: vec![
                Hop {
                    channel: ChannelId(0),
                    vc: VcId(0),
                },
                Hop {
                    channel: ChannelId(3),
                    vc: VcId(0),
                }, // wrong direction
                Hop {
                    channel: ChannelId(5),
                    vc: VcId(0),
                },
            ],
        };
        assert!(net.validate_path(&p).is_err());
    }

    #[test]
    fn validate_path_rejects_bad_vc() {
        let net = two_node_net();
        let p = Path {
            src: NodeId(0),
            dst: NodeId(1),
            port: PortId(0),
            hops: vec![
                Hop {
                    channel: ChannelId(0),
                    vc: VcId(0),
                },
                Hop {
                    channel: ChannelId(2),
                    vc: VcId(1),
                }, // channel has 1 vc
                Hop {
                    channel: ChannelId(5),
                    vc: VcId(0),
                },
            ],
        };
        assert!(net.validate_path(&p).is_err());
    }

    #[test]
    fn validate_path_rejects_wrong_endpoints() {
        let net = two_node_net();
        let p = Path {
            src: NodeId(0),
            dst: NodeId(0),
            port: PortId(0),
            hops: vec![
                Hop {
                    channel: ChannelId(0),
                    vc: VcId(0),
                },
                Hop {
                    channel: ChannelId(2),
                    vc: VcId(0),
                },
                Hop {
                    channel: ChannelId(5),
                    vc: VcId(0),
                }, // ejection at n1, dst says n0
            ],
        };
        assert!(net.validate_path(&p).is_err());
    }
}
