//! The channel graph ([`Network`]) and the [`Topology`] trait.
//!
//! ## Dense vs. implicit storage
//!
//! The six legacy topologies materialize their channel tables into a
//! `Vec<Channel>` at construction time — cheap at a few hundred nodes and
//! the representation every consumer grew up with. The scale-axis families
//! ([`crate::min::Min`], [`crate::clustered::Clustered`]) instead install a
//! [`ChannelFactory`] that computes any channel *on demand* in O(1), so a
//! 64k-node network costs a few machine words instead of hundreds of
//! megabytes. [`Network`] keeps both behind one enum: the dense accessors
//! ([`Network::channels`], [`Network::channel`], [`Network::links`]) stay
//! bit-for-bit identical for materialized networks and panic on implicit
//! ones (every call site that needs a full table is gated on
//! [`Network::is_implicit`] or on a spec-level rejection), while the
//! storage-agnostic accessors ([`Network::channel_at`], [`Network::vcs_of`],
//! [`Network::downstream`]) work on either representation.

use crate::channel::{Channel, ChannelKind};
use crate::ids::{ChannelId, NodeId, PortId, VcId};
use crate::path::{MulticastStream, Path};
use std::fmt;
use std::sync::Arc;

/// Errors raised by topology constructors and the spec registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// The requested node count is not supported by the topology
    /// (e.g. the Quarc requires `N % 4 == 0`, `N >= 8`).
    UnsupportedSize {
        /// The offending node count.
        n: usize,
        /// Human-readable constraint description.
        requirement: &'static str,
    },
    /// A spec named a topology the registry does not know.
    UnknownTopology {
        /// The unrecognized name.
        name: String,
    },
    /// A spec string or size argument was malformed.
    InvalidSpec {
        /// The offending spec string.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnsupportedSize { n, requirement } => {
                write!(f, "unsupported network size {n}: {requirement}")
            }
            TopologyError::UnknownTopology { name } => {
                write!(
                    f,
                    "unknown topology `{name}` (known: {})",
                    crate::spec::KNOWN_TOPOLOGIES.join(", ")
                )
            }
            TopologyError::InvalidSpec { spec, reason } => {
                write!(f, "invalid topology spec `{spec}`: {reason}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A structural defect found by [`Network::validate_path`], one variant per
/// check. Paths are produced by deterministic topology code, so any of
/// these indicates a construction bug — the typed variants let regression
/// tests pin *which* invariant broke instead of grepping a message string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// The path has fewer than the mandatory two hops
    /// (injection + ejection).
    TooShort {
        /// Hop count found.
        hops: usize,
    },
    /// The first hop is not an injection channel departing the path's
    /// source.
    BadInjection {
        /// The path's claimed source.
        src: NodeId,
        /// The channel the first hop actually uses.
        channel: ChannelId,
    },
    /// The first hop is an injection channel at the source, but not the one
    /// belonging to the path's claimed port.
    PortMismatch {
        /// The path's claimed injection port.
        port: PortId,
        /// The injection channel the path actually starts with.
        channel: ChannelId,
    },
    /// The last hop is not an ejection channel arriving at the path's
    /// destination.
    BadEjection {
        /// The path's claimed destination.
        dst: NodeId,
        /// The channel the last hop actually uses.
        channel: ChannelId,
    },
    /// An interior hop uses an injection/ejection channel where a link is
    /// required.
    InteriorNotLink {
        /// The offending channel.
        channel: ChannelId,
    },
    /// A link hop departs from a node other than where the previous hop
    /// left the message.
    BrokenChain {
        /// The offending link.
        channel: ChannelId,
        /// The node the link departs from.
        departs: NodeId,
        /// The node the message is actually at.
        at: NodeId,
    },
    /// A hop selects a virtual channel the physical channel does not have.
    VcOutOfRange {
        /// The offending channel.
        channel: ChannelId,
        /// The selected virtual channel.
        vc: VcId,
        /// How many virtual channels the channel multiplexes.
        vcs: u8,
    },
    /// The link hops terminate at a node other than the path's claimed
    /// destination.
    WrongTerminus {
        /// Where the links actually end.
        at: NodeId,
        /// The path's claimed destination.
        dst: NodeId,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::TooShort { hops } => write!(
                f,
                "path must contain at least injection + ejection, got {hops} hop(s)"
            ),
            PathError::BadInjection { src, channel } => write!(
                f,
                "path must start with an injection channel at {src:?}, got {channel:?}"
            ),
            PathError::PortMismatch { port, channel } => {
                write!(f, "path claims port {port:?} but starts at {channel:?}")
            }
            PathError::BadEjection { dst, channel } => write!(
                f,
                "path must end with an ejection channel at {dst:?}, got {channel:?}"
            ),
            PathError::InteriorNotLink { channel } => {
                write!(f, "interior hop {channel:?} is not a link")
            }
            PathError::BrokenChain {
                channel,
                departs,
                at,
            } => write!(
                f,
                "link {channel:?} departs {departs:?} but the message is at {at:?}"
            ),
            PathError::VcOutOfRange { channel, vc, vcs } => write!(
                f,
                "hop uses vc {vc:?} but channel {channel:?} has only {vcs} vcs"
            ),
            PathError::WrongTerminus { at, dst } => {
                write!(f, "links end at {at:?} but path.dst is {dst:?}")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// On-demand channel computation for implicit topologies.
///
/// A factory is the O(1) analogue of the dense channel table: it maps any
/// [`ChannelId`] in `0..num_channels()` to the [`Channel`] a materialized
/// build would have stored at that index — *bit-for-bit*, labels included,
/// which is what the differential oracle suite checks. Implementations must
/// be pure functions of the topology's parameters.
pub trait ChannelFactory: Send + Sync + fmt::Debug {
    /// Total channel count (dense id space `0..num_channels()`).
    fn num_channels(&self) -> usize;

    /// Compute the channel stored at `id` in the materialized table.
    fn channel(&self, id: ChannelId) -> Channel;

    /// Virtual-channel count of `id`. Override to avoid the label
    /// allocation of [`ChannelFactory::channel`] on hot paths.
    fn vcs(&self, id: ChannelId) -> u8 {
        self.channel(id).vcs
    }

    /// Downstream (`to`) node of `id`. Override to avoid the label
    /// allocation of [`ChannelFactory::channel`] on hot paths.
    fn downstream(&self, id: ChannelId) -> NodeId {
        self.channel(id).to
    }

    /// The injection channel of `(node, port)`.
    fn injection_channel(&self, node: NodeId, port: PortId) -> ChannelId;

    /// The ejection channel of `(node, input port/direction)`.
    fn ejection_channel(&self, node: NodeId, port: PortId) -> ChannelId;
}

/// How a [`Network`] stores its channel graph.
#[derive(Clone, Debug)]
enum Storage {
    /// Materialized tables — the representation of the six legacy
    /// topologies, bit-for-bit unchanged.
    Dense {
        channels: Vec<Channel>,
        /// `injection[node * ports + port]`
        injection: Vec<ChannelId>,
        /// `ejection[node * ports + port]`
        ejection: Vec<ChannelId>,
    },
    /// Computed on demand by a [`ChannelFactory`].
    Implicit {
        factory: Arc<dyn ChannelFactory>,
        num_channels: usize,
    },
}

/// The directed channel graph of a NoC.
///
/// Channels live in a dense [`ChannelId`] index space. Materialized
/// networks store the table; implicit networks compute entries on demand
/// (see the module docs for the storage split). Per-node injection/ejection
/// channels are retrievable by `(node, port)` on either representation.
#[derive(Clone, Debug)]
pub struct Network {
    num_nodes: usize,
    ports_per_node: usize,
    storage: Storage,
}

impl Network {
    /// Build a materialized network from its parts. Intended for topology
    /// constructors.
    ///
    /// # Panics
    ///
    /// Panics if the channel table ids are not dense and in order, or if the
    /// injection/ejection tables have the wrong shape — these are internal
    /// construction invariants of the topology builders.
    pub fn new(
        num_nodes: usize,
        ports_per_node: usize,
        channels: Vec<Channel>,
        injection: Vec<ChannelId>,
        ejection: Vec<ChannelId>,
    ) -> Self {
        assert_eq!(injection.len(), num_nodes * ports_per_node);
        assert_eq!(ejection.len(), num_nodes * ports_per_node);
        for (i, ch) in channels.iter().enumerate() {
            assert_eq!(ch.id.idx(), i, "channel table must be dense and ordered");
        }
        Network {
            num_nodes,
            ports_per_node,
            storage: Storage::Dense {
                channels,
                injection,
                ejection,
            },
        }
    }

    /// Build an implicit network whose channels are computed on demand by
    /// `factory`. Intended for the scale-axis topology constructors.
    pub fn implicit(
        num_nodes: usize,
        ports_per_node: usize,
        factory: Arc<dyn ChannelFactory>,
    ) -> Self {
        let num_channels = factory.num_channels();
        Network {
            num_nodes,
            ports_per_node,
            storage: Storage::Implicit {
                factory,
                num_channels,
            },
        }
    }

    /// `true` if channels are computed on demand instead of stored.
    #[inline]
    pub fn is_implicit(&self) -> bool {
        matches!(self.storage, Storage::Implicit { .. })
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Injection ports per node.
    #[inline]
    pub fn ports_per_node(&self) -> usize {
        self.ports_per_node
    }

    /// The full channel table of a materialized network.
    ///
    /// # Panics
    ///
    /// Panics on an implicit network — there is no table to borrow. Callers
    /// that must walk every channel either gate on
    /// [`Network::is_implicit`] or iterate ids against
    /// [`Network::channel_at`].
    #[inline]
    pub fn channels(&self) -> &[Channel] {
        match &self.storage {
            Storage::Dense { channels, .. } => channels,
            Storage::Implicit { .. } => {
                panic!("Network::channels() requires materialized storage (implicit topology)")
            }
        }
    }

    /// Total channel count.
    #[inline]
    pub fn num_channels(&self) -> usize {
        match &self.storage {
            Storage::Dense { channels, .. } => channels.len(),
            Storage::Implicit { num_channels, .. } => *num_channels,
        }
    }

    /// Borrow one channel of a materialized network.
    ///
    /// # Panics
    ///
    /// Panics on an implicit network; use [`Network::channel_at`] for a
    /// storage-agnostic (by-value) lookup.
    #[inline]
    pub fn channel(&self, id: ChannelId) -> &Channel {
        match &self.storage {
            Storage::Dense { channels, .. } => &channels[id.idx()],
            Storage::Implicit { .. } => {
                panic!("Network::channel() requires materialized storage (implicit topology)")
            }
        }
    }

    /// Look up one channel by value, on either storage: a clone of the
    /// table entry for materialized networks, a fresh computation for
    /// implicit ones.
    #[inline]
    pub fn channel_at(&self, id: ChannelId) -> Channel {
        match &self.storage {
            Storage::Dense { channels, .. } => channels[id.idx()].clone(),
            Storage::Implicit { factory, .. } => factory.channel(id),
        }
    }

    /// Virtual-channel count of `id`, on either storage (no allocation).
    #[inline]
    pub fn vcs_of(&self, id: ChannelId) -> u8 {
        match &self.storage {
            Storage::Dense { channels, .. } => channels[id.idx()].vcs,
            Storage::Implicit { factory, .. } => factory.vcs(id),
        }
    }

    /// The injection channel of `(node, port)`.
    #[inline]
    pub fn injection_channel(&self, node: NodeId, port: PortId) -> ChannelId {
        match &self.storage {
            Storage::Dense { injection, .. } => {
                injection[node.idx() * self.ports_per_node + port.idx()]
            }
            Storage::Implicit { factory, .. } => factory.injection_channel(node, port),
        }
    }

    /// The ejection channel of `(node, input port/direction)`.
    #[inline]
    pub fn ejection_channel(&self, node: NodeId, port: PortId) -> ChannelId {
        match &self.storage {
            Storage::Dense { ejection, .. } => {
                ejection[node.idx() * self.ports_per_node + port.idx()]
            }
            Storage::Implicit { factory, .. } => factory.ejection_channel(node, port),
        }
    }

    /// Iterate over all link channels of a materialized network.
    ///
    /// # Panics
    ///
    /// Panics on an implicit network (see [`Network::channels`]).
    pub fn links(&self) -> impl Iterator<Item = &Channel> {
        self.channels()
            .iter()
            .filter(|c| c.kind == ChannelKind::Link)
    }

    /// The downstream node of a channel (`to` endpoint), on either storage.
    #[inline]
    pub fn downstream(&self, id: ChannelId) -> NodeId {
        match &self.storage {
            Storage::Dense { channels, .. } => channels[id.idx()].to,
            Storage::Implicit { factory, .. } => factory.downstream(id),
        }
    }

    /// Force-materialize into dense storage: the oracle build the
    /// differential suite compares the implicit path against. For an
    /// already-dense network this is a plain clone.
    pub fn materialize(&self) -> Network {
        match &self.storage {
            Storage::Dense { .. } => self.clone(),
            Storage::Implicit { factory, .. } => {
                let channels: Vec<Channel> = (0..factory.num_channels() as u32)
                    .map(|id| factory.channel(ChannelId(id)))
                    .collect();
                let mut injection = Vec::with_capacity(self.num_nodes * self.ports_per_node);
                let mut ejection = Vec::with_capacity(self.num_nodes * self.ports_per_node);
                for node in 0..self.num_nodes as u32 {
                    for port in 0..self.ports_per_node as u8 {
                        injection.push(factory.injection_channel(NodeId(node), PortId(port)));
                        ejection.push(factory.ejection_channel(NodeId(node), PortId(port)));
                    }
                }
                Network::new(
                    self.num_nodes,
                    self.ports_per_node,
                    channels,
                    injection,
                    ejection,
                )
            }
        }
    }

    /// Validate a path against this network: hops must be chained
    /// (each link's `to` equals the next link's `from`), start with the
    /// injection channel of `(src, port)` and end with an ejection channel
    /// at `dst`. Used by tests and debug assertions; works on either
    /// storage.
    pub fn validate_path(&self, path: &Path) -> Result<(), PathError> {
        if path.hops.len() < 2 {
            return Err(PathError::TooShort {
                hops: path.hops.len(),
            });
        }
        let first = self.channel_at(path.hops[0].channel);
        if first.kind != ChannelKind::Injection || first.from != path.src {
            return Err(PathError::BadInjection {
                src: path.src,
                channel: first.id,
            });
        }
        if self.injection_channel(path.src, path.port) != first.id {
            return Err(PathError::PortMismatch {
                port: path.port,
                channel: first.id,
            });
        }
        let last = self.channel_at(path.hops[path.hops.len() - 1].channel);
        if last.kind != ChannelKind::Ejection || last.to != path.dst {
            return Err(PathError::BadEjection {
                dst: path.dst,
                channel: last.id,
            });
        }
        let mut at = path.src;
        for hop in &path.hops[1..path.hops.len() - 1] {
            let ch = self.channel_at(hop.channel);
            if ch.kind != ChannelKind::Link {
                return Err(PathError::InteriorNotLink { channel: ch.id });
            }
            if ch.from != at {
                return Err(PathError::BrokenChain {
                    channel: ch.id,
                    departs: ch.from,
                    at,
                });
            }
            if hop.vc.idx() >= ch.vcs as usize {
                return Err(PathError::VcOutOfRange {
                    channel: ch.id,
                    vc: hop.vc,
                    vcs: ch.vcs,
                });
            }
            at = ch.to;
        }
        if at != path.dst {
            return Err(PathError::WrongTerminus { at, dst: path.dst });
        }
        Ok(())
    }
}

/// A concrete topology: a channel graph plus deterministic routing, the
/// port partition of destinations (Eq. 1–2 of the paper) and path-based
/// multicast stream construction.
pub trait Topology: Send + Sync {
    /// Short human-readable name (`"quarc"`, `"spidergon"`, ...).
    fn name(&self) -> &str;

    /// The channel graph.
    fn network(&self) -> &Network;

    /// Number of nodes.
    fn num_nodes(&self) -> usize {
        self.network().num_nodes()
    }

    /// Injection ports per node (`m` in the paper; 1 for one-port
    /// architectures).
    fn num_ports(&self) -> usize {
        self.network().ports_per_node()
    }

    /// The injection port used to reach `dst` from `src` under the
    /// deterministic base routing.
    ///
    /// # Panics
    ///
    /// May panic if `src == dst`.
    fn port_for(&self, src: NodeId, dst: NodeId) -> PortId;

    /// Deterministic unicast route from `src` to `dst` (injection + links +
    /// ejection), with virtual channels resolved.
    ///
    /// # Panics
    ///
    /// May panic if `src == dst`.
    fn unicast_path(&self, src: NodeId, dst: NodeId) -> Path;

    /// The subset `S_{j,c}` of nodes served by injection port `port` of
    /// `src` (Eq. 1). The subsets over all ports partition the other
    /// `N - 1` nodes (Eq. 2).
    fn quadrant(&self, src: NodeId, port: PortId) -> Vec<NodeId>;

    /// Decompose a multicast from `src` to `targets` into independent
    /// path-based streams, one per injection port with at least one target
    /// (BRCP routing: each stream follows the base unicast route to the
    /// last target of its port subset, absorbing-and-forwarding at
    /// intermediate targets).
    ///
    /// `targets` must not contain `src`; duplicates are ignored.
    fn multicast_streams(&self, src: NodeId, targets: &[NodeId]) -> Vec<MulticastStream>;

    /// Broadcast = multicast to all other nodes.
    fn broadcast_streams(&self, src: NodeId) -> Vec<MulticastStream> {
        let all: Vec<NodeId> = (0..self.num_nodes() as u32)
            .map(NodeId)
            .filter(|&n| n != src)
            .collect();
        self.multicast_streams(src, &all)
    }

    /// Network diameter in links (longest shortest path).
    fn diameter(&self) -> usize;

    /// Position of `node` on the topology's deterministic Hamiltonian
    /// ("linear") node order, a bijection `NodeId → 0..N` used by the
    /// order-based multicast schemes (`RoutingSpec::DualPath` splits the
    /// destinations at the source's label and walks the order). Nodes
    /// with consecutive labels must be physically adjacent, and the wrap
    /// pair `(N-1, 0)` must not be required — the order walk never wraps,
    /// which is what keeps the top-VC channel dependency graph acyclic.
    /// The default — the node index — is such an order for ring-like
    /// topologies; grid/cube topologies override it with their
    /// boustrophedon/Gray-code orders.
    fn linear_label(&self, node: NodeId) -> usize {
        node.idx()
    }

    /// Whether [`Topology::linear_label`] is a *usable* Hamiltonian order:
    /// consecutive labels physically adjacent, no wrap required. True for
    /// the six flat legacy topologies; false for multistage/hierarchical
    /// families, whose node order has no Hamiltonian adjacency — the
    /// order-walking multicast schemes reject such topologies at
    /// validation time instead of panicking mid-walk.
    fn has_linear_order(&self) -> bool {
        true
    }

    /// A shareable handle to this topology, if it supports cheap cloning
    /// into an `Arc` (the scale-axis families do; they return `Some`).
    /// The lazy `SimPlan` uses this to compute streams on demand without
    /// borrowing the topology for the simulation's lifetime. `None` (the
    /// default) means plans must materialize their tables eagerly.
    fn share(&self) -> Option<Arc<dyn Topology>> {
        None
    }

    /// Whether multicast streams of distinct ports are genuinely
    /// concurrent (multi-port, asynchronous) — true for Quarc/ring/mesh,
    /// false for the one-port Spidergon baseline, whose "multicast" is a
    /// train of consecutive unicasts through the single port.
    fn concurrent_multicast(&self) -> bool {
        self.num_ports() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::ids::VcId;
    use crate::path::Hop;

    /// Tiny 2-node hand-built network: n0 --link--> n1.
    fn two_node_net() -> Network {
        let channels = vec![
            Channel::injection(ChannelId(0), NodeId(0), PortId(0), "inj0"),
            Channel::injection(ChannelId(1), NodeId(1), PortId(0), "inj1"),
            Channel::link(
                ChannelId(2),
                NodeId(0),
                NodeId(1),
                PortId(0),
                1,
                false,
                "l01",
            ),
            Channel::link(
                ChannelId(3),
                NodeId(1),
                NodeId(0),
                PortId(0),
                1,
                false,
                "l10",
            ),
            Channel::ejection(ChannelId(4), NodeId(0), PortId(0), "ej0"),
            Channel::ejection(ChannelId(5), NodeId(1), PortId(0), "ej1"),
        ];
        Network::new(
            2,
            1,
            channels,
            vec![ChannelId(0), ChannelId(1)],
            vec![ChannelId(4), ChannelId(5)],
        )
    }

    /// The same 2-node network expressed as a factory, for storage tests.
    #[derive(Debug)]
    struct TwoNodeFactory;

    impl ChannelFactory for TwoNodeFactory {
        fn num_channels(&self) -> usize {
            6
        }

        fn channel(&self, id: ChannelId) -> Channel {
            two_node_net().channel(id).clone()
        }

        fn injection_channel(&self, node: NodeId, _port: PortId) -> ChannelId {
            ChannelId(node.0)
        }

        fn ejection_channel(&self, node: NodeId, _port: PortId) -> ChannelId {
            ChannelId(4 + node.0)
        }
    }

    fn two_node_implicit() -> Network {
        Network::implicit(2, 1, Arc::new(TwoNodeFactory))
    }

    #[test]
    fn lookup_tables_work() {
        let net = two_node_net();
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.ports_per_node(), 1);
        assert_eq!(net.num_channels(), 6);
        assert_eq!(net.injection_channel(NodeId(0), PortId(0)), ChannelId(0));
        assert_eq!(net.ejection_channel(NodeId(1), PortId(0)), ChannelId(5));
        assert_eq!(net.links().count(), 2);
        assert_eq!(net.downstream(ChannelId(2)), NodeId(1));
        assert!(!net.is_implicit());
    }

    #[test]
    fn implicit_storage_answers_the_storage_agnostic_accessors() {
        let net = two_node_implicit();
        assert!(net.is_implicit());
        assert_eq!(net.num_channels(), 6);
        assert_eq!(
            net.channel_at(ChannelId(2)),
            *two_node_net().channel(ChannelId(2))
        );
        assert_eq!(net.vcs_of(ChannelId(2)), 1);
        assert_eq!(net.downstream(ChannelId(2)), NodeId(1));
        assert_eq!(net.injection_channel(NodeId(1), PortId(0)), ChannelId(1));
        assert_eq!(net.ejection_channel(NodeId(0), PortId(0)), ChannelId(4));
    }

    #[test]
    #[should_panic(expected = "materialized storage")]
    fn dense_table_borrow_panics_on_implicit_storage() {
        let _ = two_node_implicit().channels();
    }

    #[test]
    fn materialize_builds_the_bitwise_oracle() {
        let oracle = two_node_implicit().materialize();
        assert!(!oracle.is_implicit());
        assert_eq!(oracle.channels(), two_node_net().channels());
        for node in [NodeId(0), NodeId(1)] {
            assert_eq!(
                oracle.injection_channel(node, PortId(0)),
                two_node_net().injection_channel(node, PortId(0))
            );
            assert_eq!(
                oracle.ejection_channel(node, PortId(0)),
                two_node_net().ejection_channel(node, PortId(0))
            );
        }
    }

    fn hop(channel: u32, vc: u8) -> Hop {
        Hop {
            channel: ChannelId(channel),
            vc: VcId(vc),
        }
    }

    #[test]
    fn validate_path_accepts_wellformed() {
        let net = two_node_net();
        let p = Path {
            src: NodeId(0),
            dst: NodeId(1),
            port: PortId(0),
            hops: vec![hop(0, 0), hop(2, 0), hop(5, 0)],
        };
        assert_eq!(net.validate_path(&p), Ok(()));
        assert_eq!(two_node_implicit().validate_path(&p), Ok(()));
    }

    #[test]
    fn validate_path_rejects_broken_chain() {
        let net = two_node_net();
        let p = Path {
            src: NodeId(0),
            dst: NodeId(1),
            port: PortId(0),
            // ChannelId(3) runs the wrong direction.
            hops: vec![hop(0, 0), hop(3, 0), hop(5, 0)],
        };
        assert_eq!(
            net.validate_path(&p),
            Err(PathError::BrokenChain {
                channel: ChannelId(3),
                departs: NodeId(1),
                at: NodeId(0),
            })
        );
    }

    #[test]
    fn validate_path_rejects_bad_vc() {
        let net = two_node_net();
        let p = Path {
            src: NodeId(0),
            dst: NodeId(1),
            port: PortId(0),
            // ChannelId(2) has a single vc.
            hops: vec![hop(0, 0), hop(2, 1), hop(5, 0)],
        };
        assert_eq!(
            net.validate_path(&p),
            Err(PathError::VcOutOfRange {
                channel: ChannelId(2),
                vc: VcId(1),
                vcs: 1,
            })
        );
    }

    #[test]
    fn validate_path_rejects_wrong_endpoints() {
        let net = two_node_net();
        let p = Path {
            src: NodeId(0),
            dst: NodeId(0),
            port: PortId(0),
            // Ejection at n1, dst says n0.
            hops: vec![hop(0, 0), hop(2, 0), hop(5, 0)],
        };
        assert_eq!(
            net.validate_path(&p),
            Err(PathError::BadEjection {
                dst: NodeId(0),
                channel: ChannelId(5),
            })
        );
    }

    #[test]
    fn validate_path_rejects_each_remaining_variant() {
        let net = two_node_net();
        // Too short.
        let p = Path {
            src: NodeId(0),
            dst: NodeId(1),
            port: PortId(0),
            hops: vec![hop(0, 0)],
        };
        assert_eq!(net.validate_path(&p), Err(PathError::TooShort { hops: 1 }));
        // First hop is not an injection channel at src.
        let p = Path {
            src: NodeId(0),
            dst: NodeId(1),
            port: PortId(0),
            hops: vec![hop(1, 0), hop(2, 0), hop(5, 0)],
        };
        assert_eq!(
            net.validate_path(&p),
            Err(PathError::BadInjection {
                src: NodeId(0),
                channel: ChannelId(1),
            })
        );
        // Interior hop is not a link.
        let p = Path {
            src: NodeId(0),
            dst: NodeId(1),
            port: PortId(0),
            hops: vec![hop(0, 0), hop(4, 0), hop(5, 0)],
        };
        assert_eq!(
            net.validate_path(&p),
            Err(PathError::InteriorNotLink {
                channel: ChannelId(4),
            })
        );
        // Links never reach dst.
        let p = Path {
            src: NodeId(0),
            dst: NodeId(1),
            port: PortId(0),
            hops: vec![hop(0, 0), hop(2, 0), hop(3, 0), hop(5, 0)],
        };
        assert_eq!(
            net.validate_path(&p),
            Err(PathError::WrongTerminus {
                at: NodeId(0),
                dst: NodeId(1),
            })
        );
        // Every variant displays something useful.
        for err in [
            PathError::TooShort { hops: 0 },
            PathError::BadInjection {
                src: NodeId(0),
                channel: ChannelId(1),
            },
            PathError::PortMismatch {
                port: PortId(1),
                channel: ChannelId(0),
            },
            PathError::BadEjection {
                dst: NodeId(0),
                channel: ChannelId(5),
            },
            PathError::InteriorNotLink {
                channel: ChannelId(4),
            },
            PathError::BrokenChain {
                channel: ChannelId(3),
                departs: NodeId(1),
                at: NodeId(0),
            },
            PathError::VcOutOfRange {
                channel: ChannelId(2),
                vc: VcId(1),
                vcs: 1,
            },
            PathError::WrongTerminus {
                at: NodeId(0),
                dst: NodeId(1),
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn validate_path_rejects_port_mismatch() {
        // A 1-node, 2-port network: port 1's injection channel differs.
        let channels = vec![
            Channel::injection(ChannelId(0), NodeId(0), PortId(0), "i0"),
            Channel::injection(ChannelId(1), NodeId(0), PortId(1), "i1"),
            Channel::ejection(ChannelId(2), NodeId(0), PortId(0), "e0"),
            Channel::ejection(ChannelId(3), NodeId(0), PortId(1), "e1"),
        ];
        let net = Network::new(
            1,
            2,
            channels,
            vec![ChannelId(0), ChannelId(1)],
            vec![ChannelId(2), ChannelId(3)],
        );
        let p = Path {
            src: NodeId(0),
            dst: NodeId(0),
            port: PortId(1),
            hops: vec![hop(0, 0), hop(2, 0)],
        };
        assert_eq!(
            net.validate_path(&p),
            Err(PathError::PortMismatch {
                port: PortId(1),
                channel: ChannelId(0),
            })
        );
    }
}
