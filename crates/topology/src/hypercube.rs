//! Binary hypercube with multi-port routers.
//!
//! The predecessor of the paper's model is Shahrabi et al.'s broadcast
//! model for **hypercubes** (MASCOTS 2000, the paper's ref.\[18\]), which
//! was limited to one-port routers and non-wormhole broadcast. This module
//! provides the `d`-dimensional hypercube with one router port per
//! dimension so the reproduction can exercise the multi-port model on the
//! topology family that motivated it:
//!
//! * **Unicast**: e-cube (dimension-ordered) routing — resolve the lowest
//!   differing dimension first. Acyclic channel dependencies, so a single
//!   virtual channel suffices; VC0 is used.
//! * **Multicast**: dual-path streams along the **Gray-code Hamiltonian
//!   path** (consecutive Gray codes differ in one bit, hence are
//!   physically adjacent), on reserved VC1 — the same construction as the
//!   mesh's dual-path multicast, giving `m = 2` asynchronous streams for
//!   the model's max-of-exponentials combination.

use crate::channel::Channel;
use crate::ids::{ChannelId, NodeId, PortId};
use crate::network::{Network, Topology, TopologyError};
use crate::path::{Hop, MulticastStream, Path};

/// A `2^d`-node binary hypercube (`1 ≤ d ≤ 16`), port `c` = dimension `c`.
#[derive(Clone, Debug)]
pub struct Hypercube {
    dim: usize,
    n: usize,
    net: Network,
    /// `out_link[node * dim + c]` — the link flipping bit `c`.
    out_link: Vec<ChannelId>,
}

impl Hypercube {
    /// Build a hypercube of dimension `dim` (`2 ≤ dim ≤ 10`).
    pub fn new(dim: usize) -> Result<Self, TopologyError> {
        if !(2..=10).contains(&dim) {
            return Err(TopologyError::UnsupportedSize {
                n: dim,
                requirement: "Hypercube requires dimension in 2..=10",
            });
        }
        let n = 1usize << dim;
        let mut channels = Vec::with_capacity(3 * n * dim);
        let mut out_link = vec![ChannelId(0); n * dim];
        for i in 0..n {
            for c in 0..dim {
                let id = ChannelId(channels.len() as u32);
                let to = i ^ (1 << c);
                channels.push(Channel::link(
                    id,
                    NodeId(i as u32),
                    NodeId(to as u32),
                    PortId(c as u8),
                    2, // VC0 e-cube unicast, VC1 Gray-code multicast
                    false,
                    format!("dim{c} {i}->{to}"),
                ));
                out_link[i * dim + c] = id;
            }
        }
        let mut injection = Vec::with_capacity(n * dim);
        for i in 0..n {
            for c in 0..dim {
                let id = ChannelId(channels.len() as u32);
                channels.push(Channel::injection(
                    id,
                    NodeId(i as u32),
                    PortId(c as u8),
                    format!("inj {i}.{c}"),
                ));
                injection.push(id);
            }
        }
        let mut ejection = Vec::with_capacity(n * dim);
        for i in 0..n {
            for c in 0..dim {
                let id = ChannelId(channels.len() as u32);
                channels.push(Channel::ejection(
                    id,
                    NodeId(i as u32),
                    PortId(c as u8),
                    format!("ej {i}.{c}"),
                ));
                ejection.push(id);
            }
        }
        let net = Network::new(n, dim, channels, injection, ejection);
        Ok(Hypercube {
            dim,
            n,
            net,
            out_link,
        })
    }

    /// Hypercube dimension (`log2 N`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn link(&self, from: usize, c: usize) -> ChannelId {
        self.out_link[from * self.dim + c]
    }

    /// Gray-code Hamiltonian label of a node (`h` such that
    /// `node = h ^ (h >> 1)`).
    #[inline]
    pub fn gray_label(&self, node: NodeId) -> usize {
        // Inverse Gray code: prefix-XOR of the bits.
        let mut b = node.idx();
        b ^= b >> 1;
        b ^= b >> 2;
        b ^= b >> 4;
        b ^= b >> 8;
        b ^= b >> 16;
        b
    }

    /// The node at Gray-code position `h`.
    #[inline]
    pub fn node_at_gray(&self, h: usize) -> NodeId {
        NodeId((h ^ (h >> 1)) as u32)
    }

    /// Build one dual-path stream covering the given Gray labels (sorted
    /// in visit order) from `src`.
    fn gray_stream(&self, src: NodeId, labels: &[usize], up: bool) -> MulticastStream {
        debug_assert!(!labels.is_empty());
        let h0 = self.gray_label(src);
        let last = *labels.last().unwrap();
        let step = |h: usize| if up { h + 1 } else { h - 1 };
        // First hop decides the injection port.
        let first_next = self.node_at_gray(step(h0));
        let first_dim = (src.idx() ^ first_next.idx()).trailing_zeros() as usize;
        let first_port = PortId(first_dim as u8);
        let mut hops = vec![Hop::new(self.net.injection_channel(src, first_port), 0)];
        let mut h = h0;
        let mut at = src;
        let mut arrival = first_port;
        while h != last {
            let next = self.node_at_gray(step(h));
            let dim = (at.idx() ^ next.idx()).trailing_zeros() as usize;
            hops.push(Hop::new(self.link(at.idx(), dim), 1)); // reserved VC1
            arrival = PortId(dim as u8);
            at = next;
            h = step(h);
        }
        hops.push(Hop::new(self.net.ejection_channel(at, arrival), 0));
        MulticastStream {
            port: first_port,
            path: Path {
                src,
                dst: at,
                port: first_port,
                hops,
            },
            targets: labels.iter().map(|&l| self.node_at_gray(l)).collect(),
        }
    }
}

impl Topology for Hypercube {
    fn name(&self) -> &str {
        "hypercube"
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn port_for(&self, src: NodeId, dst: NodeId) -> PortId {
        assert_ne!(src, dst);
        PortId((src.idx() ^ dst.idx()).trailing_zeros() as u8)
    }

    fn unicast_path(&self, src: NodeId, dst: NodeId) -> Path {
        assert_ne!(src, dst, "no route from a node to itself");
        let first_port = self.port_for(src, dst);
        let mut hops = vec![Hop::new(self.net.injection_channel(src, first_port), 0)];
        let mut at = src.idx();
        let mut arrival = first_port;
        while at != dst.idx() {
            let dim = (at ^ dst.idx()).trailing_zeros() as usize;
            hops.push(Hop::new(self.link(at, dim), 0));
            arrival = PortId(dim as u8);
            at ^= 1 << dim;
        }
        hops.push(Hop::new(self.net.ejection_channel(dst, arrival), 0));
        Path {
            src,
            dst,
            port: first_port,
            hops,
        }
    }

    fn quadrant(&self, src: NodeId, p: PortId) -> Vec<NodeId> {
        (0..self.n as u32)
            .map(NodeId)
            .filter(|&d| d != src && self.port_for(src, d) == p)
            .collect()
    }

    fn multicast_streams(&self, src: NodeId, targets: &[NodeId]) -> Vec<MulticastStream> {
        let h0 = self.gray_label(src);
        let mut high: Vec<usize> = Vec::new();
        let mut low: Vec<usize> = Vec::new();
        for &t in targets {
            if t == src {
                continue;
            }
            let h = self.gray_label(t);
            if h > h0 {
                high.push(h);
            } else {
                low.push(h);
            }
        }
        let mut streams = Vec::new();
        high.sort_unstable();
        high.dedup();
        if !high.is_empty() {
            streams.push(self.gray_stream(src, &high, true));
        }
        low.sort_unstable();
        low.dedup();
        low.reverse();
        if !low.is_empty() {
            streams.push(self.gray_stream(src, &low, false));
        }
        streams
    }

    fn diameter(&self) -> usize {
        self.dim
    }

    fn linear_label(&self, node: NodeId) -> usize {
        self.gray_label(node)
    }

    fn concurrent_multicast(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn rejects_degenerate_dimensions() {
        assert!(Hypercube::new(1).is_err());
        assert!(Hypercube::new(11).is_err());
        assert!(Hypercube::new(2).is_ok());
        assert!(Hypercube::new(6).is_ok());
    }

    #[test]
    fn ecube_paths_are_shortest_hamming() {
        let h = Hypercube::new(4).unwrap();
        for s in 0..16u32 {
            for d in 0..16u32 {
                if s == d {
                    continue;
                }
                let p = h.unicast_path(NodeId(s), NodeId(d));
                h.network().validate_path(&p).unwrap();
                assert_eq!(p.link_count(), (s ^ d).count_ones() as usize);
                assert!(p.link_count() <= h.diameter());
            }
        }
    }

    #[test]
    fn quadrants_partition_by_lowest_differing_dimension() {
        let h = Hypercube::new(4).unwrap();
        for s in 0..16u32 {
            let s = NodeId(s);
            let mut seen = BTreeSet::new();
            for c in 0..4u8 {
                let q = h.quadrant(s, PortId(c));
                // Port c serves 2^(dim-1-c) nodes.
                assert_eq!(q.len(), 1 << (4 - 1 - c as usize));
                for t in q {
                    assert!(seen.insert(t));
                }
            }
            assert_eq!(seen.len(), 15);
        }
    }

    #[test]
    fn gray_labels_are_a_hamiltonian_path() {
        let h = Hypercube::new(5).unwrap();
        let mut seen = BTreeSet::new();
        for i in 0..32u32 {
            let l = h.gray_label(NodeId(i));
            assert_eq!(h.node_at_gray(l), NodeId(i), "inverse round-trip");
            seen.insert(l);
        }
        assert_eq!(seen.len(), 32);
        for l in 0..31usize {
            let a = h.node_at_gray(l).idx();
            let b = h.node_at_gray(l + 1).idx();
            assert_eq!((a ^ b).count_ones(), 1, "gray neighbours are adjacent");
        }
    }

    #[test]
    fn dual_path_multicast_covers_targets_disjointly() {
        let h = Hypercube::new(4).unwrap();
        let src = NodeId(5);
        let targets = [NodeId(0), NodeId(3), NodeId(9), NodeId(14), NodeId(15)];
        let streams = h.multicast_streams(src, &targets);
        assert!(streams.len() <= 2);
        let mut covered = BTreeSet::new();
        for st in &streams {
            h.network().validate_path(&st.path).unwrap();
            assert_eq!(st.path.dst, *st.targets.last().unwrap());
            for hop in &st.path.hops[1..st.path.hops.len() - 1] {
                assert_eq!(hop.vc.0, 1, "multicast rides the reserved VC");
            }
            for &t in &st.targets {
                assert!(covered.insert(t));
            }
        }
        assert_eq!(covered, targets.iter().copied().collect());
    }

    #[test]
    fn broadcast_covers_whole_cube() {
        let h = Hypercube::new(3).unwrap();
        for s in 0..8u32 {
            let streams = h.broadcast_streams(NodeId(s));
            let covered: BTreeSet<_> = streams.iter().flat_map(|st| st.targets.clone()).collect();
            assert_eq!(covered.len(), 7);
        }
    }

    #[test]
    fn channel_census() {
        let h = Hypercube::new(3).unwrap();
        let net = h.network();
        // 8 nodes x 3 dims of links + injections + ejections.
        assert_eq!(net.links().count(), 24);
        assert_eq!(net.num_channels(), 24 * 3);
        assert_eq!(net.ports_per_node(), 3);
    }
}
