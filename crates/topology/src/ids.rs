//! Strongly-typed identifiers for nodes, channels, ports and virtual
//! channels.
//!
//! All identifiers are thin `u32`/`u8` newtypes: they are hot map keys in
//! both the simulator and the analytical model, so they stay `Copy` and
//! index-friendly (see the type-size guidance in the workspace design
//! notes).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a network node (router + processing element).
///
/// Nodes are numbered `0..N` in topology-specific order (clockwise for the
/// ring-based topologies, row-major for meshes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for table indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

/// Identifier of a directed channel in a [`crate::Network`].
///
/// A channel is the unit of resource allocation in wormhole switching: a
/// physical link, an injection port or an ejection port. `ChannelId` indexes
/// the network's channel table directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The channel index as a `usize`, for table indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Index of a router port (direction class).
///
/// Port numbering is topology-specific; e.g. the Quarc uses
/// `0 = clockwise`, `1 = counter-clockwise`, `2 = cross-left`,
/// `3 = cross-right` (see [`crate::quarc::port`]). In a multi-port
/// architecture each port has its own injection and ejection channel
/// (Fig. 1(b) of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(pub u8);

impl PortId {
    /// The port index as a `usize`, for table indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Index of a virtual channel multiplexed on a physical channel.
///
/// Rim links of the ring-based topologies carry two virtual channels with a
/// dateline discipline to break the cyclic channel dependency of the ring
/// (the Spidergon/Quarc deadlock-avoidance scheme).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VcId(pub u8);

impl VcId {
    /// The virtual-channel index as a `usize`, for table indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_usize() {
        let n = NodeId::from(17usize);
        assert_eq!(n.idx(), 17);
        assert_eq!(n, NodeId(17));
        assert_eq!(format!("{n:?}"), "n17");
        assert_eq!(n.to_string(), "17");
    }

    #[test]
    fn channel_id_ordering_matches_index_ordering() {
        let a = ChannelId(3);
        let b = ChannelId(9);
        assert!(a < b);
        assert_eq!(b.idx(), 9);
        assert_eq!(format!("{a:?}"), "c3");
    }

    #[test]
    fn port_and_vc_are_single_byte() {
        assert_eq!(std::mem::size_of::<PortId>(), 1);
        assert_eq!(std::mem::size_of::<VcId>(), 1);
        assert_eq!(format!("{:?}", PortId(2)), "p2");
        assert_eq!(format!("{:?}", VcId(1)), "v1");
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<ChannelId, f64> = HashMap::new();
        m.insert(ChannelId(1), 0.5);
        m.insert(ChannelId(2), 0.25);
        assert_eq!(m[&ChannelId(1)], 0.5);
    }
}
