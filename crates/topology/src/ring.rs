//! Bidirectional ring with a two-port router.
//!
//! The ring is the minimal topology exercising the paper's multicast model
//! with `m = 2` asynchronous port streams: a multicast splits into a
//! clockwise and a counter-clockwise stream, and the multicast waiting time
//! is the expected maximum of two independent exponentials (Eq. 10–11).
//! It is used in unit/property tests and in the port-count ablation.

use crate::channel::Channel;
use crate::ids::{ChannelId, NodeId, PortId};
use crate::network::{Network, Topology, TopologyError};
use crate::path::{Hop, MulticastStream, Path};

/// Port indices of the two-port ring router.
pub mod port {
    use crate::ids::PortId;

    /// Clockwise port.
    pub const CW: PortId = PortId(0);
    /// Counter-clockwise port.
    pub const CCW: PortId = PortId(1);

    /// Both ports in index order.
    pub const ALL: [PortId; 2] = [CW, CCW];
}

/// A bidirectional ring of `N ≥ 4` nodes with all-port (two-port) routers.
#[derive(Clone, Debug)]
pub struct Ring {
    n: usize,
    net: Network,
}

impl Ring {
    /// Build a ring with `n` nodes (`n ≥ 4`).
    pub fn new(n: usize) -> Result<Self, TopologyError> {
        if n < 4 {
            return Err(TopologyError::UnsupportedSize {
                n,
                requirement: "Ring requires N >= 4",
            });
        }
        let nu = n as u32;
        let mut channels = Vec::with_capacity(6 * n);
        for i in 0..nu {
            let to = (i + 1) % nu;
            channels.push(Channel::link(
                ChannelId(i),
                NodeId(i),
                NodeId(to),
                port::CW,
                2,
                i == nu - 1,
                format!("cw {i}->{to}"),
            ));
        }
        for i in 0..nu {
            let to = (i + nu - 1) % nu;
            channels.push(Channel::link(
                ChannelId(nu + i),
                NodeId(i),
                NodeId(to),
                port::CCW,
                2,
                i == 0,
                format!("ccw {i}->{to}"),
            ));
        }
        let mut injection = Vec::with_capacity(2 * n);
        for i in 0..nu {
            for p in 0..2u8 {
                let id = ChannelId(2 * nu + i * 2 + p as u32);
                channels.push(Channel::injection(
                    id,
                    NodeId(i),
                    PortId(p),
                    format!("inj {i}.{p}"),
                ));
                injection.push(id);
            }
        }
        let mut ejection = Vec::with_capacity(2 * n);
        for i in 0..nu {
            for p in 0..2u8 {
                let id = ChannelId(4 * nu + i * 2 + p as u32);
                channels.push(Channel::ejection(
                    id,
                    NodeId(i),
                    PortId(p),
                    format!("ej {i}.{p}"),
                ));
                ejection.push(id);
            }
        }
        let net = Network::new(n, 2, channels, injection, ejection);
        Ok(Ring { n, net })
    }

    /// Node count.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Clockwise distance from `s` to `d`.
    #[inline]
    pub fn cw_dist(&self, s: NodeId, d: NodeId) -> usize {
        (d.idx() + self.n - s.idx()) % self.n
    }

    /// Largest clockwise distance served by the clockwise port.
    #[inline]
    fn cw_reach(&self) -> usize {
        self.n / 2 // d in [1, n/2] go cw; the rest ccw
    }

    #[inline]
    fn node(&self, i: usize) -> NodeId {
        NodeId((i % self.n) as u32)
    }

    fn build_path(&self, s: NodeId, d_cw: usize, p: PortId) -> Path {
        let (dst, steps) = if p == port::CW {
            (self.node(s.idx() + d_cw), d_cw)
        } else {
            (self.node(s.idx() + d_cw), self.n - d_cw)
        };
        let mut hops = Vec::with_capacity(steps + 2);
        hops.push(Hop::new(self.net.injection_channel(s, p), 0));
        let mut crossed = false;
        for step in 0..steps {
            let (link, wraps) = if p == port::CW {
                let i = (s.idx() + step) % self.n;
                (ChannelId(i as u32), i == self.n - 1)
            } else {
                let i = (s.idx() + self.n - step) % self.n;
                (ChannelId((self.n + i) as u32), i == 0)
            };
            if wraps {
                crossed = true;
            }
            hops.push(Hop::new(link, u8::from(crossed)));
        }
        hops.push(Hop::new(self.net.ejection_channel(dst, p), 0));
        Path {
            src: s,
            dst,
            port: p,
            hops,
        }
    }
}

impl Topology for Ring {
    fn name(&self) -> &str {
        "ring"
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn port_for(&self, src: NodeId, dst: NodeId) -> PortId {
        assert_ne!(src, dst);
        if self.cw_dist(src, dst) <= self.cw_reach() {
            port::CW
        } else {
            port::CCW
        }
    }

    fn unicast_path(&self, src: NodeId, dst: NodeId) -> Path {
        let p = self.port_for(src, dst);
        self.build_path(src, self.cw_dist(src, dst), p)
    }

    fn quadrant(&self, src: NodeId, p: PortId) -> Vec<NodeId> {
        let s = src.idx();
        match p {
            x if x == port::CW => (1..=self.cw_reach()).map(|d| self.node(s + d)).collect(),
            x if x == port::CCW => (self.cw_reach() + 1..self.n)
                .rev()
                .map(|d| self.node(s + d))
                .collect(),
            _ => panic!("invalid ring port {p:?}"),
        }
    }

    fn multicast_streams(&self, src: NodeId, targets: &[NodeId]) -> Vec<MulticastStream> {
        let mut cw: Vec<usize> = Vec::new();
        let mut ccw: Vec<usize> = Vec::new();
        for &t in targets {
            if t == src {
                continue;
            }
            let d = self.cw_dist(src, t);
            if d <= self.cw_reach() {
                cw.push(d);
            } else {
                ccw.push(d);
            }
        }
        let mut streams = Vec::new();
        cw.sort_unstable();
        cw.dedup();
        if let Some(&last) = cw.last() {
            streams.push(MulticastStream {
                port: port::CW,
                path: self.build_path(src, last, port::CW),
                targets: cw.iter().map(|&d| self.node(src.idx() + d)).collect(),
            });
        }
        ccw.sort_unstable();
        ccw.dedup();
        ccw.reverse(); // visit order: descending cw distance = ascending ccw
        if let Some(&last) = ccw.last() {
            streams.push(MulticastStream {
                port: port::CCW,
                path: self.build_path(src, last, port::CCW),
                targets: ccw.iter().map(|&d| self.node(src.idx() + d)).collect(),
            });
        }
        streams
    }

    fn diameter(&self) -> usize {
        self.n / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn rejects_tiny_rings() {
        assert!(Ring::new(3).is_err());
        assert!(Ring::new(4).is_ok());
    }

    #[test]
    fn quadrants_partition() {
        for n in [4, 5, 8, 9] {
            let r = Ring::new(n).unwrap();
            for s in 0..n {
                let s = NodeId(s as u32);
                let mut seen = BTreeSet::new();
                for p in port::ALL {
                    for t in r.quadrant(s, p) {
                        assert!(seen.insert(t));
                    }
                }
                assert_eq!(seen.len(), n - 1);
            }
        }
    }

    #[test]
    fn paths_valid_and_shortest_up_to_tiebreak() {
        for n in [4, 5, 8, 9] {
            let r = Ring::new(n).unwrap();
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let (s, d) = (NodeId(s as u32), NodeId(d as u32));
                    let p = r.unicast_path(s, d);
                    r.network().validate_path(&p).unwrap();
                    let dcw = r.cw_dist(s, d);
                    let shortest = dcw.min(n - dcw);
                    // cw ties break clockwise; the route is never more than
                    // one hop class away from shortest (exact for all but
                    // the even-N antipode, which is exactly shortest too).
                    assert!(p.link_count() == shortest || p.link_count() == dcw);
                    assert!(p.link_count() <= r.diameter());
                }
            }
        }
    }

    #[test]
    fn multicast_two_streams() {
        let r = Ring::new(8).unwrap();
        let s = NodeId(0);
        let streams = r.multicast_streams(s, &[NodeId(1), NodeId(3), NodeId(6), NodeId(7)]);
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].port, port::CW);
        assert_eq!(streams[0].targets, vec![NodeId(1), NodeId(3)]);
        assert_eq!(streams[0].path.dst, NodeId(3));
        assert_eq!(streams[1].port, port::CCW);
        assert_eq!(streams[1].targets, vec![NodeId(7), NodeId(6)]);
        assert_eq!(streams[1].path.dst, NodeId(6));
    }

    #[test]
    fn broadcast_covers_ring() {
        let r = Ring::new(9).unwrap();
        let streams = r.broadcast_streams(NodeId(4));
        let covered: BTreeSet<_> = streams.iter().flat_map(|s| s.targets.clone()).collect();
        assert_eq!(covered.len(), 8);
    }

    #[test]
    fn dateline_vcs_on_wrap() {
        let r = Ring::new(8).unwrap();
        let p = r.unicast_path(NodeId(6), NodeId(2));
        // cw path 6->7->0->1->2 crosses the 7->0 dateline.
        let vcs: Vec<u8> = p.hops.iter().map(|h| h.vc.0).collect();
        assert_eq!(vcs, vec![0, 0, 1, 1, 1, 0]);
    }
}
