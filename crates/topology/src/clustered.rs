//! Hierarchical cluster-of-topologies composition with express links.
//!
//! The other half of the ROADMAP scale item: `C` identical clusters of a
//! flat inner topology (mesh, torus, quarc, ...) bridged by a full
//! crossbar of directed *express links* between cluster gateways (local
//! node 0 of each cluster). Cross-cluster traffic rides exactly one
//! express link: source → own gateway (inner routing), express hop,
//! remote gateway → destination (inner routing).
//!
//! ## Deadlock discipline
//!
//! Inner **link** channels double their native virtual-channel count: the
//! low half serves intra-cluster and *departing* (toward-gateway)
//! segments with the inner topology's native VC discipline, the high half
//! serves *arriving* (from-gateway) segments. Express links are their own
//! single-VC class. The acyclic order `injection < low-VC links <
//! express < high-VC links < ejection` contains every path's channel
//! sequence, so the channel dependency graph has no cycle even though
//! each cluster's inner network is itself cyclic-but-protected by its
//! native discipline on each half independently.
//!
//! Like the MIN, the channel graph is **implicit** — a [`ChannelFactory`]
//! computes any channel in O(1) by delegating to the (small, dense) inner
//! topology and remapping ids — and [`Clustered::materialized`]
//! force-builds the dense differential oracle.

use crate::channel::{Channel, ChannelKind};
use crate::ids::{ChannelId, NodeId, PortId};
use crate::network::{ChannelFactory, Network, Topology, TopologyError};
use crate::path::{Hop, MulticastStream, Path};
use std::fmt;
use std::sync::Arc;

/// Largest supported total node count, matching the MIN cap.
const MAX_NODES: usize = 1 << 24;

/// `C` clusters of one inner topology, bridged by gateway express links.
#[derive(Clone)]
pub struct Clustered {
    clusters: usize,
    /// Inner node count (`m`); global node `g` lives in cluster `g / m`
    /// as local node `g % m`.
    m: usize,
    /// Inner channel count; cluster `c`'s copy of inner channel `j` has
    /// global id `c * icc + j`.
    icc: usize,
    inner: Arc<dyn Topology>,
    net: Network,
    diameter: usize,
}

impl fmt::Debug for Clustered {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Clustered")
            .field("clusters", &self.clusters)
            .field("inner", &self.inner.name())
            .field("m", &self.m)
            .finish()
    }
}

/// O(1) channel computation for the clustered composition.
struct ClusteredFactory {
    clusters: usize,
    m: usize,
    icc: usize,
    inner: Arc<dyn Topology>,
}

impl fmt::Debug for ClusteredFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusteredFactory")
            .field("clusters", &self.clusters)
            .field("inner", &self.inner.name())
            .finish()
    }
}

impl ClusteredFactory {
    /// Doubled-VC count of inner channel `j` (links double, terminals
    /// keep their single VC).
    fn inner_vcs(&self, j: usize) -> u8 {
        let ch = self.inner.network().channel(ChannelId(j as u32));
        if ch.kind == ChannelKind::Link {
            ch.vcs * 2
        } else {
            ch.vcs
        }
    }
}

impl ChannelFactory for ClusteredFactory {
    fn num_channels(&self) -> usize {
        self.clusters * self.icc + self.clusters * (self.clusters - 1)
    }

    fn channel(&self, id: ChannelId) -> Channel {
        let i = id.idx();
        if i < self.clusters * self.icc {
            let c = i / self.icc;
            let j = i % self.icc;
            let base = self.inner.network().channel(ChannelId(j as u32));
            let offset = (c * self.m) as u32;
            let mut ch = base.clone();
            ch.id = id;
            ch.from = NodeId(base.from.0 + offset);
            ch.to = NodeId(base.to.0 + offset);
            ch.vcs = self.inner_vcs(j);
            ch.label = format!("c{c} {}", base.label);
            ch
        } else {
            let e = i - self.clusters * self.icc;
            let a = e / (self.clusters - 1);
            let slot = e % (self.clusters - 1);
            let b = if slot < a { slot } else { slot + 1 };
            Channel::link(
                id,
                NodeId((a * self.m) as u32),
                NodeId((b * self.m) as u32),
                PortId(0),
                1,
                false,
                format!("x {a}->{b}"),
            )
        }
    }

    fn vcs(&self, id: ChannelId) -> u8 {
        let i = id.idx();
        if i < self.clusters * self.icc {
            self.inner_vcs(i % self.icc)
        } else {
            1
        }
    }

    fn downstream(&self, id: ChannelId) -> NodeId {
        let i = id.idx();
        if i < self.clusters * self.icc {
            let c = i / self.icc;
            let j = i % self.icc;
            NodeId(self.inner.network().channel(ChannelId(j as u32)).to.0 + (c * self.m) as u32)
        } else {
            let e = i - self.clusters * self.icc;
            let a = e / (self.clusters - 1);
            let slot = e % (self.clusters - 1);
            let b = if slot < a { slot } else { slot + 1 };
            NodeId((b * self.m) as u32)
        }
    }

    fn injection_channel(&self, node: NodeId, port: PortId) -> ChannelId {
        let c = node.idx() / self.m;
        let local = NodeId((node.idx() % self.m) as u32);
        ChannelId((c * self.icc) as u32 + self.inner.network().injection_channel(local, port).0)
    }

    fn ejection_channel(&self, node: NodeId, port: PortId) -> ChannelId {
        let c = node.idx() / self.m;
        let local = NodeId((node.idx() % self.m) as u32);
        ChannelId((c * self.icc) as u32 + self.inner.network().ejection_channel(local, port).0)
    }
}

impl Clustered {
    /// Build `clusters` copies of `inner` bridged by gateway express
    /// links, with implicit (O(1)) channel storage.
    pub fn new(clusters: usize, inner: Arc<dyn Topology>) -> Result<Clustered, TopologyError> {
        Clustered::build(clusters, inner, false)
    }

    /// The same composition with force-materialized dense channel tables
    /// — the bit-for-bit oracle of the differential suite.
    pub fn materialized(
        clusters: usize,
        inner: Arc<dyn Topology>,
    ) -> Result<Clustered, TopologyError> {
        Clustered::build(clusters, inner, true)
    }

    fn build(
        clusters: usize,
        inner: Arc<dyn Topology>,
        materialize: bool,
    ) -> Result<Clustered, TopologyError> {
        if clusters < 2 {
            return Err(TopologyError::UnsupportedSize {
                n: clusters,
                requirement: "clustered composition requires at least two clusters",
            });
        }
        if inner.network().is_implicit() {
            return Err(TopologyError::InvalidSpec {
                spec: format!("clustered-{clusters}x-{}", inner.name()),
                reason: "inner topology must be a materialized flat family \
                         (no nested min/clustered)"
                    .into(),
            });
        }
        let m = inner.num_nodes();
        let total = clusters.checked_mul(m).filter(|&t| t <= MAX_NODES).ok_or(
            TopologyError::UnsupportedSize {
                n: usize::MAX,
                requirement: "clustered node count must be at most 2^24",
            },
        )?;
        let icc = inner.network().num_channels();
        let factory = Arc::new(ClusteredFactory {
            clusters,
            m,
            icc,
            inner: Arc::clone(&inner),
        });
        let net = Network::implicit(total, inner.num_ports(), factory);
        let net = if materialize { net.materialize() } else { net };
        // Exact diameter: intra-cluster routes are bounded by the inner
        // diameter; cross-cluster routes by the gateway's in/out
        // eccentricities plus the express hop.
        let mut ecc_to_gw = 0usize;
        let mut ecc_from_gw = 0usize;
        for l in 1..m as u32 {
            ecc_to_gw = ecc_to_gw.max(inner.unicast_path(NodeId(l), NodeId(0)).link_count());
            ecc_from_gw = ecc_from_gw.max(inner.unicast_path(NodeId(0), NodeId(l)).link_count());
        }
        let diameter = inner.diameter().max(ecc_to_gw + 1 + ecc_from_gw);
        Ok(Clustered {
            clusters,
            m,
            icc,
            inner,
            net,
            diameter,
        })
    }

    /// Number of clusters.
    #[inline]
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// The shared inner topology (one cluster's internal structure).
    #[inline]
    pub fn inner(&self) -> &dyn Topology {
        self.inner.as_ref()
    }

    #[inline]
    fn split(&self, g: NodeId) -> (usize, NodeId) {
        (g.idx() / self.m, NodeId((g.idx() % self.m) as u32))
    }

    #[inline]
    fn global(&self, cluster: usize, local: NodeId) -> NodeId {
        NodeId((cluster * self.m) as u32 + local.0)
    }

    /// Remap an inner hop into cluster `c`'s id space, bumping link hops
    /// into the high (arriving) VC half when `arriving` is set.
    fn remap_hop(&self, hop: Hop, c: usize, arriving: bool) -> Hop {
        let mut vc = hop.vc.0;
        if arriving {
            let ch = self.inner.network().channel(hop.channel);
            if ch.kind == ChannelKind::Link {
                vc += ch.vcs;
            }
        }
        Hop::new(ChannelId((c * self.icc) as u32 + hop.channel.0), vc)
    }

    /// Remap a whole intra-cluster inner path into cluster `c`.
    fn remap_path(&self, p: Path, c: usize) -> Path {
        let offset = (c * self.m) as u32;
        Path {
            src: NodeId(p.src.0 + offset),
            dst: NodeId(p.dst.0 + offset),
            port: p.port,
            hops: p
                .hops
                .into_iter()
                .map(|h| self.remap_hop(h, c, false))
                .collect(),
        }
    }

    fn express_id(&self, a: usize, b: usize) -> ChannelId {
        let slot = if b < a { b } else { b - 1 };
        ChannelId((self.clusters * self.icc + a * (self.clusters - 1) + slot) as u32)
    }
}

impl Topology for Clustered {
    fn name(&self) -> &str {
        "clustered"
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn port_for(&self, src: NodeId, dst: NodeId) -> PortId {
        let (cs, ls) = self.split(src);
        let (cd, ld) = self.split(dst);
        if cs == cd {
            self.inner.port_for(ls, ld)
        } else if ls == NodeId(0) {
            PortId(0)
        } else {
            self.inner.port_for(ls, NodeId(0))
        }
    }

    fn unicast_path(&self, src: NodeId, dst: NodeId) -> Path {
        assert_ne!(src, dst, "unicast_path requires distinct endpoints");
        let (cs, ls) = self.split(src);
        let (cd, ld) = self.split(dst);
        if cs == cd {
            return self.remap_path(self.inner.unicast_path(ls, ld), cs);
        }
        let mut hops = Vec::new();
        // Departing segment: inner route to the local gateway, minus its
        // ejection hop (the message forwards onto the express link
        // instead of sinking).
        let port = if ls == NodeId(0) {
            hops.push(Hop::new(self.net.injection_channel(src, PortId(0)), 0));
            PortId(0)
        } else {
            let dep = self.inner.unicast_path(ls, NodeId(0));
            for &hop in &dep.hops[..dep.hops.len() - 1] {
                hops.push(self.remap_hop(hop, cs, false));
            }
            dep.port
        };
        hops.push(Hop::new(self.express_id(cs, cd), 0));
        // Arriving segment: inner route from the remote gateway, minus
        // its injection hop, on the high VC half.
        if ld == NodeId(0) {
            hops.push(Hop::new(self.net.ejection_channel(dst, PortId(0)), 0));
        } else {
            let arr = self.inner.unicast_path(NodeId(0), ld);
            for &hop in &arr.hops[1..] {
                hops.push(self.remap_hop(hop, cd, true));
            }
        }
        Path {
            src,
            dst,
            port,
            hops,
        }
    }

    fn quadrant(&self, src: NodeId, port: PortId) -> Vec<NodeId> {
        let (cs, ls) = self.split(src);
        let mut out: Vec<NodeId> = self
            .inner
            .quadrant(ls, port)
            .into_iter()
            .map(|t| self.global(cs, t))
            .collect();
        // Every remote node is reached through the gateway, so the whole
        // rest of the system belongs to the gateway-bound port's subset.
        let gw_port = if ls == NodeId(0) {
            PortId(0)
        } else {
            self.inner.port_for(ls, NodeId(0))
        };
        if port == gw_port {
            for c in 0..self.clusters {
                if c != cs {
                    for l in 0..self.m as u32 {
                        out.push(self.global(c, NodeId(l)));
                    }
                }
            }
        }
        out
    }

    fn multicast_streams(&self, src: NodeId, targets: &[NodeId]) -> Vec<MulticastStream> {
        let (cs, ls) = self.split(src);
        let mut local: Vec<NodeId> = Vec::new();
        let mut remote: Vec<NodeId> = Vec::new();
        for &t in targets {
            if t == src {
                continue;
            }
            let (ct, lt) = self.split(t);
            if ct == cs {
                if !local.contains(&lt) {
                    local.push(lt);
                }
            } else if !remote.contains(&t) {
                remote.push(t);
            }
        }
        // Same-cluster targets keep the inner topology's native
        // path-based (BRCP) decomposition, remapped into this cluster.
        let mut streams: Vec<MulticastStream> = self
            .inner
            .multicast_streams(ls, &local)
            .into_iter()
            .map(|st| MulticastStream {
                port: st.port,
                path: self.remap_path(st.path, cs),
                targets: st.targets.into_iter().map(|t| self.global(cs, t)).collect(),
            })
            .collect();
        // Remote targets are served as a train of cross-cluster unicasts
        // through the gateway port, in ascending destination order.
        remote.sort_unstable();
        for t in remote {
            streams.push(MulticastStream {
                port: self.port_for(src, t),
                path: self.unicast_path(src, t),
                targets: vec![t],
            });
        }
        streams
    }

    fn diameter(&self) -> usize {
        self.diameter
    }

    fn has_linear_order(&self) -> bool {
        // Consecutive global node ids in different clusters are not
        // physically adjacent, so no usable Hamiltonian order exists.
        false
    }

    fn share(&self) -> Option<Arc<dyn Topology>> {
        Some(Arc::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Mesh, MeshKind};
    use crate::ring::Ring;
    use std::collections::BTreeSet;

    fn mesh_cluster(clusters: usize) -> Clustered {
        let inner = Arc::new(Mesh::new(3, 3, MeshKind::Mesh).unwrap());
        Clustered::new(clusters, inner).unwrap()
    }

    #[test]
    fn construction_validates_parameters() {
        let inner: Arc<dyn Topology> = Arc::new(Ring::new(6).unwrap());
        assert!(Clustered::new(0, Arc::clone(&inner)).is_err());
        assert!(Clustered::new(1, Arc::clone(&inner)).is_err());
        let c = Clustered::new(3, inner).unwrap();
        assert_eq!(c.num_nodes(), 18);
        assert_eq!(c.num_ports(), 2, "inherits the inner port count");
        assert!(c.network().is_implicit());
        assert!(!c.has_linear_order());
    }

    #[test]
    fn nested_implicit_inner_is_rejected() {
        let min: Arc<dyn Topology> = Arc::new(crate::min::Min::new(2, 2).unwrap());
        assert!(matches!(
            Clustered::new(2, min),
            Err(TopologyError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn channel_count_adds_the_express_crossbar() {
        let c = mesh_cluster(4);
        let icc = c.inner().network().num_channels();
        assert_eq!(c.network().num_channels(), 4 * icc + 4 * 3);
    }

    #[test]
    fn every_route_validates_on_the_materialized_oracle() {
        let c = mesh_cluster(3);
        let oracle = c.network().materialize();
        let n = c.num_nodes() as u32;
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let p = c.unicast_path(NodeId(src), NodeId(dst));
                oracle.validate_path(&p).unwrap();
            }
        }
    }

    #[test]
    fn cross_cluster_routes_use_exactly_one_express_link() {
        let c = mesh_cluster(3);
        let icc = c.inner().network().num_channels();
        let express_base = (3 * icc) as u32;
        let n = c.num_nodes() as u32;
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let p = c.unicast_path(NodeId(src), NodeId(dst));
                let express = p
                    .hops
                    .iter()
                    .filter(|h| h.channel.0 >= express_base)
                    .count();
                let cross = src / 9 != dst / 9;
                assert_eq!(express, usize::from(cross), "{src}->{dst}");
            }
        }
    }

    #[test]
    fn arriving_segments_ride_the_high_vc_half() {
        let c = mesh_cluster(2);
        // Node 4 (cluster 0 center) to node 13 (cluster 1, local 4).
        let p = c.unicast_path(NodeId(4), NodeId(13));
        let icc = c.inner().network().num_channels();
        let mut seen_express = false;
        for hop in &p.hops[1..p.hops.len() - 1] {
            let ch = c.network().channel_at(hop.channel);
            if hop.channel.idx() >= 2 * icc {
                seen_express = true;
                assert_eq!(hop.vc.0, 0);
                continue;
            }
            if ch.kind != ChannelKind::Link {
                continue;
            }
            let native = ch.vcs / 2;
            if seen_express {
                assert!(hop.vc.0 >= native, "arriving hop on low half: {hop:?}");
            } else {
                assert!(hop.vc.0 < native, "departing hop on high half: {hop:?}");
            }
        }
        assert!(seen_express);
    }

    #[test]
    fn quadrants_partition_the_whole_system() {
        let c = mesh_cluster(3);
        for src in [NodeId(0), NodeId(4), NodeId(13), NodeId(22)] {
            let mut seen = BTreeSet::new();
            for port in 0..c.num_ports() as u8 {
                for t in c.quadrant(src, PortId(port)) {
                    assert_ne!(t, src);
                    assert!(seen.insert(t), "{t:?} in two quadrants of {src:?}");
                }
            }
            assert_eq!(seen.len(), c.num_nodes() - 1, "src {src:?}");
        }
    }

    #[test]
    fn multicast_covers_local_and_remote_targets_once() {
        let c = mesh_cluster(3);
        let src = NodeId(4);
        let targets = [
            NodeId(1),
            NodeId(8),
            NodeId(10),
            NodeId(20),
            NodeId(10),
            src,
        ];
        let streams = c.multicast_streams(src, &targets);
        let oracle = c.network().materialize();
        let mut covered = BTreeSet::new();
        for st in &streams {
            oracle.validate_path(&st.path).unwrap();
            assert_eq!(st.path.dst, *st.targets.last().unwrap());
            for &t in &st.targets {
                assert!(covered.insert(t), "{t:?} covered twice");
            }
        }
        let expected: BTreeSet<NodeId> = [NodeId(1), NodeId(8), NodeId(10), NodeId(20)]
            .into_iter()
            .collect();
        assert_eq!(covered, expected);
    }

    #[test]
    fn diameter_is_reached_by_some_route_and_never_exceeded() {
        let c = mesh_cluster(2);
        let n = c.num_nodes() as u32;
        let mut longest = 0;
        for src in 0..n {
            for dst in 0..n {
                if src != dst {
                    longest = longest.max(c.unicast_path(NodeId(src), NodeId(dst)).link_count());
                }
            }
        }
        assert_eq!(longest, c.diameter());
    }

    #[test]
    fn materialized_and_implicit_agree_on_channels() {
        let implicit = mesh_cluster(2);
        let inner = Arc::new(Mesh::new(3, 3, MeshKind::Mesh).unwrap());
        let dense = Clustered::materialized(2, inner).unwrap();
        assert!(!dense.network().is_implicit());
        for id in 0..implicit.network().num_channels() as u32 {
            assert_eq!(
                implicit.network().channel_at(ChannelId(id)),
                dense.network().channel_at(ChannelId(id))
            );
        }
    }
}
