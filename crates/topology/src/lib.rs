//! # noc-topology
//!
//! Topologies, channel graphs and deterministic routing for wormhole-routed
//! networks-on-chip.
//!
//! This crate is the structural substrate of the IPDPS 2009 reproduction
//! ("A performance model of multicast communication in wormhole-routed
//! networks on-chip", Moadeli & Vanderbauwhede). It provides:
//!
//! * [`Network`] — a directed *channel* graph. Following the analytical model
//!   of the paper, every resource is a channel: per-node **injection**
//!   channels (one per router port), inter-router **link** channels and
//!   per-node **ejection** channels (one per input direction).
//! * [`Topology`] — the trait every concrete topology implements:
//!   deterministic unicast routing ([`Topology::unicast_path`]), the
//!   partition of destinations over injection ports
//!   ([`Topology::quadrant`], Eq. 1–2 of the paper) and path-based
//!   (BRCP-style) multicast stream construction
//!   ([`Topology::multicast_streams`]).
//! * Concrete topologies:
//!   [`quarc::Quarc`] — the paper's evaluation platform (all-port routers,
//!   doubled cross links, absorb-and-forward multicast);
//!   [`spidergon::Spidergon`] — the one-port baseline;
//!   [`ring::Ring`] — the minimal two-port multicast topology;
//!   [`mesh::Mesh`] — mesh/torus with XY routing and dual-path
//!   Hamiltonian multicast (the paper's stated future work);
//!   [`min::Min`] — k-ary multistage (butterfly) networks and
//!   [`clustered::Clustered`] — hierarchical cluster compositions, both
//!   with *implicit* O(1) channel storage for 64k+-node scale sweeps
//!   (differentially tested against force-materialized oracles).
//! * [`routing`] — pluggable multicast routing schemes behind the
//!   serializable [`RoutingSpec`] selector: the native path-based (BRCP)
//!   construction, generic Lin–Ni dual-path, DPM-style partitioned
//!   multipath and the source-replicated unicast baseline.
//! * [`spec`] — declarative, serializable [`TopologySpec`]s and the
//!   construct-by-name registry (`TopologySpec::parse("mesh-4x4")`), so
//!   experiment scenarios can request any topology as data.
//! * [`addressing`] — coordinate/bit views of the node index space
//!   (square-grid and power-of-two addressing) backing the adversarial
//!   permutation traffic patterns (transpose, bit reversal, shuffle,
//!   tornado, neighbour); total functions that return `None` where the
//!   index space lacks the required structure.
//! * [`render`] — DOT/ASCII renderings regenerating Fig. 2 (topology) and
//!   Fig. 3 (broadcast streams).
//!
//! ## Channel-count conventions
//!
//! A [`Path`] always contains the injection hop, every link hop, and the
//! ejection hop, in traversal order. A flit-level wormhole network moves a
//! flit across one channel per cycle, so the zero-load latency of a message
//! of `msg` flits over a path with `H` links is `msg + H + 1` cycles (header
//! pipeline fill of `H + 2` channels overlapped with the first payload
//! cycle). The analytical model uses `D = path.hop_count()` =
//! `path.len() - 1` so that `msg + D` reproduces this exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addressing;
pub mod channel;
pub mod clustered;
pub mod hypercube;
pub mod ids;
pub mod mesh;
pub mod min;
pub mod network;
pub mod path;
pub mod quarc;
pub mod render;
pub mod ring;
pub mod routing;
pub mod spec;
pub mod spidergon;

pub use channel::{Channel, ChannelKind};
pub use clustered::Clustered;
pub use hypercube::Hypercube;
pub use ids::{ChannelId, NodeId, PortId, VcId};
pub use mesh::{Mesh, MeshKind};
pub use min::Min;
pub use network::{ChannelFactory, Network, PathError, Topology, TopologyError};
pub use path::{Hop, MulticastStream, Path};
pub use quarc::Quarc;
pub use ring::Ring;
pub use routing::{MulticastRouting, RoutingError, RoutingSpec, ALL_ROUTINGS};
pub use spec::{ClusterInner, TopologySpec, KNOWN_TOPOLOGIES};
pub use spidergon::Spidergon;
