//! The Spidergon NoC (paper §3.1) — the one-port baseline.
//!
//! Spidergon (STMicroelectronics) connects `N = 2n` nodes with clockwise,
//! counter-clockwise and cross unidirectional links, uses across-first
//! shortest-path routing and a **one-port** router: a single injection and a
//! single ejection channel per node (Fig. 1(a)). Two consequences the paper
//! highlights:
//!
//! * messages may block on the occupied injection channel even when their
//!   network channels are free;
//! * deadlock-free broadcast/multicast is only achievable by *consecutive
//!   unicast transmissions* (N − 1 messages through one port), making
//!   collective operations dramatically slower than the Quarc's true
//!   multicast.
//!
//! This crate models the Spidergon exactly so the Quarc-vs-Spidergon
//! collective-latency comparison (the motivation for the Quarc, §3.2) can be
//! reproduced in simulation.

use crate::channel::Channel;
use crate::ids::{ChannelId, NodeId, PortId};
use crate::network::{Network, Topology, TopologyError};
use crate::path::{Hop, MulticastStream, Path};

/// Link classes of the Spidergon router (the node still has a single
/// injection/ejection port; these label the *link* channels only).
pub mod link_class {
    use crate::ids::PortId;

    /// Clockwise rim link.
    pub const CW: PortId = PortId(0);
    /// Counter-clockwise rim link.
    pub const CCW: PortId = PortId(1);
    /// Cross link.
    pub const CROSS: PortId = PortId(2);
}

/// The single router port of the one-port architecture.
pub const THE_PORT: PortId = PortId(0);

/// The Spidergon topology (`N` even, `N ≥ 6`).
#[derive(Clone, Debug)]
pub struct Spidergon {
    n: usize,
    /// Rim reach `⌊N/4⌋` of the across-first routing.
    b: usize,
    net: Network,
}

impl Spidergon {
    /// Build a Spidergon NoC with `n` nodes (`n` even, `n ≥ 6`).
    pub fn new(n: usize) -> Result<Self, TopologyError> {
        if n < 6 || !n.is_multiple_of(2) {
            return Err(TopologyError::UnsupportedSize {
                n,
                requirement: "Spidergon requires even N >= 6",
            });
        }
        let nu = n as u32;
        let mut channels = Vec::with_capacity(5 * n);
        for i in 0..nu {
            let to = (i + 1) % nu;
            channels.push(Channel::link(
                ChannelId(i),
                NodeId(i),
                NodeId(to),
                link_class::CW,
                2,
                i == nu - 1,
                format!("cw {i}->{to}"),
            ));
        }
        for i in 0..nu {
            let to = (i + nu - 1) % nu;
            channels.push(Channel::link(
                ChannelId(nu + i),
                NodeId(i),
                NodeId(to),
                link_class::CCW,
                2,
                i == 0,
                format!("ccw {i}->{to}"),
            ));
        }
        for i in 0..nu {
            let to = (i + nu / 2) % nu;
            channels.push(Channel::link(
                ChannelId(2 * nu + i),
                NodeId(i),
                NodeId(to),
                link_class::CROSS,
                1,
                false,
                format!("x {i}->{to}"),
            ));
        }
        let mut injection = Vec::with_capacity(n);
        for i in 0..nu {
            let id = ChannelId(3 * nu + i);
            channels.push(Channel::injection(
                id,
                NodeId(i),
                THE_PORT,
                format!("inj {i}"),
            ));
            injection.push(id);
        }
        let mut ejection = Vec::with_capacity(n);
        for i in 0..nu {
            let id = ChannelId(4 * nu + i);
            channels.push(Channel::ejection(
                id,
                NodeId(i),
                THE_PORT,
                format!("ej {i}"),
            ));
            ejection.push(id);
        }
        let net = Network::new(n, 1, channels, injection, ejection);
        Ok(Spidergon { n, b: n / 4, net })
    }

    /// Node count.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Clockwise distance from `s` to `d`.
    #[inline]
    pub fn cw_dist(&self, s: NodeId, d: NodeId) -> usize {
        (d.idx() + self.n - s.idx()) % self.n
    }

    #[inline]
    fn node(&self, i: usize) -> NodeId {
        NodeId((i % self.n) as u32)
    }

    fn push_cw(&self, hops: &mut Vec<Hop>, from: usize, count: usize) {
        let mut crossed = false;
        for step in 0..count {
            let i = (from + step) % self.n;
            if i == self.n - 1 {
                crossed = true;
            }
            hops.push(Hop::new(ChannelId(i as u32), u8::from(crossed)));
        }
    }

    fn push_ccw(&self, hops: &mut Vec<Hop>, from: usize, count: usize) {
        let mut crossed = false;
        for step in 0..count {
            let i = (from + self.n - step) % self.n;
            if i == 0 {
                crossed = true;
            }
            hops.push(Hop::new(ChannelId((self.n + i) as u32), u8::from(crossed)));
        }
    }
}

impl Topology for Spidergon {
    fn name(&self) -> &str {
        "spidergon"
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn port_for(&self, src: NodeId, dst: NodeId) -> PortId {
        assert_ne!(src, dst);
        THE_PORT
    }

    fn unicast_path(&self, src: NodeId, dst: NodeId) -> Path {
        assert_ne!(src, dst, "no route from a node to itself");
        let n = self.n;
        let dcw = self.cw_dist(src, dst);
        let dccw = n - dcw;
        let mut hops = vec![Hop::new(self.net.injection_channel(src, THE_PORT), 0)];
        if dcw <= self.b {
            // Rim clockwise.
            self.push_cw(&mut hops, src.idx(), dcw);
        } else if dccw <= self.b {
            // Rim counter-clockwise.
            self.push_ccw(&mut hops, src.idx(), dccw);
        } else {
            // Across first, then shortest rim from the opposite node.
            hops.push(Hop::new(ChannelId((2 * n + src.idx()) as u32), 0));
            let o = src.idx() + n / 2;
            let rcw = (dcw + n - n / 2) % n;
            let rccw = (n - rcw) % n;
            if rcw == 0 {
                // Destination is the opposite node.
            } else if rcw <= rccw {
                self.push_cw(&mut hops, o, rcw);
            } else {
                self.push_ccw(&mut hops, o, rccw);
            }
        }
        hops.push(Hop::new(self.net.ejection_channel(dst, THE_PORT), 0));
        Path {
            src,
            dst,
            port: THE_PORT,
            hops,
        }
    }

    fn quadrant(&self, src: NodeId, p: PortId) -> Vec<NodeId> {
        assert_eq!(p, THE_PORT, "the Spidergon router has a single port");
        (1..self.n).map(|d| self.node(src.idx() + d)).collect()
    }

    /// One-port multicast: a train of consecutive unicast messages through
    /// the single injection port, one per target (paper §3.2). Streams are
    /// ordered by clockwise distance for determinism.
    fn multicast_streams(&self, src: NodeId, targets: &[NodeId]) -> Vec<MulticastStream> {
        let mut ds: Vec<usize> = targets
            .iter()
            .filter(|&&t| t != src)
            .map(|&t| self.cw_dist(src, t))
            .collect();
        ds.sort_unstable();
        ds.dedup();
        ds.iter()
            .map(|&d| {
                let t = self.node(src.idx() + d);
                MulticastStream {
                    port: THE_PORT,
                    path: self.unicast_path(src, t),
                    targets: vec![t],
                }
            })
            .collect()
    }

    fn diameter(&self) -> usize {
        // Rim quadrants reach b links; across-first paths reach
        // 1 + (n/2 - b - 1) links for the destination just past the rim
        // quadrant. diameter = max(b, n/2 - b).
        self.b.max(self.n / 2 - self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_odd_or_tiny() {
        assert!(Spidergon::new(5).is_err());
        assert!(Spidergon::new(4).is_err());
        assert!(Spidergon::new(6).is_ok());
        assert!(Spidergon::new(16).is_ok());
    }

    #[test]
    fn one_port_everywhere() {
        let sp = Spidergon::new(12).unwrap();
        assert_eq!(sp.num_ports(), 1);
        assert!(!sp.concurrent_multicast());
        assert_eq!(sp.port_for(NodeId(0), NodeId(5)), THE_PORT);
    }

    #[test]
    fn paths_valid_for_all_pairs() {
        for n in [6, 10, 16] {
            let sp = Spidergon::new(n).unwrap();
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let p = sp.unicast_path(NodeId(s as u32), NodeId(d as u32));
                    sp.network().validate_path(&p).unwrap();
                }
            }
        }
    }

    #[test]
    fn across_first_routing_shapes() {
        let sp = Spidergon::new(16).unwrap();
        // Near clockwise: pure rim.
        let p = sp.unicast_path(NodeId(0), NodeId(3));
        assert_eq!(p.link_count(), 3);
        // Opposite node: single cross link.
        let p = sp.unicast_path(NodeId(2), NodeId(10));
        assert_eq!(p.link_count(), 1);
        // Far node: cross then rim.
        let p = sp.unicast_path(NodeId(0), NodeId(6));
        // 0 -> 8 (cross) -> 7 -> 6: 3 links.
        assert_eq!(p.link_count(), 3);
    }

    #[test]
    fn multicast_is_a_unicast_train() {
        let sp = Spidergon::new(8).unwrap();
        let streams = sp.multicast_streams(NodeId(0), &[NodeId(1), NodeId(4), NodeId(7)]);
        assert_eq!(streams.len(), 3);
        for st in &streams {
            assert_eq!(st.port, THE_PORT);
            assert_eq!(st.targets.len(), 1);
        }
    }

    #[test]
    fn broadcast_takes_n_minus_1_messages() {
        // Paper: Spidergon broadcast requires N-1 consecutive unicasts.
        let sp = Spidergon::new(12).unwrap();
        let streams = sp.broadcast_streams(NodeId(3));
        assert_eq!(streams.len(), 11);
    }

    #[test]
    fn max_path_length_bounded() {
        for n in [6, 8, 10, 16, 32] {
            let sp = Spidergon::new(n).unwrap();
            let mut max_links = 0;
            for s in 0..n {
                for d in 0..n {
                    if s != d {
                        let p = sp.unicast_path(NodeId(s as u32), NodeId(d as u32));
                        max_links = max_links.max(p.link_count());
                    }
                }
            }
            assert!(
                max_links <= n / 4 + 1,
                "N={n}: across-first paths should be <= N/4 + 1 links, got {max_links}"
            );
            assert_eq!(
                max_links,
                sp.diameter(),
                "N={n}: diameter() must equal the longest route"
            );
        }
    }
}
