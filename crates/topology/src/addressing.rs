//! Coordinate and bit addressing of node index spaces.
//!
//! The adversarial permutation patterns of the NoC literature (transpose,
//! bit reversal, perfect shuffle, tornado) are defined on *structured*
//! node index spaces: a square grid for the coordinate permutations, a
//! power-of-two index space for the bit permutations. This module provides
//! those views as total functions over the node count: each helper returns
//! `Some(partner)` when the index space supports the permutation and
//! `None` when it does not, so callers (the workload layer's
//! `UnicastPattern`) can degrade gracefully with a typed error instead of
//! panicking on, say, a 9-node ring asked to run bit reversal.
//!
//! Conventions:
//!
//! * **Grid addressing** interprets node `s` of a square `k × k` network
//!   as row-major coordinates `(x, y) = (s mod k, s div k)` — the layout
//!   of [`crate::Mesh`]; on any other topology it is an *index-space*
//!   interpretation, which is exactly how the permutation literature
//!   applies these patterns to non-mesh networks.
//! * **Bit addressing** interprets node `s` of a `2^d`-node network as a
//!   `d`-bit string — the natural address of [`crate::Hypercube`].
//!
//! A permutation may map a node to itself (the transpose diagonal, a
//! palindromic bit pattern); callers fall back to uniform destinations for
//! such nodes, mirroring the established `Complement` behaviour.

use crate::ids::NodeId;

/// Side length of the square grid covering `n` nodes, if `n` is a perfect
/// square of at least 2×2.
pub fn grid_side(n: usize) -> Option<usize> {
    let side = (n as f64).sqrt().round() as usize;
    (side >= 2 && side * side == n).then_some(side)
}

/// `log2(n)` when `n` is a power of two with at least two nodes.
pub fn log2_exact(n: usize) -> Option<u32> {
    (n >= 2 && n.is_power_of_two()).then(|| n.trailing_zeros())
}

/// Matrix-transpose partner on a square grid: `(x, y) → (y, x)`.
/// `None` when `n` is not a perfect square. Diagonal nodes map to
/// themselves.
pub fn transpose(n: usize, node: NodeId) -> Option<NodeId> {
    let side = grid_side(n)?;
    let (x, y) = (node.idx() % side, node.idx() / side);
    Some(NodeId((x * side + y) as u32))
}

/// Bit-reversal partner: the `d`-bit address read backwards. `None` when
/// `n` is not a power of two. Palindromic addresses map to themselves.
pub fn bit_reverse(n: usize, node: NodeId) -> Option<NodeId> {
    let d = log2_exact(n)?;
    let s = node.idx() as u32;
    Some(NodeId(s.reverse_bits() >> (32 - d)))
}

/// Perfect-shuffle partner: the `d`-bit address rotated left by one.
/// `None` when `n` is not a power of two. The all-zeros and all-ones
/// addresses map to themselves.
pub fn shuffle(n: usize, node: NodeId) -> Option<NodeId> {
    let d = log2_exact(n)?;
    let s = node.idx() as u32;
    let mask = (n - 1) as u32;
    Some(NodeId(((s << 1) | (s >> (d - 1))) & mask))
}

/// Tornado partner on a square grid: rotate almost half-way along the
/// node's row, `(x, y) → ((x + ⌈k/2⌉ − 1) mod k, y)` — the classic
/// worst case for minimal adaptive routing on rings and tori. `None`
/// when `n` is not a perfect square. On a 2-wide grid the offset is zero
/// and every node maps to itself.
pub fn tornado(n: usize, node: NodeId) -> Option<NodeId> {
    let side = grid_side(n)?;
    let offset = side.div_ceil(2) - 1;
    let (x, y) = (node.idx() % side, node.idx() / side);
    Some(NodeId((y * side + (x + offset) % side) as u32))
}

/// Nearest-neighbour partner in index order, `s → (s + 1) mod n` — the
/// lightest-load permutation (one link on ring-ordered topologies). Total
/// over every `n ≥ 2` and never a self-map.
pub fn neighbor(n: usize, node: NodeId) -> NodeId {
    NodeId(((node.idx() + 1) % n) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_side_accepts_exactly_squares() {
        assert_eq!(grid_side(16), Some(4));
        assert_eq!(grid_side(9), Some(3));
        assert_eq!(grid_side(8), None);
        assert_eq!(grid_side(12), None);
        assert_eq!(grid_side(1), None, "1x1 grids are below the minimum");
        assert_eq!(grid_side(0), None);
    }

    #[test]
    fn log2_exact_accepts_exactly_powers_of_two() {
        assert_eq!(log2_exact(16), Some(4));
        assert_eq!(log2_exact(2), Some(1));
        assert_eq!(log2_exact(12), None);
        assert_eq!(log2_exact(1), None, "a 1-node space has no partner");
        assert_eq!(log2_exact(0), None);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        // 4x4 grid: node 1 = (1,0) -> (0,1) = node 4.
        assert_eq!(transpose(16, NodeId(1)), Some(NodeId(4)));
        assert_eq!(transpose(16, NodeId(7)), Some(NodeId(13)));
        // Diagonal maps to itself.
        assert_eq!(transpose(16, NodeId(5)), Some(NodeId(5)));
        assert_eq!(transpose(12, NodeId(0)), None);
    }

    #[test]
    fn transpose_is_an_involution() {
        for s in 0..16u32 {
            let t = transpose(16, NodeId(s)).unwrap();
            assert_eq!(transpose(16, t), Some(NodeId(s)));
        }
    }

    #[test]
    fn bit_reverse_reverses_addresses() {
        // 16 nodes, 4 bits: 0001 -> 1000.
        assert_eq!(bit_reverse(16, NodeId(0b0001)), Some(NodeId(0b1000)));
        assert_eq!(bit_reverse(16, NodeId(0b0110)), Some(NodeId(0b0110)));
        assert_eq!(bit_reverse(16, NodeId(0b1011)), Some(NodeId(0b1101)));
        assert_eq!(bit_reverse(9, NodeId(0)), None);
        for s in 0..16u32 {
            let t = bit_reverse(16, NodeId(s)).unwrap();
            assert_eq!(bit_reverse(16, t), Some(NodeId(s)), "involution at {s}");
        }
    }

    #[test]
    fn shuffle_rotates_left() {
        // 8 nodes, 3 bits: 011 -> 110, 100 -> 001.
        assert_eq!(shuffle(8, NodeId(0b011)), Some(NodeId(0b110)));
        assert_eq!(shuffle(8, NodeId(0b100)), Some(NodeId(0b001)));
        assert_eq!(shuffle(8, NodeId(0)), Some(NodeId(0)));
        assert_eq!(shuffle(8, NodeId(7)), Some(NodeId(7)));
        assert_eq!(shuffle(10, NodeId(0)), None);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut seen = [false; 16];
        for s in 0..16u32 {
            let t = shuffle(16, NodeId(s)).unwrap();
            assert!(!seen[t.idx()], "shuffle collides at {s}");
            seen[t.idx()] = true;
        }
    }

    #[test]
    fn tornado_rotates_within_the_row() {
        // 4x4: offset = ceil(4/2) - 1 = 1; node 3 = (3,0) -> (0,0) = 0.
        assert_eq!(tornado(16, NodeId(3)), Some(NodeId(0)));
        assert_eq!(tornado(16, NodeId(4)), Some(NodeId(5)));
        // 3x3: offset = 1.
        assert_eq!(tornado(9, NodeId(2)), Some(NodeId(0)));
        assert_eq!(tornado(8, NodeId(0)), None);
        // Rows are preserved.
        for s in 0..16u32 {
            let t = tornado(16, NodeId(s)).unwrap();
            assert_eq!(t.idx() / 4, s as usize / 4, "tornado left row at {s}");
        }
    }

    #[test]
    fn neighbor_wraps_and_never_self_maps() {
        assert_eq!(neighbor(8, NodeId(0)), NodeId(1));
        assert_eq!(neighbor(8, NodeId(7)), NodeId(0));
        for n in [2usize, 5, 9, 16] {
            for s in 0..n as u32 {
                assert_ne!(neighbor(n, NodeId(s)), NodeId(s));
            }
        }
    }
}
