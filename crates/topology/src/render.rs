//! Structural renderings of topologies.
//!
//! Regenerates the paper's structural figures in textual form:
//!
//! * Fig. 2 — Quarc vs Spidergon topology: [`to_dot`] emits Graphviz DOT for
//!   any [`Topology`]; [`ring_ascii`] draws the ring-based topologies as
//!   ASCII art.
//! * Fig. 3 — broadcast in the Quarc: [`broadcast_trace`] prints the four
//!   streams of a broadcast with their visit orders and final destinations.
//!
//! Beyond the structural figures, [`heatmap_ascii`] and [`heatmap_svg`]
//! join a topology's channel table with a flight-recorder
//! [`UtilSeries`] into congestion heatmaps: the ASCII form ranks links
//! by how hot they ran, the SVG form paints the full time × channel
//! grid.

use crate::channel::ChannelKind;
use crate::ids::NodeId;
use crate::network::Topology;
use noc_telemetry::UtilSeries;
use std::fmt::Write as _;

/// Emit a Graphviz DOT description of the link channels of a topology.
///
/// Injection/ejection channels are omitted (they are node-internal);
/// parallel links (e.g. the doubled Quarc cross link) are both emitted, so
/// the Quarc/Spidergon difference is visible in the output.
pub fn to_dot(topo: &dyn Topology) -> String {
    let net = topo.network();
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", topo.name());
    let _ = writeln!(out, "  layout=circo;");
    for i in 0..net.num_nodes() {
        let _ = writeln!(out, "  n{i} [shape=circle];");
    }
    for ch in net.links() {
        let style = if ch.label.starts_with('x') {
            " [style=dashed]"
        } else {
            ""
        };
        let _ = writeln!(out, "  n{} -> n{}{};", ch.from, ch.to, style);
    }
    let _ = writeln!(out, "}}");
    out
}

/// ASCII summary of a ring-based topology: per-node outgoing links.
pub fn ring_ascii(topo: &dyn Topology) -> String {
    let net = topo.network();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} (N = {}, {} ports/node, {} channels)",
        topo.name(),
        net.num_nodes(),
        net.ports_per_node(),
        net.num_channels()
    );
    for i in 0..net.num_nodes() {
        let node = NodeId(i as u32);
        let outs: Vec<String> = net
            .links()
            .filter(|c| c.from == node)
            .map(|c| c.label.clone())
            .collect();
        let _ = writeln!(out, "  n{i:>3}: {}", outs.join(", "));
    }
    out
}

/// Textual trace of a broadcast operation (Fig. 3): one line per stream
/// with port, final destination (the header's destination address) and the
/// visit order of absorbed nodes.
pub fn broadcast_trace(topo: &dyn Topology, src: NodeId) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "broadcast from node {} on {} (N = {}):",
        src,
        topo.name(),
        topo.num_nodes()
    );
    for stream in topo.broadcast_streams(src) {
        let visits: Vec<String> = stream.targets.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(
            out,
            "  port {}: dst={} links={} visits [{}]",
            stream.port,
            stream.path.dst,
            stream.path.link_count(),
            visits.join(", ")
        );
    }
    out
}

fn kind_tag(kind: ChannelKind) -> &'static str {
    match kind {
        ChannelKind::Injection => "inj",
        ChannelKind::Link => "link",
        ChannelKind::Ejection => "ej",
    }
}

/// ASCII congestion heatmap: the topology's channels ranked by mean
/// window utilization (hottest first), one bar per channel, annotated
/// with the peak window — the congestion a mean hides. At most
/// `max_rows` channels are shown (0 = all); idle channels are always
/// folded into the trailing census line, so a truncated listing says
/// what it dropped.
///
/// The series must come from a run over the same topology:
/// `util.channels` must equal the network's channel count.
pub fn heatmap_ascii(topo: &dyn Topology, util: &UtilSeries, max_rows: usize) -> String {
    let net = topo.network();
    assert_eq!(
        util.channels as usize,
        net.num_channels(),
        "utilization series and topology disagree on channel count"
    );
    let mean = util.mean_per_channel();
    let peak = util.peak_per_channel();
    let mut order: Vec<usize> = (0..net.num_channels()).collect();
    order.sort_by(|&a, &b| mean[b].total_cmp(&mean[a]).then(a.cmp(&b)));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} link utilization, {} windows x {} cycles (mean | peak):",
        topo.name(),
        util.num_windows(),
        util.window
    );
    let busy = order.iter().filter(|&&c| mean[c] > 0.0).count();
    let shown = if max_rows == 0 {
        busy
    } else {
        busy.min(max_rows)
    };
    const BAR: usize = 40;
    for &c in order.iter().take(shown) {
        let ch = net.channel(crate::ids::ChannelId(c as u32));
        let filled = ((mean[c] * BAR as f64).round() as usize).min(BAR);
        let _ = writeln!(
            out,
            "  {:>4} {:<14} [{}{}] {:>5.1}% | {:>5.1}%",
            kind_tag(ch.kind),
            ch.label,
            "#".repeat(filled),
            "-".repeat(BAR - filled),
            mean[c] * 100.0,
            peak[c] * 100.0,
        );
    }
    let _ = writeln!(
        out,
        "  ({} of {} channels carried traffic; {} shown, {} idle)",
        busy,
        net.num_channels(),
        shown,
        net.num_channels() - busy
    );
    out
}

/// SVG congestion heatmap: the full time × channel grid, one cell per
/// `(window, channel)` painted white (idle) through red (saturated),
/// channel labels on the left, windows running left to right. The
/// output is a standalone SVG document.
pub fn heatmap_svg(topo: &dyn Topology, util: &UtilSeries) -> String {
    let net = topo.network();
    assert_eq!(
        util.channels as usize,
        net.num_channels(),
        "utilization series and topology disagree on channel count"
    );
    let u = util.utilization();
    let rows = net.num_channels();
    let cols = util.num_windows();
    const CELL: usize = 8;
    const LABEL_W: usize = 130;
    const HEADER_H: usize = 18;
    let width = LABEL_W + cols.max(1) * CELL + 4;
    let height = HEADER_H + rows * CELL + 4;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="monospace" font-size="7">"#
    );
    let _ = writeln!(
        out,
        r#"  <text x="2" y="11" font-size="9">{} utilization ({} windows x {} cycles)</text>"#,
        topo.name(),
        cols,
        util.window
    );
    for r in 0..rows {
        let ch = net.channel(crate::ids::ChannelId(r as u32));
        let y = HEADER_H + r * CELL;
        let _ = writeln!(
            out,
            r#"  <text x="2" y="{}">{} {}</text>"#,
            y + CELL - 1,
            kind_tag(ch.kind),
            ch.label
        );
        for (c, row) in u.iter().enumerate() {
            // White (idle) to pure red (fully utilised), clamped.
            let frac = row[r].clamp(0.0, 1.0);
            let cool = (255.0 * (1.0 - frac)).round() as u8;
            let _ = writeln!(
                out,
                r#"  <rect x="{}" y="{y}" width="{CELL}" height="{CELL}" fill="rgb(255,{cool},{cool})"/>"#,
                LABEL_W + c * CELL,
            );
        }
    }
    let _ = writeln!(out, "</svg>");
    out
}

/// Per-channel census used by diagnostics: counts per kind.
pub fn channel_census(topo: &dyn Topology) -> (usize, usize, usize) {
    let net = topo.network();
    let mut inj = 0;
    let mut link = 0;
    let mut ej = 0;
    for c in net.channels() {
        match c.kind {
            ChannelKind::Injection => inj += 1,
            ChannelKind::Link => link += 1,
            ChannelKind::Ejection => ej += 1,
        }
    }
    (inj, link, ej)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quarc::Quarc;
    use crate::spidergon::Spidergon;

    #[test]
    fn dot_contains_all_nodes_and_doubled_cross() {
        let q = Quarc::new(8).unwrap();
        let dot = to_dot(&q);
        for i in 0..8 {
            assert!(dot.contains(&format!("n{i} ")));
        }
        // Quarc has two dashed cross links 0 -> 4.
        let cross = dot.matches("n0 -> n4 [style=dashed]").count();
        assert_eq!(cross, 2, "Quarc doubles the cross link");

        let sp = Spidergon::new(8).unwrap();
        let dot = to_dot(&sp);
        let cross = dot.matches("n0 -> n4 [style=dashed]").count();
        assert_eq!(cross, 1, "Spidergon has a single cross link");
    }

    #[test]
    fn broadcast_trace_matches_paper_example() {
        let q = Quarc::new(16).unwrap();
        let t = broadcast_trace(&q, NodeId(0));
        assert!(t.contains("dst=4"));
        assert!(t.contains("dst=5"));
        assert!(t.contains("dst=11"));
        assert!(t.contains("dst=12"));
    }

    #[test]
    fn dot_renders_every_topology() {
        use crate::hypercube::Hypercube;
        use crate::mesh::{Mesh, MeshKind};
        use crate::ring::Ring;
        let topos: Vec<Box<dyn crate::network::Topology>> = vec![
            Box::new(Quarc::new(8).unwrap()),
            Box::new(Spidergon::new(8).unwrap()),
            Box::new(Ring::new(5).unwrap()),
            Box::new(Mesh::new(3, 3, MeshKind::Mesh).unwrap()),
            Box::new(Mesh::new(3, 3, MeshKind::Torus).unwrap()),
            Box::new(Hypercube::new(3).unwrap()),
        ];
        for t in &topos {
            let dot = to_dot(t.as_ref());
            assert!(dot.starts_with(&format!("digraph {}", t.name())));
            // One edge line per link channel.
            let edges = dot.matches(" -> ").count();
            assert_eq!(edges, t.network().links().count(), "{}", t.name());
        }
    }

    #[test]
    fn heatmap_ascii_ranks_hot_channels_and_reports_truncation() {
        let q = Quarc::new(8).unwrap();
        let n = q.network().num_channels();
        let mut util = UtilSeries::new(10, n);
        util.record_range(3, 0, 20); // channel 3: fully busy, 2 windows
        util.record(5, 0); // channel 5: one flit
        let map = heatmap_ascii(&q, &util, 0);
        let lines: Vec<&str> = map.lines().collect();
        let ch3 = q.network().channel(crate::ids::ChannelId(3));
        assert!(
            lines[1].contains(&ch3.label),
            "hottest channel ranks first:\n{map}"
        );
        assert!(lines[1].contains("100.0%"));
        assert_eq!(lines.len(), 4, "header + 2 busy channels + census");
        assert!(map.contains(&format!("2 of {n} channels carried traffic")));
        // A capped listing still accounts for what it dropped.
        let capped = heatmap_ascii(&q, &util, 1);
        assert_eq!(capped.lines().count(), 3);
        assert!(capped.contains("1 shown"));
    }

    #[test]
    fn heatmap_svg_is_a_complete_grid() {
        let q = Quarc::new(8).unwrap();
        let n = q.network().num_channels();
        let mut util = UtilSeries::new(4, n);
        util.record_range(0, 0, 8); // two windows
        let svg = heatmap_svg(&q, &util);
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(
            svg.matches("<rect ").count(),
            2 * n,
            "one cell per (window, channel)"
        );
        // A saturated cell is pure red, an idle one white.
        assert!(svg.contains("rgb(255,0,0)"));
        assert!(svg.contains("rgb(255,255,255)"));
        assert_eq!(svg.matches("<text ").count(), n + 1, "labels + title");
    }

    #[test]
    #[should_panic(expected = "disagree on channel count")]
    fn heatmap_rejects_mismatched_series() {
        let q = Quarc::new(8).unwrap();
        let util = UtilSeries::new(4, 3);
        let _ = heatmap_ascii(&q, &util, 0);
    }

    #[test]
    fn census_adds_up() {
        let q = Quarc::new(16).unwrap();
        let (inj, link, ej) = channel_census(&q);
        assert_eq!(inj, 64);
        assert_eq!(link, 64);
        assert_eq!(ej, 64);
        let ascii = ring_ascii(&q);
        assert!(ascii.contains("4 ports/node"));
    }
}
