//! Structural renderings of topologies.
//!
//! Regenerates the paper's structural figures in textual form:
//!
//! * Fig. 2 — Quarc vs Spidergon topology: [`to_dot`] emits Graphviz DOT for
//!   any [`Topology`]; [`ring_ascii`] draws the ring-based topologies as
//!   ASCII art.
//! * Fig. 3 — broadcast in the Quarc: [`broadcast_trace`] prints the four
//!   streams of a broadcast with their visit orders and final destinations.

use crate::channel::ChannelKind;
use crate::ids::NodeId;
use crate::network::Topology;
use std::fmt::Write as _;

/// Emit a Graphviz DOT description of the link channels of a topology.
///
/// Injection/ejection channels are omitted (they are node-internal);
/// parallel links (e.g. the doubled Quarc cross link) are both emitted, so
/// the Quarc/Spidergon difference is visible in the output.
pub fn to_dot(topo: &dyn Topology) -> String {
    let net = topo.network();
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", topo.name());
    let _ = writeln!(out, "  layout=circo;");
    for i in 0..net.num_nodes() {
        let _ = writeln!(out, "  n{i} [shape=circle];");
    }
    for ch in net.links() {
        let style = if ch.label.starts_with('x') {
            " [style=dashed]"
        } else {
            ""
        };
        let _ = writeln!(out, "  n{} -> n{}{};", ch.from, ch.to, style);
    }
    let _ = writeln!(out, "}}");
    out
}

/// ASCII summary of a ring-based topology: per-node outgoing links.
pub fn ring_ascii(topo: &dyn Topology) -> String {
    let net = topo.network();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} (N = {}, {} ports/node, {} channels)",
        topo.name(),
        net.num_nodes(),
        net.ports_per_node(),
        net.num_channels()
    );
    for i in 0..net.num_nodes() {
        let node = NodeId(i as u32);
        let outs: Vec<String> = net
            .links()
            .filter(|c| c.from == node)
            .map(|c| c.label.clone())
            .collect();
        let _ = writeln!(out, "  n{i:>3}: {}", outs.join(", "));
    }
    out
}

/// Textual trace of a broadcast operation (Fig. 3): one line per stream
/// with port, final destination (the header's destination address) and the
/// visit order of absorbed nodes.
pub fn broadcast_trace(topo: &dyn Topology, src: NodeId) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "broadcast from node {} on {} (N = {}):",
        src,
        topo.name(),
        topo.num_nodes()
    );
    for stream in topo.broadcast_streams(src) {
        let visits: Vec<String> = stream.targets.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(
            out,
            "  port {}: dst={} links={} visits [{}]",
            stream.port,
            stream.path.dst,
            stream.path.link_count(),
            visits.join(", ")
        );
    }
    out
}

/// Per-channel census used by diagnostics: counts per kind.
pub fn channel_census(topo: &dyn Topology) -> (usize, usize, usize) {
    let net = topo.network();
    let mut inj = 0;
    let mut link = 0;
    let mut ej = 0;
    for c in net.channels() {
        match c.kind {
            ChannelKind::Injection => inj += 1,
            ChannelKind::Link => link += 1,
            ChannelKind::Ejection => ej += 1,
        }
    }
    (inj, link, ej)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quarc::Quarc;
    use crate::spidergon::Spidergon;

    #[test]
    fn dot_contains_all_nodes_and_doubled_cross() {
        let q = Quarc::new(8).unwrap();
        let dot = to_dot(&q);
        for i in 0..8 {
            assert!(dot.contains(&format!("n{i} ")));
        }
        // Quarc has two dashed cross links 0 -> 4.
        let cross = dot.matches("n0 -> n4 [style=dashed]").count();
        assert_eq!(cross, 2, "Quarc doubles the cross link");

        let sp = Spidergon::new(8).unwrap();
        let dot = to_dot(&sp);
        let cross = dot.matches("n0 -> n4 [style=dashed]").count();
        assert_eq!(cross, 1, "Spidergon has a single cross link");
    }

    #[test]
    fn broadcast_trace_matches_paper_example() {
        let q = Quarc::new(16).unwrap();
        let t = broadcast_trace(&q, NodeId(0));
        assert!(t.contains("dst=4"));
        assert!(t.contains("dst=5"));
        assert!(t.contains("dst=11"));
        assert!(t.contains("dst=12"));
    }

    #[test]
    fn dot_renders_every_topology() {
        use crate::hypercube::Hypercube;
        use crate::mesh::{Mesh, MeshKind};
        use crate::ring::Ring;
        let topos: Vec<Box<dyn crate::network::Topology>> = vec![
            Box::new(Quarc::new(8).unwrap()),
            Box::new(Spidergon::new(8).unwrap()),
            Box::new(Ring::new(5).unwrap()),
            Box::new(Mesh::new(3, 3, MeshKind::Mesh).unwrap()),
            Box::new(Mesh::new(3, 3, MeshKind::Torus).unwrap()),
            Box::new(Hypercube::new(3).unwrap()),
        ];
        for t in &topos {
            let dot = to_dot(t.as_ref());
            assert!(dot.starts_with(&format!("digraph {}", t.name())));
            // One edge line per link channel.
            let edges = dot.matches(" -> ").count();
            assert_eq!(edges, t.network().links().count(), "{}", t.name());
        }
    }

    #[test]
    fn census_adds_up() {
        let q = Quarc::new(16).unwrap();
        let (inj, link, ej) = channel_census(&q);
        assert_eq!(inj, 64);
        assert_eq!(link, 64);
        assert_eq!(ej, 64);
        let ascii = ring_ascii(&q);
        assert!(ascii.contains("4 ports/node"));
    }
}
