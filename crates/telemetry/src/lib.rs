//! # noc-telemetry
//!
//! Flight-recorder observability for the simulators: answers *why* a run
//! behaved the way it did, not just *what* its means were.
//!
//! Three independent instruments, all engine-agnostic and all disabled by
//! default (a disabled instrument costs one predictable branch per tap):
//!
//! * **Event tracing** — [`TraceSink`] receives flit-level
//!   [`TraceEvent`]s (injections, channel grants/releases, absorptions,
//!   op completions, stall cycles). [`VecSink`] keeps everything;
//!   [`RingSink`] keeps the most recent `capacity` events so a saturated
//!   run's trace stays bounded — a flight recorder. The drained
//!   [`TraceLog`] exports to Chrome-trace/Perfetto JSON
//!   ([`chrome_trace`]) with one track per channel and per node.
//! * **Streaming quantiles** — [`LogHistogram`], an HDR-style
//!   log-linear histogram: exact counts below 64, bounded relative error
//!   (≤ 1/32 per bucket) above, mergeable across replicates by pure
//!   count addition. Replaces Welford-only latency summaries wherever a
//!   tail (P50/P95/P99/max) matters.
//! * **Utilization time series** — [`UtilSeries`], windowed per-channel
//!   flit counts over the measurement window, the substrate for
//!   congestion heatmaps. Integer counts, so the two engines' series are
//!   comparable bit-for-bit.
//!
//! What is recorded is controlled by the serializable [`TelemetrySpec`]
//! carried on the simulator configuration; the engines build the sinks
//! from the spec at construction time. The overhead policy is strict:
//! with the spec at its [`TelemetrySpec::default`] (everything off) every
//! tap reduces to an `Option` check on a `None`, and run results are
//! bit-identical to a build without the taps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod perfetto;
mod spec;
mod trace;
mod util;

pub use hist::LogHistogram;
pub use perfetto::{chrome_trace, validate_chrome_trace, TrackNames};
pub use spec::{TelemetrySpec, TraceMode};
pub use trace::{RingSink, TraceEvent, TraceEventKind, TraceLog, TraceSink, VecSink};
pub use util::UtilSeries;
