//! Windowed per-channel utilization time series.

use serde::{Deserialize, Serialize};

/// Per-channel flit counts in fixed-width cycle windows over the
/// measurement period — the substrate for congestion heatmaps.
///
/// Counts are integers (flits moved on a channel within a window), so
/// two engines producing the same move sets produce *identical* series:
/// the engine-equivalence suite compares them with `==`, no tolerance.
/// Windows are indexed by `offset / window` where `offset` counts
/// measured cycles from 0; rows are appended on demand, so the series
/// length is `ceil(measured_cycles / window)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilSeries {
    /// Window width in cycles.
    pub window: u32,
    /// Channel count (row width).
    pub channels: u32,
    /// `counts[window_index][channel]` — flits the channel moved in the
    /// window.
    pub counts: Vec<Vec<u64>>,
}

impl UtilSeries {
    /// An empty series over `channels` channels with `window`-cycle
    /// windows (min 1).
    pub fn new(window: u32, channels: usize) -> Self {
        UtilSeries {
            window: window.max(1),
            channels: channels as u32,
            counts: Vec::new(),
        }
    }

    #[inline]
    fn row(&mut self, idx: usize) -> &mut Vec<u64> {
        while self.counts.len() <= idx {
            self.counts.push(vec![0; self.channels as usize]);
        }
        &mut self.counts[idx]
    }

    /// One flit moved on `channel` at measured-cycle offset `off`
    /// (cycles since the start of the measurement window, 0-based).
    #[inline]
    pub fn record(&mut self, channel: usize, off: u64) {
        let idx = (off / self.window as u64) as usize;
        self.row(idx)[channel] += 1;
    }

    /// `k` flits moved on `channel`, one per cycle, at offsets
    /// `start_off .. start_off + k` — the event engine's streaming
    /// fast-forward. Split across window boundaries in closed form.
    pub fn record_range(&mut self, channel: usize, start_off: u64, k: u64) {
        let w = self.window as u64;
        let mut off = start_off;
        let end = start_off + k;
        while off < end {
            let next = (off / w + 1) * w;
            let take = next.min(end) - off;
            let idx = (off / w) as usize;
            self.row(idx)[channel] += take;
            off += take;
        }
    }

    /// Number of windows with any recorded cycle.
    pub fn num_windows(&self) -> usize {
        self.counts.len()
    }

    /// Utilization (fraction of window cycles the channel moved a flit)
    /// per window per channel. The final window may be partial; it is
    /// normalised by the full window width, slightly understating its
    /// utilization — deterministic and documented rather than patched.
    pub fn utilization(&self) -> Vec<Vec<f64>> {
        let w = self.window as f64;
        self.counts
            .iter()
            .map(|row| row.iter().map(|&c| c as f64 / w).collect())
            .collect()
    }

    /// Per-channel peak window utilization — the congestion a mean
    /// hides.
    pub fn peak_per_channel(&self) -> Vec<f64> {
        let mut peak = vec![0.0f64; self.channels as usize];
        for row in self.utilization() {
            for (p, u) in peak.iter_mut().zip(row) {
                *p = p.max(u);
            }
        }
        peak
    }

    /// Per-channel mean window utilization.
    pub fn mean_per_channel(&self) -> Vec<f64> {
        let n = self.counts.len().max(1) as f64;
        let mut mean = vec![0.0f64; self.channels as usize];
        for row in self.utilization() {
            for (m, u) in mean.iter_mut().zip(row) {
                *m += u / n;
            }
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_range_agree() {
        let mut a = UtilSeries::new(10, 3);
        let mut b = UtilSeries::new(10, 3);
        // 25 consecutive cycles on channel 1 starting at offset 7.
        for off in 7..32 {
            a.record(1, off);
        }
        b.record_range(1, 7, 25);
        assert_eq!(a, b, "bulk split must equal per-cycle recording");
        assert_eq!(a.num_windows(), 4);
        assert_eq!(a.counts[0][1], 3, "offsets 7..10");
        assert_eq!(a.counts[1][1], 10);
        assert_eq!(a.counts[2][1], 10);
        assert_eq!(a.counts[3][1], 2, "offsets 30..32");
    }

    #[test]
    fn utilization_normalises_by_window() {
        let mut s = UtilSeries::new(4, 2);
        s.record_range(0, 0, 4); // channel 0 fully busy in window 0
        s.record(1, 1); // channel 1 one flit
        let u = s.utilization();
        assert_eq!(u[0][0], 1.0);
        assert_eq!(u[0][1], 0.25);
        assert_eq!(s.peak_per_channel(), vec![1.0, 0.25]);
        assert_eq!(s.mean_per_channel(), vec![1.0, 0.25]);
    }

    #[test]
    fn empty_series_is_harmless() {
        let s = UtilSeries::new(16, 4);
        assert_eq!(s.num_windows(), 0);
        assert_eq!(s.peak_per_channel(), vec![0.0; 4]);
        assert_eq!(s.utilization(), Vec::<Vec<f64>>::new());
    }

    #[test]
    fn series_round_trips_through_json() {
        let mut s = UtilSeries::new(8, 2);
        s.record_range(0, 3, 20);
        s.record(1, 0);
        let json = serde::json::to_string(&s);
        let back: UtilSeries = serde::json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
