//! The serializable switchboard: what a run records.

use serde::{Deserialize, Serialize};

/// Event-trace capture mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceMode {
    /// No tracing: every trace tap is a single branch on a `None`.
    #[default]
    Off,
    /// Record every event, unbounded. Fine for short diagnostic runs;
    /// a saturated standard-length run can emit tens of millions of
    /// events — prefer [`TraceMode::Ring`] there.
    Full,
    /// Flight recorder: keep only the most recent `capacity` events,
    /// counting what was dropped. The right mode for saturated runs,
    /// where the interesting part is the end.
    Ring {
        /// Maximum events retained (oldest evicted first).
        capacity: u32,
    },
}

/// What one simulation run records beyond its always-on summary
/// statistics. Carried (by value — the spec is small and `Copy`) on the
/// simulator configuration and serialized with it, so a scenario's cache
/// key covers its telemetry settings.
///
/// The default is everything off; see the crate docs for the overhead
/// policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySpec {
    /// Event-trace capture mode.
    pub trace: TraceMode,
    /// Width, in cycles, of the per-channel utilization windows; `0`
    /// disables the time series. Only cycles inside the measurement
    /// window are recorded, so a series spans
    /// `ceil(measure_cycles / util_window)` windows.
    pub util_window: u32,
}

impl TelemetrySpec {
    /// Everything off (the default): zero-overhead taps.
    pub fn off() -> Self {
        TelemetrySpec::default()
    }

    /// Is any instrument enabled?
    pub fn enabled(&self) -> bool {
        self.trace != TraceMode::Off || self.util_window > 0
    }

    /// This spec with the given trace mode (builder style).
    pub fn with_trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// This spec with utilization windows of `cycles` (builder style).
    pub fn with_util_window(mut self, cycles: u32) -> Self {
        self.util_window = cycles;
        self
    }

    /// A ready-made flight-recorder profile: ring trace of `capacity`
    /// events plus a utilization series with `window`-cycle windows.
    pub fn flight_recorder(capacity: u32, window: u32) -> Self {
        TelemetrySpec {
            trace: TraceMode::Ring { capacity },
            util_window: window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_disabled() {
        let spec = TelemetrySpec::default();
        assert_eq!(spec.trace, TraceMode::Off);
        assert_eq!(spec.util_window, 0);
        assert!(!spec.enabled());
        assert_eq!(spec, TelemetrySpec::off());
    }

    #[test]
    fn builders_enable_instruments() {
        assert!(TelemetrySpec::off().with_trace(TraceMode::Full).enabled());
        assert!(TelemetrySpec::off().with_util_window(64).enabled());
        let fr = TelemetrySpec::flight_recorder(1024, 256);
        assert_eq!(fr.trace, TraceMode::Ring { capacity: 1024 });
        assert_eq!(fr.util_window, 256);
    }

    #[test]
    fn spec_round_trips_through_json() {
        for spec in [
            TelemetrySpec::off(),
            TelemetrySpec::off().with_trace(TraceMode::Full),
            TelemetrySpec::flight_recorder(4096, 128),
        ] {
            let json = serde::json::to_string(&spec);
            let back: TelemetrySpec = serde::json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }
}
