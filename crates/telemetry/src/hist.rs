//! Streaming, mergeable log-bucketed histogram for latency quantiles.

use serde::{Deserialize, Serialize};

/// Sub-buckets per octave: the resolution knob. 32 gives a worst-case
/// relative bucket width of 1/32 ≈ 3.1% — tighter than any latency
/// effect the figures care about, at ≤ 1920 buckets for the full `u64`
/// range.
const SUB: u64 = 32;

/// An HDR-style log-linear histogram of `u64` samples (cycle counts).
///
/// * Values below `2·SUB = 64` are recorded **exactly** (one bucket per
///   value).
/// * Above, each power-of-two octave is split into `SUB = 32` equal
///   sub-buckets, so a bucket's width is at most `1/32` of its lower
///   edge: any quantile estimate `est` of a true value `x` satisfies
///   `x ≤ est ≤ x·(1 + 1/32) + 1`.
/// * Merging is bucket-count addition — exact, associative and
///   commutative — so per-replicate histograms combine into the
///   across-replicate tail without approximation beyond the bucketing
///   itself.
///
/// Count, sum, min and max are tracked exactly. The struct is plain data
/// (`PartialEq`, serde), so the engine-equivalence suite can require the
/// two engines' histograms to be identical bucket-for-bucket.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Bucket counts, indexed by [`bucket_index`]; never longer than
    /// needed for the highest non-empty bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index of a value: identity below 64, log-linear above.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB {
        v as usize
    } else {
        // Most significant bit position m ≥ 6; shift the value so its
        // top 6 bits remain (32 sub-buckets within the octave).
        let m = 63 - v.leading_zeros() as u64;
        let shift = m - 5;
        (shift * SUB + (v >> shift)) as usize
    }
}

/// Largest value mapping to bucket `i` (the quantile estimate the bucket
/// reports).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < 2 * SUB {
        i
    } else {
        let shift = i / SUB - 1;
        let sub = i - shift * SUB;
        ((sub + 1) << shift) - 1
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let i = bucket_index(v);
        if self.counts.len() <= i {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += n;
        self.count += n;
        self.sum += v * n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one (bucket-count addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact smallest sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`0 < q ≤ 1`) under the `sorted[ceil(q·n) − 1]`
    /// convention, reported as the upper edge of the rank's bucket
    /// (clamped to the exact max, so `quantile(1.0) == max`). `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// `quantile` as an `f64`, `NaN` when empty — the shape latency
    /// summaries carry.
    pub fn quantile_f64(&self, q: f64) -> f64 {
        self.quantile(q).map(|v| v as f64).unwrap_or(f64::NAN)
    }

    /// Median estimate (`NaN` when empty).
    pub fn p50(&self) -> f64 {
        self.quantile_f64(0.50)
    }

    /// 95th-percentile estimate (`NaN` when empty).
    pub fn p95(&self) -> f64 {
        self.quantile_f64(0.95)
    }

    /// 99th-percentile estimate (`NaN` when empty).
    pub fn p99(&self) -> f64 {
        self.quantile_f64(0.99)
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
        // Below 64 every value owns a bucket: quantiles are exact.
        assert_eq!(h.quantile(0.5), Some(31));
        assert_eq!(h.quantile(1.0), Some(63));
        assert_eq!(h.quantile(1.0 / 64.0), Some(0));
    }

    #[test]
    fn bucket_edges_tile_the_line() {
        // Every value maps to a bucket whose upper edge is ≥ the value
        // and within the 1/32 relative-error bound; bucket indices are
        // monotone in the value.
        let mut prev = 0;
        for v in (0..10_000u64).chain([1 << 20, (1 << 20) + 12345, u64::MAX / 2]) {
            let i = bucket_index(v);
            assert!(i >= prev, "indices monotone at {v}");
            prev = i;
            let upper = bucket_upper(i);
            assert!(upper >= v, "upper edge covers {v}");
            assert!(
                upper as u128 <= v as u128 + (v as u128 / 32) + 1,
                "edge {upper} too far above {v}"
            );
        }
    }

    #[test]
    fn merge_is_count_addition() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [3u64, 70, 70, 999, 100_000] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 70, 2_000_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all, "merge equals recording the concatenation");
        assert_eq!(a.count(), 8);
        assert_eq!(a.max(), Some(2_000_000));
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut a = LogHistogram::new();
        a.record(42);
        let snapshot = a.clone();
        a.merge(&LogHistogram::new());
        assert_eq!(a, snapshot);
        let mut e = LogHistogram::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn empty_histogram_reports_safely() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), None);
        assert!(h.p99().is_nan());
        assert!(h.mean().is_nan());
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn json_round_trip_preserves_buckets() {
        let mut h = LogHistogram::new();
        for v in [1u64, 64, 65, 4097, 123_456_789] {
            h.record(v);
        }
        let json = serde::json::to_string(&h);
        let back: LogHistogram = serde::json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
