//! Flit-level event records and the sinks that capture them.

use serde::{Deserialize, Serialize};

/// What happened at a trace tap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A message entered a node's injection queue (`loc` = node).
    Inject,
    /// A channel was granted to a message — the start of an occupancy
    /// span (`loc` = channel).
    Grant,
    /// A channel's owner released it — the end of an occupancy span
    /// (`loc` = channel).
    Release,
    /// A stream's tail was absorbed at a target (`loc` = node).
    Absorb,
    /// A multicast operation completed at every target (`loc` = source
    /// node).
    OpDone,
    /// A cycle in which no flit moved while traffic was in flight
    /// (`loc` unused).
    Stall,
}

/// One flight-recorder record: a cycle-stamped event at a location.
///
/// The record is deliberately flat and `Copy` — the hot path appends it
/// to a `Vec`; interpretation (channel vs node locus) follows the
/// [`TraceEventKind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The cycle the event occurred on.
    pub at: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// Channel id (`Grant`/`Release`) or node id
    /// (`Inject`/`Absorb`/`OpDone`); `0` for `Stall`.
    pub loc: u32,
}

/// A drained trace: events in recording order plus how many were evicted
/// by a bounded sink.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLog {
    /// Captured events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted by a bounded sink (0 for [`VecSink`]).
    pub dropped: u64,
}

/// Receives trace events during a run and surrenders them at the end.
///
/// Implementations must be cheap on `record` — it sits on the engine's
/// per-event path whenever tracing is enabled.
pub trait TraceSink: std::fmt::Debug + Send {
    /// Append one event.
    fn record(&mut self, ev: TraceEvent);
    /// Surrender the captured log (the sink is spent afterwards).
    fn drain(&mut self) -> TraceLog;
}

/// Unbounded sink: keeps every event. Memory grows with the run — use
/// for short diagnostic runs.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty unbounded sink.
    pub fn new() -> Self {
        VecSink::default()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    fn drain(&mut self) -> TraceLog {
        TraceLog {
            events: std::mem::take(&mut self.events),
            dropped: 0,
        }
    }
}

/// Bounded flight recorder: keeps the most recent `capacity` events,
/// evicting the oldest and counting what was lost. A saturated run's
/// trace stays bounded while the interesting part — the end — survives.
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn drain(&mut self) -> TraceLog {
        let mut events = std::mem::take(&mut self.buf);
        events.rotate_left(self.head);
        self.head = 0;
        TraceLog {
            events,
            dropped: std::mem::take(&mut self.dropped),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> TraceEvent {
        TraceEvent {
            at,
            kind: TraceEventKind::Grant,
            loc: at as u32,
        }
    }

    #[test]
    fn vec_sink_keeps_everything_in_order() {
        let mut s = VecSink::new();
        for at in 0..100 {
            s.record(ev(at));
        }
        let log = s.drain();
        assert_eq!(log.events.len(), 100);
        assert_eq!(log.dropped, 0);
        assert!(log.events.windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn ring_sink_keeps_the_most_recent_events() {
        let mut s = RingSink::new(10);
        for at in 0..25 {
            s.record(ev(at));
        }
        let log = s.drain();
        assert_eq!(log.events.len(), 10);
        assert_eq!(log.dropped, 15);
        let ats: Vec<u64> = log.events.iter().map(|e| e.at).collect();
        assert_eq!(ats, (15..25).collect::<Vec<_>>(), "oldest first");
    }

    #[test]
    fn ring_sink_below_capacity_drops_nothing() {
        let mut s = RingSink::new(100);
        for at in 0..7 {
            s.record(ev(at));
        }
        let log = s.drain();
        assert_eq!(log.events.len(), 7);
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn trace_log_round_trips_through_json() {
        let log = TraceLog {
            events: vec![
                TraceEvent {
                    at: 5,
                    kind: TraceEventKind::Inject,
                    loc: 3,
                },
                TraceEvent {
                    at: 9,
                    kind: TraceEventKind::Stall,
                    loc: 0,
                },
            ],
            dropped: 2,
        };
        let json = serde::json::to_string(&log);
        let back: TraceLog = serde::json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }
}
