//! Chrome-trace / Perfetto JSON export of a drained [`TraceLog`].
//!
//! The emitted document follows the Trace Event Format that both
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly:
//!
//! * process 0 carries **one track per channel**; each Grant→Release
//!   pair becomes a complete (`"ph": "X"`) occupancy span on its
//!   channel's track;
//! * process 1 carries **one track per node**; injections, absorptions
//!   and op completions are instant (`"ph": "i"`) events;
//! * process 2 is the engine track; stall cycles land there.
//!
//! Track labels come from the caller (the bench layer builds them from
//! the topology), keeping this crate free of topology dependencies.
//! Events are emitted sorted by timestamp, so a well-formed export is
//! also monotonic — [`validate_chrome_trace`] checks both properties and
//! is run by the figure binary and CI on every emitted trace.

use crate::trace::{TraceEventKind, TraceLog};
use serde::Value;
use std::collections::HashMap;

/// Human-readable track labels, indexed by channel id / node id. Missing
/// entries fall back to `ch<i>` / `n<i>`.
#[derive(Clone, Debug, Default)]
pub struct TrackNames {
    /// One label per channel (process 0 tracks).
    pub channels: Vec<String>,
    /// One label per node (process 1 tracks).
    pub nodes: Vec<String>,
}

const PID_CHANNELS: u64 = 0;
const PID_NODES: u64 = 1;
const PID_ENGINE: u64 = 2;

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn meta(pid: u64, tid: u64, name: &str) -> Value {
    map(vec![
        ("name", Value::Str("thread_name".into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("ts", Value::U64(0)),
        ("args", map(vec![("name", Value::Str(name.to_string()))])),
    ])
}

fn span(tid: u64, ts: u64, dur: u64) -> Value {
    map(vec![
        ("name", Value::Str("occupied".into())),
        ("ph", Value::Str("X".into())),
        ("pid", Value::U64(PID_CHANNELS)),
        ("tid", Value::U64(tid)),
        ("ts", Value::U64(ts)),
        ("dur", Value::U64(dur)),
    ])
}

fn instant(name: &str, pid: u64, tid: u64, ts: u64) -> Value {
    map(vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str("i".into())),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("ts", Value::U64(ts)),
        ("s", Value::Str("t".into())),
    ])
}

/// Render a drained trace as a Chrome-trace JSON document.
///
/// One microsecond of trace time per simulated cycle (`ts` is the cycle
/// number verbatim). Grants whose release fell outside the capture (or
/// was evicted by a ring sink) are closed at the last captured cycle;
/// releases whose grant was evicted open at their own cycle with zero
/// duration.
pub fn chrome_trace(log: &TraceLog, tracks: &TrackNames) -> String {
    let last_ts = log.events.last().map(|e| e.at).unwrap_or(0);
    let mut events: Vec<Value> = Vec::new();

    // Metadata: name every track that actually appears.
    let mut seen_channels: Vec<u32> = Vec::new();
    let mut seen_nodes: Vec<u32> = Vec::new();
    let mut saw_stall = false;
    for ev in &log.events {
        match ev.kind {
            TraceEventKind::Grant | TraceEventKind::Release => {
                if !seen_channels.contains(&ev.loc) {
                    seen_channels.push(ev.loc);
                }
            }
            TraceEventKind::Inject | TraceEventKind::Absorb | TraceEventKind::OpDone => {
                if !seen_nodes.contains(&ev.loc) {
                    seen_nodes.push(ev.loc);
                }
            }
            TraceEventKind::Stall => saw_stall = true,
        }
    }
    seen_channels.sort_unstable();
    seen_nodes.sort_unstable();
    for &ch in &seen_channels {
        let label = tracks
            .channels
            .get(ch as usize)
            .cloned()
            .unwrap_or_else(|| format!("ch{ch}"));
        events.push(meta(PID_CHANNELS, ch as u64, &label));
    }
    for &n in &seen_nodes {
        let label = tracks
            .nodes
            .get(n as usize)
            .cloned()
            .unwrap_or_else(|| format!("n{n}"));
        events.push(meta(PID_NODES, n as u64, &label));
    }
    if saw_stall {
        events.push(meta(PID_ENGINE, 0, "engine stalls"));
    }

    // Body: pair grants with releases into occupancy spans.
    let mut open: HashMap<u32, u64> = HashMap::new();
    for ev in &log.events {
        match ev.kind {
            TraceEventKind::Grant => {
                // A re-grant without a release cannot happen in the
                // engines; if a truncated capture produces one anyway,
                // close the older span at the new grant.
                if let Some(start) = open.insert(ev.loc, ev.at) {
                    events.push(span(ev.loc as u64, start, ev.at - start));
                }
            }
            TraceEventKind::Release => match open.remove(&ev.loc) {
                Some(start) => events.push(span(ev.loc as u64, start, ev.at - start)),
                // The grant predates the capture window: zero-length
                // marker so the release stays visible.
                None => events.push(span(ev.loc as u64, ev.at, 0)),
            },
            TraceEventKind::Inject => {
                events.push(instant("inject", PID_NODES, ev.loc as u64, ev.at))
            }
            TraceEventKind::Absorb => {
                events.push(instant("absorb", PID_NODES, ev.loc as u64, ev.at))
            }
            TraceEventKind::OpDone => {
                events.push(instant("op done", PID_NODES, ev.loc as u64, ev.at))
            }
            TraceEventKind::Stall => events.push(instant("stall", PID_ENGINE, 0, ev.at)),
        }
    }
    // Spans still open at the end of the capture.
    let mut dangling: Vec<(u32, u64)> = open.into_iter().collect();
    dangling.sort_unstable();
    for (ch, start) in dangling {
        events.push(span(ch as u64, start, last_ts.saturating_sub(start)));
    }

    // Monotonic output: stable sort by timestamp keeps same-cycle events
    // in recording order and metadata first.
    events.sort_by_key(|e| match e.get("ts") {
        Some(Value::U64(ts)) => *ts,
        _ => 0,
    });

    let doc = map(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
        ("droppedEvents", Value::U64(log.dropped)),
    ]);
    serde::json::to_string(&doc)
}

/// Check that `json` is a well-formed Chrome-trace document: parses as
/// JSON, has a `traceEvents` array whose entries all carry a phase and a
/// `u64` timestamp, and the timestamps are monotonically non-decreasing.
/// Returns the event count.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let doc: Value = serde::json::from_str(json).map_err(|e| format!("not JSON: {e}"))?;
    let events = match doc.get("traceEvents") {
        Some(Value::Seq(events)) => events,
        Some(other) => return Err(format!("traceEvents is a {}, not an array", other.kind())),
        None => return Err("missing traceEvents".into()),
    };
    let mut prev = 0u64;
    for (i, ev) in events.iter().enumerate() {
        match ev.get("ph") {
            Some(Value::Str(_)) => {}
            _ => return Err(format!("event {i} has no phase")),
        }
        let ts = match ev.get("ts") {
            Some(Value::U64(ts)) => *ts,
            _ => return Err(format!("event {i} has no u64 timestamp")),
        };
        if ts < prev {
            return Err(format!("event {i} goes back in time: {ts} after {prev}"));
        }
        prev = ts;
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn demo_log() -> TraceLog {
        use TraceEventKind::*;
        let mk = |at, kind, loc| TraceEvent { at, kind, loc };
        TraceLog {
            events: vec![
                mk(10, Inject, 2),
                mk(11, Grant, 7),
                mk(15, Absorb, 3),
                mk(18, Release, 7),
                mk(20, Grant, 7),
                mk(22, OpDone, 2),
                mk(23, Stall, 0),
            ],
            dropped: 4,
        }
    }

    #[test]
    fn export_is_valid_and_monotonic() {
        let tracks = TrackNames {
            channels: (0..8).map(|i| format!("link{i}")).collect(),
            nodes: (0..4).map(|i| format!("node{i}")).collect(),
        };
        let json = chrome_trace(&demo_log(), &tracks);
        let n = validate_chrome_trace(&json).expect("well-formed trace");
        // 7 input events → 1 full span + 1 dangling span + 4 instants +
        // metadata (1 channel, 2 nodes, 1 engine).
        assert_eq!(n, 10);
        assert!(json.contains("\"link7\""), "channel track is named");
        assert!(json.contains("\"node2\""), "node track is named");
        assert!(json.contains("\"droppedEvents\":4"));
    }

    #[test]
    fn grant_release_becomes_a_span() {
        let json = chrome_trace(&demo_log(), &TrackNames::default());
        assert!(json.contains("\"ph\":\"X\""), "complete events present");
        assert!(json.contains("\"dur\":7"), "span 11→18 has duration 7");
        // Unnamed tracks fall back to generated labels.
        assert!(json.contains("\"ch7\""));
    }

    #[test]
    fn empty_log_exports_cleanly() {
        let json = chrome_trace(&TraceLog::default(), &TrackNames::default());
        assert_eq!(validate_chrome_trace(&json), Ok(0));
    }

    #[test]
    fn validator_rejects_garbage_and_time_travel() {
        assert!(validate_chrome_trace("{ not json").is_err());
        assert!(validate_chrome_trace("{\"a\":1}").is_err());
        let back_in_time = r#"{"traceEvents":[
            {"ph":"i","ts":10},{"ph":"i","ts":3}]}"#;
        assert!(validate_chrome_trace(back_in_time)
            .unwrap_err()
            .contains("back in time"));
    }
}
