//! Cycle-precise micro scenarios with hand-derived expected timings,
//! executed against **both** engines through the [`SimEngine`] trait.
//!
//! These tests pin the exact semantics of the wormhole engines: injection
//! serialisation, FIFO link arbitration, blocking duration, virtual-channel
//! bandwidth sharing and multicast/unicast equivalences. Every expected
//! number below is derived by hand from the timing conventions in the
//! crate docs (one flit per channel per cycle, one-cycle credit loop,
//! grants at end of cycle). Running each scenario on the cycle-stepped
//! reference and the event-driven engine keeps the zero-load `L + H + 1`
//! exactness (and every contention timing) a property of the *contract*,
//! not of one implementation.

use noc_sim::{EngineKind, EventSimulator, SimConfig, SimEngine, Simulator};
use noc_topology::{NodeId, Quarc, Topology};
use noc_workloads::{DestinationSets, Workload};

const L: u64 = 8; // message length in flits for these scenarios

fn fixture(n: usize) -> (Quarc, Workload) {
    let topo = Quarc::new(n).unwrap();
    let sets = DestinationSets::random(&topo, 2, 1);
    let wl = Workload::new(L as u32, 0.0, 0.0, sets).unwrap();
    (topo, wl)
}

/// Isolated latency over a path with `links` links is `L + links + 1`.
fn isolated(links: u64) -> u64 {
    L + links + 1
}

/// Run `scenario` against a fresh engine of each kind, labelling failures
/// with the engine under test.
fn on_both_engines(
    topo: &dyn Topology,
    wl: &Workload,
    mut scenario: impl FnMut(&mut dyn SimEngine, &str),
) {
    let cfg = SimConfig::quick(1);
    let mut cycle = Simulator::new(topo, wl, cfg.with_engine(EngineKind::Cycle));
    scenario(&mut cycle, "cycle engine");
    let mut event = EventSimulator::new(topo, wl, cfg);
    scenario(&mut event, "event engine");
}

#[test]
fn back_to_back_same_port_serialise_on_the_injection_channel() {
    // Two messages from node 0 to node 2 (clockwise, same port). The
    // second acquires the injection channel when the first's tail leaves
    // its buffer (traverses the first link) at g + L + 1, so it finishes
    // exactly L + 1 cycles after the first.
    let (topo, wl) = fixture(16);
    on_both_engines(&topo, &wl, |sim, eng| {
        let g = sim.now();
        let m1 = sim.inject_unicast_now(NodeId(0), NodeId(2));
        let m2 = sim.inject_unicast_now(NodeId(0), NodeId(2));
        let t1 = sim.run_until_complete(m1);
        let t2 = sim.run_until_complete(m2);
        assert_eq!(t1 - g, isolated(2), "{eng}: first message is unobstructed");
        assert_eq!(t2 - t1, L + 1, "{eng}: second waits for injection release");
    });
}

#[test]
fn different_ports_of_one_node_do_not_serialise() {
    // Node 0 sends clockwise (to 2) and counter-clockwise (to 14)
    // simultaneously; the all-port router gives each its own injection
    // channel, so both complete at the isolated latency.
    let (topo, wl) = fixture(16);
    on_both_engines(&topo, &wl, |sim, eng| {
        let g = sim.now();
        let m1 = sim.inject_unicast_now(NodeId(0), NodeId(2));
        let m2 = sim.inject_unicast_now(NodeId(0), NodeId(14));
        let t1 = sim.run_until_complete(m1);
        let t2 = sim.run_until_complete(m2);
        assert_eq!(t1 - g, isolated(2), "{eng}");
        assert_eq!(t2 - g, isolated(2), "{eng}");
    });
}

#[test]
fn fifo_arbitration_earlier_request_wins_and_blocks_exactly_l_cycles() {
    // m1: 0 -> 2 needs links cw0, cw1. m2: 1 -> 3 needs links cw1, cw2.
    // Injected the same cycle, m2's header requests cw1 at g+1 (straight
    // from injection) while m1's header requests it at g+2 (after
    // traversing cw0) — FIFO grants m2 first. m1 then waits until m2's
    // tail leaves cw1's buffer, which adds exactly L cycles:
    //   m2 completes at g + L + 3 (isolated),
    //   m1 completes at g + 2L + 3.
    let (topo, wl) = fixture(16);
    on_both_engines(&topo, &wl, |sim, eng| {
        let g = sim.now();
        let m1 = sim.inject_unicast_now(NodeId(0), NodeId(2));
        let m2 = sim.inject_unicast_now(NodeId(1), NodeId(3));
        let t2 = sim.run_until_complete(m2);
        let t1 = sim.run_until_complete(m1);
        assert_eq!(
            t2 - g,
            isolated(2),
            "{eng}: m2 wins arbitration and is unobstructed"
        );
        assert_eq!(
            t1 - g,
            isolated(2) + L,
            "{eng}: m1 blocks for exactly one message drain"
        );
    });
}

#[test]
fn non_overlapping_paths_do_not_interact() {
    // 0 -> 2 (cw links 0,1) and 4 -> 6 (cw links 4,5): disjoint resources.
    let (topo, wl) = fixture(16);
    on_both_engines(&topo, &wl, |sim, eng| {
        let g = sim.now();
        let m1 = sim.inject_unicast_now(NodeId(0), NodeId(2));
        let m2 = sim.inject_unicast_now(NodeId(4), NodeId(6));
        let t1 = sim.run_until_complete(m1);
        let t2 = sim.run_until_complete(m2);
        assert_eq!(t1 - g, isolated(2), "{eng}");
        assert_eq!(t2 - g, isolated(2), "{eng}");
    });
}

#[test]
fn vc_multiplexing_shares_physical_bandwidth_fairly() {
    // Quarc N=8: m1 goes 7 -> 1 clockwise, crossing the 7->0 dateline, so
    // it rides VC1 on links 7->0 and 0->1. m2 goes 0 -> 2 on VC0 over
    // links 0->1 and 1->2. The physical link 0->1 is shared by the two
    // VCs; round-robin multiplexing interleaves them flit by flit:
    //
    //   m2 flit k crosses 0->1 at g + 2 + 2k (VC0 goes first, rr = 0),
    //   m1 flit k crosses 0->1 at g + 3 + 2k,
    //
    // after which each drains its private downstream channel, so BOTH
    // tails absorb at exactly g + 2L + 2 — unlike strict head-of-line
    // serialisation, which would delay one of them by a full drain.
    let (topo, wl) = fixture(8);
    on_both_engines(&topo, &wl, |sim, eng| {
        let g = sim.now();
        let m1 = sim.inject_unicast_now(NodeId(7), NodeId(1));
        let m2 = sim.inject_unicast_now(NodeId(0), NodeId(2));
        let t1 = sim.run_until_complete(m1);
        let t2 = sim.run_until_complete(m2);
        assert_eq!(t1 - g, 2 * L + 2, "{eng}: m1 shares the link flit-by-flit");
        assert_eq!(t2 - g, 2 * L + 2, "{eng}: m2 shares the link flit-by-flit");
        // Both beat strict serialisation (isolated + L = 2L + 3) while
        // paying more than the isolated latency (L + 3).
        assert!(t1 - g > isolated(2) && t1 - g < isolated(2) + L, "{eng}");
    });
}

#[test]
fn one_port_spidergon_serialises_at_the_ejection_channel() {
    // Two one-link messages arrive at node 0 from opposite directions
    // (1 -> 0 counter-clockwise, 7 -> 0 clockwise). The one-port Spidergon
    // has a single ejection channel, so the loser of the FIFO arbitration
    // waits a full drain: winner at L + 2, loser at 2L + 2. On the
    // all-port Quarc the same scenario does not contend at all — the
    // architectural difference the paper's Fig. 1 illustrates.
    use noc_topology::Spidergon;
    let spid = Spidergon::new(8).unwrap();
    let sets = DestinationSets::random(&spid, 2, 1);
    let wl = Workload::new(L as u32, 0.0, 0.0, sets).unwrap();
    on_both_engines(&spid, &wl, |sim, eng| {
        let g = sim.now();
        let m1 = sim.inject_unicast_now(NodeId(1), NodeId(0));
        let m2 = sim.inject_unicast_now(NodeId(7), NodeId(0));
        let t1 = sim.run_until_complete(m1);
        let t2 = sim.run_until_complete(m2);
        let (w, l) = (t1.min(t2), t1.max(t2));
        assert_eq!(w - g, L + 2, "{eng}: winner is unobstructed");
        assert_eq!(l - g, 2 * L + 2, "{eng}: loser waits one full drain");
    });

    // Same scenario on the Quarc: distinct ejection channels per input
    // direction, no contention.
    let (quarc, qwl) = fixture(8);
    on_both_engines(&quarc, &qwl, |sim, eng| {
        let g = sim.now();
        let q1 = sim.inject_unicast_now(NodeId(1), NodeId(0));
        let q2 = sim.inject_unicast_now(NodeId(7), NodeId(0));
        let t1 = sim.run_until_complete(q1);
        let t2 = sim.run_until_complete(q2);
        assert_eq!(t1 - g, L + 2, "{eng}");
        assert_eq!(t2 - g, L + 2, "{eng}");
    });
}

#[test]
fn single_target_multicast_times_equal_unicast() {
    let (topo, wl) = fixture(16);
    for dst in [1u32, 4, 8, 5, 11, 12] {
        let sets = DestinationSets::explicit({
            let mut v = vec![Vec::new(); 16];
            v[0] = vec![NodeId(dst)];
            v
        });
        let wl_mc = Workload::new(L as u32, 0.0, 0.0, sets).unwrap();
        let mut results = Vec::new();
        on_both_engines(&topo, &wl_mc, |sim, eng| {
            let mc = sim.measure_isolated_multicast(NodeId(0));
            results.push((eng.to_string(), mc));
        });
        on_both_engines(&topo, &wl, |sim, eng| {
            let uc = sim.measure_isolated_unicast(NodeId(0), NodeId(dst));
            for (mc_eng, mc) in &results {
                assert_eq!(
                    *mc, uc,
                    "single-target multicast to {dst} ({mc_eng}) equals unicast ({eng})"
                );
            }
        });
    }
}

#[test]
fn multicast_completion_is_the_slowest_stream() {
    // Targets at clockwise distance 1 and counter-clockwise distance 4:
    // the op completes with the deeper stream: L + 4 + 1.
    let (topo, _) = fixture(16);
    let sets = DestinationSets::explicit({
        let mut v = vec![Vec::new(); 16];
        v[0] = vec![NodeId(1), NodeId(12)];
        v
    });
    let wl = Workload::new(L as u32, 0.0, 0.0, sets).unwrap();
    on_both_engines(&topo, &wl, |sim, eng| {
        let lat = sim.measure_isolated_multicast(NodeId(0));
        assert_eq!(lat, L + 4 + 1, "{eng}");
    });
}

#[test]
fn absorb_and_forward_does_not_stall_the_stream() {
    // A cross-left stream absorbing at every visited node (targets 8,7,6,5
    // from node 0) must complete in exactly the same time as a plain
    // unicast to the final node 5 — cloning at intermediate targets costs
    // no cycles (simultaneous receive-and-forward, §3.3.2).
    let (topo, wl) = fixture(16);
    let sets = DestinationSets::explicit({
        let mut v = vec![Vec::new(); 16];
        v[0] = vec![NodeId(8), NodeId(7), NodeId(6), NodeId(5)];
        v
    });
    let wl_mc = Workload::new(L as u32, 0.0, 0.0, sets).unwrap();
    let mut mc_results = Vec::new();
    on_both_engines(&topo, &wl_mc, |sim, eng| {
        mc_results.push((eng.to_string(), sim.measure_isolated_multicast(NodeId(0))));
    });
    on_both_engines(&topo, &wl, |sim, eng| {
        let uc = sim.measure_isolated_unicast(NodeId(0), NodeId(5));
        for (mc_eng, mc) in &mc_results {
            assert_eq!(
                *mc, uc,
                "absorb-and-forward must be free ({mc_eng} vs {eng})"
            );
        }
    });
}

#[test]
fn broadcast_behind_a_unicast_waits_one_drain_on_the_contended_port() {
    // A unicast 0 -> 2 departs first; a broadcast from 0 follows
    // immediately. Its clockwise stream shares the cw injection channel
    // and must wait L + 1 cycles; the other three streams are free, but
    // the op latency is governed by the blocked cw stream:
    //   cw stream completes at (L + 1) + L + (4 + 1).
    let (topo, _) = fixture(16);
    let sets = DestinationSets::broadcast(&topo);
    let wl = Workload::new(L as u32, 0.0, 0.0, sets).unwrap();
    on_both_engines(&topo, &wl, |sim, eng| {
        let g = sim.now();
        let uni = sim.inject_unicast_now(NodeId(0), NodeId(2));
        let streams = sim.inject_multicast_now(NodeId(0));
        for id in streams {
            sim.run_until_complete(id);
        }
        let op_done = sim.now();
        sim.run_until_complete(uni);
        // Free streams take L + 5; the cw stream is delayed by the
        // unicast's injection occupancy (L + 1 cycles), finishing at
        // 2L + 6.
        assert_eq!(op_done - g, (L + 1) + L + 5, "{eng}");
    });
}

#[test]
fn zero_load_l_h_1_exactness_holds_for_both_engines() {
    // The documented identity on every engine, over a spread of pairs and
    // message lengths (the integration sweep covers all pairs on the
    // reference; this pins the contract for both implementations).
    let topo = Quarc::new(16).unwrap();
    for msg_len in [2u32, L as u32, 32] {
        let sets = DestinationSets::random(&topo, 2, 1);
        let wl = Workload::new(msg_len, 0.0, 0.0, sets).unwrap();
        on_both_engines(&topo, &wl, |sim, eng| {
            for (s, d) in [(0u32, 1u32), (0, 8), (5, 1), (3, 15)] {
                let lat = sim.measure_isolated_unicast(NodeId(s), NodeId(d));
                let hops = topo.unicast_path(NodeId(s), NodeId(d)).hop_count() as u64;
                assert_eq!(
                    lat,
                    msg_len as u64 + hops,
                    "{eng}: L + H + 1 identity for {s}->{d} at len {msg_len}"
                );
            }
        });
    }
}

#[test]
fn scripted_injections_compose_with_poisson_background_on_both_engines() {
    // The scripted hooks must behave identically under background traffic
    // too: same seed, same background, same completion cycles.
    let topo = Quarc::new(16).unwrap();
    let sets = DestinationSets::random(&topo, 4, 9);
    let wl = Workload::new(L as u32, 0.01, 0.1, sets).unwrap();
    let cfg = SimConfig::quick(17);
    let mut cycle = Simulator::new(&topo, &wl, cfg.with_engine(EngineKind::Cycle));
    let mut event = EventSimulator::new(&topo, &wl, cfg);
    let completions: Vec<u64> = {
        let run = |sim: &mut dyn SimEngine| {
            for _ in 0..100 {
                sim.step_one();
            }
            let id = sim.inject_unicast_now(NodeId(0), NodeId(5));
            sim.run_until_complete(id)
        };
        vec![run(&mut cycle), run(&mut event)]
    };
    assert_eq!(
        completions[0], completions[1],
        "scripted injection under background traffic must agree"
    );
}
