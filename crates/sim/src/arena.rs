//! Dense slab arenas with generation-tagged ids for the engines' hot
//! state.
//!
//! The engines allocate and free messages and multicast operations at
//! every injection and absorption. The original layout — a
//! `Vec<Option<T>>` plus an explicit free list — costs an `Option`
//! discriminant branch on every slot access in the inner loops, and a
//! stale id (an engine bug) silently resolves to whatever message reused
//! the slot. An [`Arena`] keeps the same dense storage and LIFO slot
//! reuse (so allocation order, and with it every downstream ordering, is
//! unchanged) but:
//!
//! * values live in a plain `Vec<T>` with *exactly* the element stride
//!   of the reference engine's storage, while each slot's one-byte meta
//!   tag (odd = live, even = free; bumped on every transition) sits in a
//!   dense sidecar — a few KB that stays cache-hot — so validation is a
//!   single byte compare that costs no value-array bandwidth, and
//! * ids carry the slot's tag, so an access through a stale id panics
//!   with the violated invariant by name instead of returning a recycled
//!   stranger's state.
//!
//! Ids stay plain `u32` ([`Arena::INDEX_BITS`] low bits of slot index,
//! 8 wrapping tag bits above), so `MsgId`/`OpId` and every structure
//! holding them (`CvState` owners and waiters, the
//! engines' move lists) are untouched by the migration. The tag wraps
//! after 128 reuse cycles of one slot; within that window every stale
//! access is caught.

/// A slab arena of `T` addressed by generation-tagged `u32` ids.
#[derive(Clone, Debug, Default)]
pub struct Arena<T> {
    /// Slot values. A freed slot's value stays in place (dropped lazily,
    /// on reuse) so the array is always fully initialized.
    values: Vec<T>,
    /// Per-slot liveness/generation tags: odd = live, even = free;
    /// incremented (wrapping) on insert into a reused slot and on free,
    /// so a live id's tag matches iff the slot still holds the value it
    /// was issued for.
    metas: Vec<u8>,
    /// Freed slot indices, reused LIFO — the same reuse order as the
    /// engines' original explicit free lists.
    free: Vec<u32>,
}

impl<T> Arena<T> {
    /// Low bits of an id holding the slot index; the remaining high bits
    /// hold the slot tag.
    pub const INDEX_BITS: u32 = 24;

    const INDEX_MASK: u32 = (1 << Self::INDEX_BITS) - 1;

    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            values: Vec::new(),
            metas: Vec::new(),
            free: Vec::new(),
        }
    }

    /// An empty arena with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            values: Vec::with_capacity(cap),
            metas: Vec::with_capacity(cap),
            free: Vec::new(),
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.values.len() - self.free.len()
    }

    /// Any live values?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn index(id: u32) -> usize {
        (id & Self::INDEX_MASK) as usize
    }

    #[inline]
    fn tag(id: u32) -> u8 {
        (id >> Self::INDEX_BITS) as u8
    }

    #[inline]
    fn id_of(index: usize, tag: u8) -> u32 {
        ((tag as u32) << Self::INDEX_BITS) | index as u32
    }

    /// Insert a value; returns its generation-tagged id. Freed slots are
    /// reused LIFO before the arena grows.
    pub fn insert(&mut self, value: T) -> u32 {
        if let Some(idx) = self.free.pop() {
            let i = idx as usize;
            debug_assert_eq!(self.metas[i] & 1, 0, "free list holds a live slot");
            let tag = self.metas[i].wrapping_add(1); // even -> odd: live
            self.metas[i] = tag;
            self.values[i] = value;
            Arena::<T>::id_of(i, tag)
        } else {
            let i = self.values.len();
            assert!(
                i < Self::INDEX_MASK as usize,
                "arena overflow: more than 2^{} live slots",
                Self::INDEX_BITS
            );
            self.values.push(value);
            self.metas.push(1);
            Arena::<T>::id_of(i, 1)
        }
    }

    /// Free the slot behind `id`. The value itself is dropped lazily, on
    /// slot reuse — freeing stays off the hot path's drop glue.
    ///
    /// # Panics
    ///
    /// Panics (naming `what`) when `id` is stale or already free.
    pub fn free(&mut self, id: u32, what: &str) {
        let i = self.check(id, what);
        self.metas[i] = self.metas[i].wrapping_add(1); // odd -> even: free
        self.free.push(i as u32);
    }

    /// The live value behind `id`.
    ///
    /// # Panics
    ///
    /// Panics (naming `what`) when `id` is stale or freed — arena
    /// corruption surfaces as a diagnosable invariant violation instead
    /// of an `Option::unwrap` on `None` or a recycled value.
    #[inline]
    pub fn get(&self, id: u32, what: &str) -> &T {
        let i = self.check(id, what);
        &self.values[i]
    }

    /// Mutable access to the live value behind `id`.
    ///
    /// # Panics
    ///
    /// Panics (naming `what`) when `id` is stale or freed.
    #[inline]
    pub fn get_mut(&mut self, id: u32, what: &str) -> &mut T {
        let i = self.check(id, what);
        &mut self.values[i]
    }

    /// The value behind `id`, or `None` when the id is stale or freed —
    /// for callers probing liveness rather than asserting it.
    #[inline]
    pub fn try_get(&self, id: u32) -> Option<&T> {
        let i = Arena::<T>::index(id);
        match self.metas.get(i) {
            Some(&meta) if meta == Arena::<T>::tag(id) => Some(&self.values[i]),
            _ => None,
        }
    }

    /// Is `id` live (right slot, right tag)?
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        let i = Arena::<T>::index(id);
        matches!(self.metas.get(i), Some(&meta) if meta == Arena::<T>::tag(id))
    }

    /// Iterate over the live `(id, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.metas
            .iter()
            .zip(self.values.iter())
            .enumerate()
            .filter(|(_, (&meta, _))| meta & 1 == 1)
            .map(|(i, (&meta, value))| (Arena::<T>::id_of(i, meta), value))
    }

    /// Validate `id` and return its slot index, panicking with the
    /// violated invariant by name otherwise. Live ids always carry an odd
    /// tag, so one byte compare covers both liveness and staleness.
    #[inline]
    fn check(&self, id: u32, what: &str) -> usize {
        let i = Arena::<T>::index(id);
        match self.metas.get(i) {
            Some(&meta) if meta == Arena::<T>::tag(id) => i,
            _ => self.bad_id(id, what),
        }
    }

    #[cold]
    #[inline(never)]
    fn bad_id(&self, id: u32, what: &str) -> ! {
        let i = Arena::<T>::index(id);
        let state = match self.metas.get(i) {
            None => "beyond the arena".to_string(),
            Some(&meta) if meta & 1 == 0 => format!("freed (slot tag {meta})"),
            Some(&meta) => format!("recycled (slot tag {meta})"),
        };
        panic!(
            "arena invariant violated: {what} references id {id} \
             (slot {i}, tag {}) but the slot is {state}",
            Arena::<T>::tag(id),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_free_roundtrip() {
        let mut a = Arena::new();
        let x = a.insert("x");
        let y = a.insert("y");
        assert_eq!(a.len(), 2);
        assert_eq!(*a.get(x, "test"), "x");
        assert_eq!(*a.get(y, "test"), "y");
        *a.get_mut(x, "test") = "x2";
        assert_eq!(*a.get(x, "test"), "x2");
        a.free(x, "test");
        assert_eq!(a.len(), 1);
        assert!(!a.contains(x));
        assert!(a.contains(y));
    }

    #[test]
    fn slots_are_reused_lifo_with_fresh_generations() {
        let mut a = Arena::new();
        let x = a.insert(1u32);
        let y = a.insert(2);
        a.free(y, "test");
        a.free(x, "test");
        // LIFO: x's slot (freed last) is handed out first.
        let z = a.insert(3);
        assert_eq!(
            z & ((1 << Arena::<u32>::INDEX_BITS) - 1),
            x & ((1 << Arena::<u32>::INDEX_BITS) - 1)
        );
        assert_ne!(z, x, "the reused slot carries a new generation");
        assert!(!a.contains(x));
        assert_eq!(*a.get(z, "test"), 3);
    }

    #[test]
    fn iter_visits_exactly_the_live_values() {
        let mut a = Arena::new();
        let ids: Vec<u32> = (0..5).map(|v| a.insert(v)).collect();
        a.free(ids[1], "test");
        a.free(ids[3], "test");
        let seen: Vec<(u32, u32)> = a.iter().map(|(id, &v)| (id, v)).collect();
        assert_eq!(seen, vec![(ids[0], 0), (ids[2], 2), (ids[4], 4)]);
    }

    #[test]
    #[should_panic(expected = "arena invariant violated")]
    fn stale_id_access_names_the_invariant() {
        let mut a = Arena::new();
        let x = a.insert(7u8);
        a.free(x, "test");
        let _ = a.insert(8); // reuses the slot under a new generation
        let _ = a.get(x, "stale-owner");
    }

    #[test]
    #[should_panic(expected = "arena invariant violated")]
    fn double_free_names_the_invariant() {
        let mut a = Arena::new();
        let x = a.insert(7u8);
        a.free(x, "double-free");
        a.free(x, "double-free");
    }
}
