//! Shared measurement state of a simulation run.
//!
//! Both engines record deliveries through this one accumulator, so the
//! statistics pipeline (batch means, histograms, per-source populations,
//! conservation counters) is common code and the differential tests
//! compare engine *dynamics*, not bookkeeping.

use crate::config::SimConfig;
use crate::message::MulticastOp;
use crate::results::{EngineCounters, LatencyStats, SimResults};
use noc_queueing::{BatchMeans, Histogram, Welford};

/// Latency accumulators and conservation counters of one run.
#[derive(Clone, Debug)]
pub(crate) struct Metrics {
    unicast_lat: BatchMeans,
    multicast_lat: BatchMeans,
    multicast_hist: Histogram,
    multicast_by_source: Vec<Welford>,
    stream_lat: BatchMeans,
    pub(crate) unicast_injected: u64,
    pub(crate) unicast_delivered: u64,
    pub(crate) multicast_injected: u64,
    pub(crate) multicast_delivered: u64,
    pub(crate) total_generated: u64,
    pub(crate) total_absorbed: u64,
    pub(crate) flit_moves: u64,
    pub(crate) channel_traversals: Vec<u64>,
}

impl Metrics {
    pub(crate) fn new(cfg: &SimConfig, nodes: usize, channels: usize) -> Self {
        Metrics {
            unicast_lat: BatchMeans::new(cfg.batch_size),
            multicast_lat: BatchMeans::new(cfg.batch_size),
            multicast_hist: Histogram::new(4.0, 4096),
            multicast_by_source: vec![Welford::new(); nodes],
            stream_lat: BatchMeans::new(cfg.batch_size),
            unicast_injected: 0,
            unicast_delivered: 0,
            multicast_injected: 0,
            multicast_delivered: 0,
            total_generated: 0,
            total_absorbed: 0,
            flit_moves: 0,
            channel_traversals: vec![0; channels],
        }
    }

    /// One flit crossed `channel` at a cycle inside (`measuring`) or
    /// outside the measurement window.
    #[inline]
    pub(crate) fn record_flit_move(&mut self, channel: usize, measuring: bool) {
        self.flit_moves += 1;
        if measuring {
            self.channel_traversals[channel] += 1;
        }
    }

    /// `k` flits crossed `channel`, one per cycle, all inside or all
    /// outside the measurement window (the event engine's streaming
    /// fast-forward).
    #[inline]
    pub(crate) fn record_flit_moves_bulk(&mut self, channel: usize, k: u64, measuring: bool) {
        self.flit_moves += k;
        if measuring {
            self.channel_traversals[channel] += k;
        }
    }

    /// A tagged unicast was absorbed at `now`.
    pub(crate) fn record_unicast_delivery(&mut self, now: u64, gen: u64) {
        self.unicast_lat.push((now - gen) as f64);
        self.unicast_delivered += 1;
    }

    /// A tagged multicast operation completed (its last target absorbed
    /// the tail at `op.last_absorb`).
    pub(crate) fn record_op_delivery(&mut self, op: &MulticastOp) {
        let lat = (op.last_absorb - op.gen) as f64;
        self.multicast_lat.push(lat);
        self.multicast_hist.push(lat);
        self.multicast_by_source[op.src.idx()].push(lat);
        self.multicast_delivered += 1;
    }

    /// A tagged multicast stream absorbed at its own final target.
    pub(crate) fn record_stream_delivery(&mut self, now: u64, gen: u64) {
        self.stream_lat.push((now - gen) as f64);
    }

    /// Assemble the run results.
    ///
    /// `measured_cycles` must be the number of cycles actually spent
    /// inside the measurement window — a run that breaks out early (on
    /// saturation or a backlog overflow) measures fewer cycles than
    /// `cfg.measure_cycles`, and normalising by the configured window
    /// would understate channel utilisation exactly where it matters.
    pub(crate) fn finish(
        &self,
        saturated: bool,
        deadlocked: bool,
        cycles: u64,
        peak_backlog: usize,
        measured_cycles: u64,
        engine: EngineCounters,
    ) -> SimResults {
        let denom = measured_cycles.max(1) as f64;
        SimResults {
            unicast: LatencyStats::from_batch_means(&self.unicast_lat),
            multicast: LatencyStats::from_batch_means(&self.multicast_lat),
            multicast_by_source: self
                .multicast_by_source
                .iter()
                .map(LatencyStats::from_welford)
                .collect(),
            multicast_hist: self.multicast_hist.clone(),
            stream: LatencyStats::from_batch_means(&self.stream_lat),
            unicast_injected: self.unicast_injected,
            unicast_delivered: self.unicast_delivered,
            multicast_injected: self.multicast_injected,
            multicast_delivered: self.multicast_delivered,
            total_generated: self.total_generated,
            total_absorbed: self.total_absorbed,
            saturated,
            deadlocked,
            cycles,
            flit_moves: self.flit_moves,
            peak_backlog,
            channel_utilization: self
                .channel_traversals
                .iter()
                .map(|&t| t as f64 / denom)
                .collect(),
            engine,
            // The closed-loop driver stamps its summary after `finish`.
            closed_loop: None,
        }
    }
}
