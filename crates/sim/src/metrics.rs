//! Shared measurement state of a simulation run.
//!
//! Both engines record deliveries through this one accumulator, so the
//! statistics pipeline (batch means, histograms, per-source populations,
//! conservation counters) is common code and the differential tests
//! compare engine *dynamics*, not bookkeeping.
//!
//! The flight-recorder instruments live here too: the trace sink and the
//! utilization time series are built from the config's
//! [`noc_telemetry::TelemetrySpec`] and fed through `#[inline]` taps.
//! When telemetry is off every tap reduces to one branch on a `None` —
//! the overhead policy the perf smoke gate holds the engines to.

use crate::config::SimConfig;
use crate::message::MulticastOp;
use crate::results::{EngineCounters, LatencyHists, LatencyStats, SimResults};
use noc_queueing::{BatchMeans, Histogram, Welford};
use noc_telemetry::{
    RingSink, TraceEvent, TraceEventKind, TraceMode, TraceSink, UtilSeries, VecSink,
};

/// Latency accumulators and conservation counters of one run.
#[derive(Debug)]
pub(crate) struct Metrics {
    unicast_lat: BatchMeans,
    multicast_lat: BatchMeans,
    multicast_hist: Histogram,
    multicast_by_source: Vec<Welford>,
    stream_lat: BatchMeans,
    hists: LatencyHists,
    pub(crate) unicast_injected: u64,
    pub(crate) unicast_delivered: u64,
    pub(crate) multicast_injected: u64,
    pub(crate) multicast_delivered: u64,
    pub(crate) total_generated: u64,
    pub(crate) total_absorbed: u64,
    pub(crate) flit_moves: u64,
    pub(crate) channel_traversals: Vec<u64>,
    /// Event-trace sink; `None` when tracing is off.
    tracer: Option<Box<dyn TraceSink>>,
    /// Windowed utilization series; `None` when disabled.
    util: Option<UtilSeries>,
    /// Start of the measurement window (for utilization offsets: a flit
    /// moving at cycle `c` with `warmup < c <= measure_end` lands at
    /// offset `c - warmup - 1`).
    warmup: u64,
}

impl Metrics {
    /// `per_source` gates the per-node multicast latency populations:
    /// engines pass `false` for lazy (implicit-topology) plans, where a
    /// node-indexed accumulator vector is exactly the O(n) memory the
    /// implicit path exists to avoid at 64k+ nodes.
    pub(crate) fn new(cfg: &SimConfig, nodes: usize, channels: usize, per_source: bool) -> Self {
        let tracer: Option<Box<dyn TraceSink>> = match cfg.telemetry.trace {
            TraceMode::Off => None,
            TraceMode::Full => Some(Box::new(VecSink::new())),
            TraceMode::Ring { capacity } => Some(Box::new(RingSink::new(capacity as usize))),
        };
        let util = (cfg.telemetry.util_window > 0)
            .then(|| UtilSeries::new(cfg.telemetry.util_window, channels));
        Metrics {
            unicast_lat: BatchMeans::new(cfg.batch_size),
            multicast_lat: BatchMeans::new(cfg.batch_size),
            multicast_hist: Histogram::new(4.0, 4096),
            multicast_by_source: vec![Welford::new(); if per_source { nodes } else { 0 }],
            stream_lat: BatchMeans::new(cfg.batch_size),
            hists: LatencyHists::default(),
            unicast_injected: 0,
            unicast_delivered: 0,
            multicast_injected: 0,
            multicast_delivered: 0,
            total_generated: 0,
            total_absorbed: 0,
            flit_moves: 0,
            channel_traversals: vec![0; channels],
            tracer,
            util,
            warmup: cfg.warmup_cycles,
        }
    }

    /// Re-origin the utilization offsets. Closed-loop runs measure from
    /// cycle 1 with no warmup window, so their drivers set the origin to
    /// zero at install time.
    pub(crate) fn set_measure_origin(&mut self, warmup: u64) {
        self.warmup = warmup;
    }

    /// One flit crossed `channel` at cycle `now`, inside (`measuring`) or
    /// outside the measurement window.
    #[inline]
    pub(crate) fn record_flit_move(&mut self, now: u64, channel: usize, measuring: bool) {
        self.flit_moves += 1;
        if measuring {
            self.channel_traversals[channel] += 1;
            if let Some(u) = &mut self.util {
                u.record(channel, now - self.warmup - 1);
            }
        }
    }

    /// `k` flits crossed `channel`, one per cycle on cycles
    /// `start + 1 ..= start + k`, all inside or all outside the
    /// measurement window (the event engine's streaming fast-forward).
    #[inline]
    pub(crate) fn record_flit_moves_bulk(
        &mut self,
        start: u64,
        channel: usize,
        k: u64,
        measuring: bool,
    ) {
        self.flit_moves += k;
        if measuring {
            self.channel_traversals[channel] += k;
            if let Some(u) = &mut self.util {
                // First move at cycle start+1 → offset start - warmup.
                u.record_range(channel, start - self.warmup, k);
            }
        }
    }

    /// A tagged unicast was absorbed at `now`.
    pub(crate) fn record_unicast_delivery(&mut self, now: u64, gen: u64) {
        self.unicast_lat.push((now - gen) as f64);
        self.hists.unicast.record(now - gen);
        self.unicast_delivered += 1;
    }

    /// A tagged multicast operation completed (its last target absorbed
    /// the tail at `op.last_absorb`).
    pub(crate) fn record_op_delivery(&mut self, op: &MulticastOp) {
        let lat = (op.last_absorb - op.gen) as f64;
        self.multicast_lat.push(lat);
        self.multicast_hist.push(lat);
        if let Some(w) = self.multicast_by_source.get_mut(op.src.idx()) {
            w.push(lat);
        }
        self.hists.multicast.record(op.last_absorb - op.gen);
        self.multicast_delivered += 1;
    }

    /// A tagged multicast stream absorbed at its own final target.
    pub(crate) fn record_stream_delivery(&mut self, now: u64, gen: u64) {
        self.stream_lat.push((now - gen) as f64);
        self.hists.stream.record(now - gen);
    }

    // ----- trace taps (one `None` branch each when tracing is off) -----

    /// A message entered `node`'s injection queue.
    #[inline]
    pub(crate) fn trace_inject(&mut self, at: u64, node: u32) {
        if let Some(t) = &mut self.tracer {
            t.record(TraceEvent {
                at,
                kind: TraceEventKind::Inject,
                loc: node,
            });
        }
    }

    /// `channel` was granted to a message (occupancy span opens).
    #[inline]
    pub(crate) fn trace_grant(&mut self, at: u64, channel: usize) {
        if let Some(t) = &mut self.tracer {
            t.record(TraceEvent {
                at,
                kind: TraceEventKind::Grant,
                loc: channel as u32,
            });
        }
    }

    /// `channel`'s owner released it (occupancy span closes).
    #[inline]
    pub(crate) fn trace_release(&mut self, at: u64, channel: usize) {
        if let Some(t) = &mut self.tracer {
            t.record(TraceEvent {
                at,
                kind: TraceEventKind::Release,
                loc: channel as u32,
            });
        }
    }

    /// A stream's tail was absorbed at `node`.
    #[inline]
    pub(crate) fn trace_absorb(&mut self, at: u64, node: u32) {
        if let Some(t) = &mut self.tracer {
            t.record(TraceEvent {
                at,
                kind: TraceEventKind::Absorb,
                loc: node,
            });
        }
    }

    /// A multicast operation completed at every target (`node` = source).
    #[inline]
    pub(crate) fn trace_op_done(&mut self, at: u64, node: u32) {
        if let Some(t) = &mut self.tracer {
            t.record(TraceEvent {
                at,
                kind: TraceEventKind::OpDone,
                loc: node,
            });
        }
    }

    /// A cycle passed with traffic in flight but no flit movement.
    #[inline]
    pub(crate) fn trace_stall(&mut self, at: u64) {
        if let Some(t) = &mut self.tracer {
            t.record(TraceEvent {
                at,
                kind: TraceEventKind::Stall,
                loc: 0,
            });
        }
    }

    /// Assemble the run results (draining the trace sink).
    ///
    /// `measured_cycles` must be the number of cycles actually spent
    /// inside the measurement window — a run that breaks out early (on
    /// saturation or a backlog overflow) measures fewer cycles than
    /// `cfg.measure_cycles`, and normalising by the configured window
    /// would understate channel utilisation exactly where it matters.
    pub(crate) fn finish(
        &mut self,
        saturated: bool,
        deadlocked: bool,
        cycles: u64,
        peak_backlog: usize,
        measured_cycles: u64,
        engine: EngineCounters,
    ) -> SimResults {
        let denom = measured_cycles.max(1) as f64;
        SimResults {
            unicast: LatencyStats::from_batch_means(&self.unicast_lat)
                .with_quantiles(&self.hists.unicast),
            multicast: LatencyStats::from_batch_means(&self.multicast_lat)
                .with_quantiles(&self.hists.multicast),
            multicast_by_source: self
                .multicast_by_source
                .iter()
                .map(LatencyStats::from_welford)
                .collect(),
            multicast_hist: self.multicast_hist.clone(),
            stream: LatencyStats::from_batch_means(&self.stream_lat)
                .with_quantiles(&self.hists.stream),
            latency_hists: self.hists.clone(),
            unicast_injected: self.unicast_injected,
            unicast_delivered: self.unicast_delivered,
            multicast_injected: self.multicast_injected,
            multicast_delivered: self.multicast_delivered,
            total_generated: self.total_generated,
            total_absorbed: self.total_absorbed,
            saturated,
            deadlocked,
            cycles,
            flit_moves: self.flit_moves,
            peak_backlog,
            channel_utilization: self
                .channel_traversals
                .iter()
                .map(|&t| t as f64 / denom)
                .collect(),
            engine,
            util: self.util.take(),
            trace: self.tracer.take().map(|mut t| t.drain()),
            // The closed-loop driver stamps its summary after `finish`.
            closed_loop: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_telemetry::TelemetrySpec;

    #[test]
    fn disabled_telemetry_records_nothing_extra() {
        let cfg = SimConfig::quick(1);
        let mut m = Metrics::new(&cfg, 2, 4, true);
        m.record_flit_move(cfg.warmup_cycles + 1, 0, true);
        m.trace_grant(5, 1);
        m.trace_stall(6);
        let res = m.finish(false, false, 100, 0, 10, EngineCounters::default());
        assert!(res.trace.is_none());
        assert!(res.util.is_none());
        assert_eq!(res.flit_moves, 1);
    }

    #[test]
    fn enabled_telemetry_surfaces_trace_and_util() {
        let mut cfg = SimConfig::quick(1);
        cfg.telemetry = TelemetrySpec::flight_recorder(16, 8);
        let w = cfg.warmup_cycles;
        let mut m = Metrics::new(&cfg, 2, 4, true);
        m.record_flit_move(w + 1, 0, true);
        m.record_flit_moves_bulk(w + 1, 1, 10, true); // cycles w+2..=w+11
        m.trace_grant(w + 1, 3);
        m.trace_release(w + 4, 3);
        let res = m.finish(false, false, 100, 0, 11, EngineCounters::default());
        let trace = res.trace.expect("trace captured");
        assert_eq!(trace.events.len(), 2);
        let util = res.util.expect("series captured");
        assert_eq!(util.counts[0][0], 1, "offset 0 → window 0");
        // Bulk offsets 1..11 split 7 into window 0, 3 into window 1.
        assert_eq!(util.counts[0][1], 7);
        assert_eq!(util.counts[1][1], 3);
        assert_eq!(res.flit_moves, 11);
    }

    #[test]
    fn quantiles_reach_the_summaries() {
        let cfg = SimConfig::quick(1);
        let mut m = Metrics::new(&cfg, 1, 1, true);
        for lat in [10u64, 20, 30, 40] {
            m.record_unicast_delivery(100 + lat, 100);
        }
        let res = m.finish(false, false, 100, 0, 10, EngineCounters::default());
        assert_eq!(res.unicast.p50, 20.0, "exact below 64");
        assert_eq!(res.unicast.p99, 40.0);
        assert_eq!(res.latency_hists.unicast.count(), 4);
    }
}
