//! The engine-side closed-loop dispatcher.
//!
//! [`ClosedLoopDriver`] is the impure half of the closed-loop split: it
//! owns the per-node protocol machines (a [`ProtocolBank`] built from a
//! [`noc_app::ClosedLoopSpec`]), translates network happenings into
//! [`AppEvent`]s, and turns the machines' [`Emission`]s into engine
//! actions (injections, timers) plus run accounting (issued/retired
//! requests, completion latencies, outstanding-window occupancy).
//!
//! Both engines drive the same driver through the same three touch
//! points, in the same intra-cycle order:
//!
//! 1. **generate** — timers due this cycle fire ([`AppEvent::Timeout`]),
//!    in node order; resulting injections enter the waiter queues before
//!    selection, exactly where open-loop arrivals would.
//! 2. **deliver** — after `apply_moves`, every absorption recorded this
//!    cycle is dispatched ([`AppEvent::Delivery`]) in absorption order;
//!    resulting injections enqueue before the cycle's grant phase.
//! 3. **start** — before the first cycle, every machine receives
//!    [`AppEvent::Start`] in node order.
//!
//! The driver never reads engine state and the machines never see the
//! clock, so a protocol replays bit-identically on the cycle and the
//! event engine: the move sets are equal, hence the absorption order is
//! equal, hence the event sequences — and with them every RNG draw — are
//! equal.

use crate::message::{MsgId, OpId};
use crate::results::{ClosedLoopResults, LatencyStats};
use noc_app::{AppEvent, Emission, Payload, ProtocolBank};
use noc_queueing::Welford;
use noc_telemetry::LogHistogram;
use noc_topology::NodeId;
use std::collections::HashMap;

/// A network happening the engines record during `apply_moves` for the
/// driver to dispatch afterwards (in recording order).
#[derive(Clone, Copy, Debug)]
pub(crate) enum ClosedDelivery {
    /// A protocol unicast was fully absorbed at its destination.
    Unicast(MsgId),
    /// A multicast stream absorbed at `target` (one delivery per target).
    Absorb {
        /// The multicast operation the stream belongs to.
        op: OpId,
        /// The absorbing node.
        target: NodeId,
    },
    /// A multicast operation completed: its payload entry can be dropped.
    OpDone(OpId),
}

/// An engine action requested by a protocol emission, performed by the
/// engine that owns the resources (allocation, queues, event heap).
#[derive(Clone, Copy, Debug)]
pub(crate) enum Action {
    /// Inject a unicast `src → dst` carrying `payload`.
    Unicast {
        src: NodeId,
        dst: NodeId,
        payload: Payload,
    },
    /// Start `src`'s configured multicast operation carrying `payload`.
    Multicast { src: NodeId, payload: Payload },
    /// Wake `node` at cycle `at` (the cycle engine polls
    /// [`ClosedLoopDriver::timer_at`]; the event engine schedules on its
    /// heap).
    Timer { node: NodeId, at: u64 },
}

/// Protocol machines plus the closed-loop bookkeeping of one run.
pub(crate) struct ClosedLoopDriver {
    bank: Box<dyn ProtocolBank>,
    /// Pending wake-up per node (at most one, enforced on emission).
    timers: Vec<Option<u64>>,
    /// Nodes that emitted [`Emission::Done`].
    done: Vec<bool>,
    /// Payload of every protocol unicast in flight, by message id.
    unicast_payload: HashMap<MsgId, (NodeId, Payload)>,
    /// Payload of every protocol multicast in flight, by operation id.
    op_payload: HashMap<OpId, Payload>,
    /// Issue cycle of every outstanding request, by `(node, req)`.
    issued_at: HashMap<(u32, u32), u64>,
    issued: u64,
    retired: u64,
    outstanding: u64,
    /// Time integral of `outstanding` (exact in integers).
    occ_area: u128,
    occ_last: u64,
    completion: Welford,
    /// Streaming quantile companion of `completion` (P50/P95/P99).
    completion_hist: LogHistogram,
    scratch: Vec<Emission>,
}

impl ClosedLoopDriver {
    pub(crate) fn new(bank: Box<dyn ProtocolBank>) -> Self {
        let n = bank.num_nodes();
        ClosedLoopDriver {
            bank,
            timers: vec![None; n],
            done: vec![false; n],
            unicast_payload: HashMap::new(),
            op_payload: HashMap::new(),
            issued_at: HashMap::new(),
            issued: 0,
            retired: 0,
            outstanding: 0,
            occ_area: 0,
            occ_last: 0,
            completion: Welford::new(),
            completion_hist: LogHistogram::new(),
            scratch: Vec::new(),
        }
    }

    /// Feed `event` to `node`'s machine at cycle `now` and translate its
    /// emissions: network actions append to `actions` (performed by the
    /// engine), bookkeeping markers settle here.
    pub(crate) fn dispatch(
        &mut self,
        now: u64,
        node: NodeId,
        event: AppEvent,
        actions: &mut Vec<Action>,
    ) {
        if matches!(event, AppEvent::Timeout) {
            let pending = self.timers[node.idx()].take();
            assert_eq!(pending, Some(now), "timeout fired off-schedule");
        }
        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        self.bank.step(node, event, &mut out);
        for &e in &out {
            match e {
                Emission::Unicast { dst, payload } => {
                    assert_ne!(dst, node, "protocol unicast to self");
                    actions.push(Action::Unicast {
                        src: node,
                        dst,
                        payload,
                    });
                }
                Emission::Multicast { payload } => {
                    actions.push(Action::Multicast { src: node, payload });
                }
                Emission::Timer { delay } => {
                    assert!(delay >= 1, "timer delay must be at least 1 cycle");
                    assert!(
                        self.timers[node.idx()].is_none(),
                        "node {} set a second timer",
                        node.0
                    );
                    self.timers[node.idx()] = Some(now + delay);
                    actions.push(Action::Timer {
                        node,
                        at: now + delay,
                    });
                }
                Emission::Issued { req } => {
                    self.update_occ(now);
                    let prev = self.issued_at.insert((node.0, req), now);
                    assert!(prev.is_none(), "request ({}, {req}) issued twice", node.0);
                    self.issued += 1;
                    self.outstanding += 1;
                }
                Emission::Retired { req } => {
                    self.update_occ(now);
                    let at = self
                        .issued_at
                        .remove(&(node.0, req))
                        .expect("request retired without being issued");
                    self.completion.push((now - at) as f64);
                    self.completion_hist.record(now - at);
                    self.retired += 1;
                    self.outstanding -= 1;
                }
                Emission::Done => {
                    assert!(!self.done[node.idx()], "node {} done twice", node.0);
                    self.done[node.idx()] = true;
                }
            }
        }
        self.scratch = out;
    }

    /// Record the payload of a freshly injected protocol unicast.
    pub(crate) fn note_unicast(&mut self, id: MsgId, dst: NodeId, payload: Payload) {
        let prev = self.unicast_payload.insert(id, (dst, payload));
        debug_assert!(prev.is_none(), "message id {id} reused while in flight");
    }

    /// Record the payload of a freshly injected protocol multicast.
    pub(crate) fn note_multicast(&mut self, op: OpId, payload: Payload) {
        let prev = self.op_payload.insert(op, payload);
        debug_assert!(prev.is_none(), "op id {op} reused while in flight");
    }

    /// A protocol unicast was absorbed: its destination and payload.
    pub(crate) fn unicast_delivered(&mut self, id: MsgId) -> (NodeId, Payload) {
        self.unicast_payload
            .remove(&id)
            .expect("absorbed unicast unknown to the driver")
    }

    /// The payload a multicast absorption delivers (the op is still in
    /// flight until [`ClosedLoopDriver::op_done`]).
    pub(crate) fn absorb_payload(&self, op: OpId) -> Payload {
        *self
            .op_payload
            .get(&op)
            .expect("absorbing stream of an op unknown to the driver")
    }

    /// A multicast operation completed at every target.
    pub(crate) fn op_done(&mut self, op: OpId) {
        self.op_payload
            .remove(&op)
            .expect("completed op unknown to the driver");
    }

    /// The cycle `node`'s pending timer fires, if any (the cycle engine's
    /// per-cycle poll).
    pub(crate) fn timer_at(&self, node: NodeId) -> Option<u64> {
        self.timers[node.idx()]
    }

    /// Nothing left to do: every machine is done, no request, timer or
    /// protocol message is outstanding.
    pub(crate) fn quiescent(&self) -> bool {
        self.outstanding == 0
            && self.done.iter().all(|&d| d)
            && self.timers.iter().all(Option::is_none)
            && self.unicast_payload.is_empty()
            && self.op_payload.is_empty()
    }

    fn update_occ(&mut self, now: u64) {
        self.occ_area += self.outstanding as u128 * (now - self.occ_last) as u128;
        self.occ_last = now;
    }

    /// Close the books at `cycles` and summarise the run.
    pub(crate) fn finish(&mut self, cycles: u64, quiesced: bool) -> ClosedLoopResults {
        self.update_occ(cycles);
        if quiesced {
            assert_eq!(
                self.issued, self.retired,
                "quiescent run with unretired requests"
            );
            assert!(
                self.unicast_payload.is_empty() && self.op_payload.is_empty(),
                "quiescent run with protocol messages in flight"
            );
        }
        let denom = cycles.max(1) as f64;
        ClosedLoopResults {
            requests_issued: self.issued,
            requests_retired: self.retired,
            completion: LatencyStats::from_welford(&self.completion)
                .with_quantiles(&self.completion_hist),
            completion_hist: self.completion_hist.clone(),
            avg_outstanding: self.occ_area as f64 / denom,
            ops_per_cycle: self.retired as f64 / denom,
            quiesced,
            quiesce_cycle: cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_app::{ClosedLoopSpec, NetEnv};

    fn driver(n: usize) -> ClosedLoopDriver {
        let spec = ClosedLoopSpec::Coherence {
            window: 2,
            requests: 4,
            write_fraction: 0.0,
        };
        let env = NetEnv {
            n,
            fanout: vec![(n - 1) as u32; n],
        };
        ClosedLoopDriver::new(spec.build(&env, 7))
    }

    #[test]
    fn start_issues_and_tracks_occupancy() {
        let mut d = driver(4);
        let mut actions = Vec::new();
        for i in 0..4 {
            d.dispatch(0, NodeId(i), AppEvent::Start, &mut actions);
        }
        assert_eq!(d.issued, 8, "window 2 on 4 nodes");
        assert_eq!(d.outstanding, 8);
        assert_eq!(actions.len(), 8, "one unicast per issued read");
        assert!(!d.quiescent());
    }

    #[test]
    fn delivery_round_trip_retires() {
        let mut d = driver(2);
        let mut actions = Vec::new();
        d.dispatch(0, NodeId(0), AppEvent::Start, &mut actions);
        // Perform the two requests by hand: home answers with Data.
        let reqs: Vec<(NodeId, Payload)> = actions
            .iter()
            .filter_map(|a| match *a {
                Action::Unicast { dst, payload, .. } => Some((dst, payload)),
                _ => None,
            })
            .collect();
        actions.clear();
        for (home, p) in reqs {
            d.dispatch(10, home, AppEvent::Delivery(p), &mut actions);
        }
        // Home emitted Data unicasts back; deliver them.
        let replies: Vec<(NodeId, Payload)> = actions
            .iter()
            .filter_map(|a| match *a {
                Action::Unicast { dst, payload, .. } => Some((dst, payload)),
                _ => None,
            })
            .collect();
        actions.clear();
        for (dst, p) in replies {
            d.dispatch(25, dst, AppEvent::Delivery(p), &mut actions);
        }
        assert_eq!(d.retired, 2);
        let res = d.finish(100, false);
        assert_eq!(res.requests_retired, 2);
        assert_eq!(res.completion.count, 2);
        assert_eq!(res.completion.mean, 25.0, "issued at 0, retired at 25");
        assert_eq!(res.completion.p50, 25.0, "exact below 64");
        assert_eq!(res.completion.p99, 25.0);
        assert_eq!(res.completion_hist.count(), 2);
        // Occupancy integral: 2 outstanding over cycles 0..25 (window
        // refills keep it at 2 until both retire), then the refilled pair.
        assert!(res.avg_outstanding > 0.0);
    }

    #[test]
    #[should_panic(expected = "off-schedule")]
    fn off_schedule_timeout_is_rejected() {
        let mut d = driver(2);
        let mut actions = Vec::new();
        d.dispatch(0, NodeId(0), AppEvent::Timeout, &mut actions);
    }
}
