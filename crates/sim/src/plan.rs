//! Precomputed simulation tables shared by both engines and across runs.
//!
//! Building a simulator used to recompute every unicast path and multicast
//! stream (O(n²) allocations) per run; rate sweeps and benches construct a
//! simulator per operating point, so that cost dominated short runs. A
//! [`SimPlan`] captures everything that depends only on `(topology,
//! destination sets, routing scheme)` — channel/vc layout, unicast path
//! table, per-scheme multicast streams with absorb schedules — behind an
//! `Arc` so many runs (and both engines of a differential pair) share one
//! copy. Both engines replay the plan's stream tables verbatim, which is
//! what makes engine bit-equivalence hold per routing scheme for free.
//!
//! ## Dense vs. lazy tables
//!
//! For the materialized legacy topologies the plan eagerly builds the
//! `n × n` unicast path table and every node's streams — bit-for-bit the
//! historical behaviour. For **implicit** topologies (MIN, clustered) an
//! `n × n` table would be exactly the memory wall the implicit channel
//! storage removed, so the plan turns *lazy*: it keeps a shared handle to
//! the topology ([`Topology::share`]) and computes unicast paths on
//! demand and per-source streams memoized behind `OnceLock` — a 64k-node
//! plan allocates O(n) slots, not O(n²) paths. The accessor surface is
//! identical either way, and the differential suite checks the lazily
//! computed tables against a force-materialized oracle plan bit-for-bit.

use crate::message::{absorb_schedule, AbsorbSchedule};
use noc_topology::{ChannelId, Hop, NodeId, Path, RoutingError, Topology};
use noc_workloads::{PatternError, TrafficError, Workload};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Why a [`SimPlan`] could not be built from a `(topology, workload)`
/// pair. Facade users get these as typed errors instead of panics; the
/// experiment layer folds them into `noc_bench::Error`.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// The topology has fewer than two nodes — nothing to route.
    TooFewNodes(usize),
    /// The workload's unicast pattern does not fit the topology.
    Pattern(PatternError),
    /// The workload's routing scheme is not realizable on the topology.
    Routing(RoutingError),
    /// The workload's traffic spec does not fit the topology.
    Traffic(TrafficError),
    /// A node has an empty multicast destination set while the workload's
    /// multicast fraction is positive.
    EmptyMulticastSet {
        /// The offending node index.
        node: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::TooFewNodes(n) => {
                write!(f, "need at least two nodes to simulate, got {n}")
            }
            PlanError::Pattern(e) => write!(f, "unicast pattern does not fit the topology: {e}"),
            PlanError::Routing(e) => {
                write!(f, "routing scheme is not realizable on the topology: {e}")
            }
            PlanError::Traffic(e) => write!(f, "traffic spec does not fit the topology: {e}"),
            PlanError::EmptyMulticastSet { node } => {
                write!(f, "node {node} has an empty multicast set but alpha > 0")
            }
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Pattern(e) => Some(e),
            PlanError::Routing(e) => Some(e),
            PlanError::Traffic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PatternError> for PlanError {
    fn from(e: PatternError) -> Self {
        PlanError::Pattern(e)
    }
}

impl From<RoutingError> for PlanError {
    fn from(e: RoutingError) -> Self {
        PlanError::Routing(e)
    }
}

impl From<TrafficError> for PlanError {
    fn from(e: TrafficError) -> Self {
        PlanError::Traffic(e)
    }
}

/// Precomputed multicast stream for one source node.
#[derive(Clone, Debug)]
pub(crate) struct PreStream {
    pub(crate) path: Arc<Path>,
    pub(crate) absorbs: AbsorbSchedule,
}

/// The plan's path/stream storage: eagerly materialized for dense
/// topologies, memoized-on-demand for implicit ones.
enum Tables {
    /// Eager `n × n` tables (the historical representation, bit-for-bit).
    Dense {
        /// Precomputed unicast paths, `src * n + dst` (None on the
        /// diagonal).
        unicast_paths: Vec<Option<Arc<Path>>>,
        /// Precomputed multicast streams per source node.
        streams: Vec<Vec<PreStream>>,
        /// Total targets per multicast operation per node.
        op_targets: Vec<u32>,
    },
    /// On-demand computation against a shared topology handle.
    Lazy {
        topo: Arc<dyn Topology>,
        wl: Workload,
        /// Per-source stream tables, computed at most once each.
        streams: Vec<OnceLock<Box<[PreStream]>>>,
        /// Total targets per multicast operation per node (cheap to
        /// derive from the destination sets, so kept eager).
        op_targets: Vec<u32>,
    },
}

impl fmt::Debug for Tables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tables::Dense { streams, .. } => f
                .debug_struct("Tables::Dense")
                .field("nodes", &streams.len())
                .finish(),
            Tables::Lazy { topo, streams, .. } => f
                .debug_struct("Tables::Lazy")
                .field("topology", &topo.name())
                .field("nodes", &streams.len())
                .finish(),
        }
    }
}

/// Static simulation tables for one `(topology, destination sets,
/// routing scheme)` triple.
///
/// Independent of the generation rate, the seed and the engine, so one
/// plan serves a whole rate sweep and both engines of a differential run.
#[derive(Debug)]
pub struct SimPlan {
    pub(crate) n: usize,
    pub(crate) num_channels: usize,
    pub(crate) num_cvs: usize,
    /// First cv index of each channel.
    pub(crate) cv_base: Vec<u32>,
    /// Virtual-channel count per channel.
    pub(crate) vcs: Vec<u8>,
    tables: Tables,
}

/// Compute one node's streams with their absorb schedules (shared by the
/// dense build and the lazy memoization — same code, same bits).
fn build_streams(topo: &dyn Topology, wl: &Workload, src: NodeId) -> Vec<PreStream> {
    let net = topo.network();
    let set = wl.multicast_set(src);
    let mut pre = Vec::new();
    if !set.is_empty() {
        for st in wl.routing.streams(topo, src, set) {
            debug_assert!(net.validate_path(&st.path).is_ok());
            let absorbs = absorb_schedule(&st.path, &st.targets, |c| net.downstream(c));
            pre.push(PreStream {
                path: Arc::new(st.path),
                absorbs,
            });
        }
    }
    pre
}

impl SimPlan {
    /// Build the plan for `topo` under `wl`'s destination sets.
    ///
    /// Returns a typed [`PlanError`] if the topology has fewer than two
    /// nodes, if the workload's unicast pattern, traffic spec or routing
    /// scheme does not fit it, or if `wl` has a positive multicast
    /// fraction but an empty destination set on some node. (The
    /// experiment layer surfaces the same conditions before any plan is
    /// built; the engine constructors panic on them for test ergonomics.)
    pub fn build(topo: &dyn Topology, wl: &Workload) -> Result<Arc<Self>, PlanError> {
        let net = topo.network();
        let n = net.num_nodes();
        if n < 2 {
            return Err(PlanError::TooFewNodes(n));
        }
        wl.unicast_pattern.validate(n)?;
        wl.routing
            .validate(n, net.ports_per_node(), topo.has_linear_order())?;
        // Shape-only (rate 0.0): the plan is generation-rate independent
        // by contract — it is built once from a placeholder-rate
        // prototype and shared across every swept rate. The engines'
        // stream construction re-validates against the actual rate.
        wl.traffic.validate(n, 0.0)?;
        if wl.multicast_fraction > 0.0 {
            for i in 0..n {
                if wl.multicast_set(NodeId(i as u32)).is_empty() {
                    return Err(PlanError::EmptyMulticastSet { node: i });
                }
            }
        }

        let mut cv_base = Vec::with_capacity(net.num_channels());
        let mut vcs = Vec::with_capacity(net.num_channels());
        let mut acc = 0u32;
        for id in 0..net.num_channels() as u32 {
            let v = net.vcs_of(ChannelId(id));
            cv_base.push(acc);
            vcs.push(v);
            acc += v as u32;
        }
        let num_cvs = acc as usize;

        let tables = if net.is_implicit() {
            let topo = topo
                .share()
                .expect("implicit topologies must implement Topology::share");
            // Streams partition the sanitized destination set, so the
            // per-op target count is derivable without building them.
            let op_targets = (0..n)
                .map(|s| {
                    let src = NodeId(s as u32);
                    wl.multicast_set(src).iter().filter(|&&t| t != src).count() as u32
                })
                .collect();
            Tables::Lazy {
                topo,
                wl: wl.clone(),
                streams: (0..n).map(|_| OnceLock::new()).collect(),
                op_targets,
            }
        } else {
            let mut unicast_paths: Vec<Option<Arc<Path>>> = vec![None; n * n];
            for s in 0..n {
                for d in 0..n {
                    if s != d {
                        let p = topo.unicast_path(NodeId(s as u32), NodeId(d as u32));
                        debug_assert!(net.validate_path(&p).is_ok());
                        unicast_paths[s * n + d] = Some(Arc::new(p));
                    }
                }
            }
            let mut streams: Vec<Vec<PreStream>> = Vec::with_capacity(n);
            let mut op_targets = Vec::with_capacity(n);
            for s in 0..n {
                let pre = build_streams(topo, wl, NodeId(s as u32));
                op_targets.push(pre.iter().map(|p| p.absorbs.len() as u32).sum());
                streams.push(pre);
            }
            Tables::Dense {
                unicast_paths,
                streams,
                op_targets,
            }
        };

        Ok(Arc::new(SimPlan {
            n,
            num_channels: net.num_channels(),
            num_cvs,
            cv_base,
            vcs,
            tables,
        }))
    }

    /// Number of nodes in the planned network.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// `true` when stream/path tables are computed on demand (implicit
    /// topology) instead of materialized up front.
    pub fn is_lazy(&self) -> bool {
        matches!(self.tables, Tables::Lazy { .. })
    }

    /// The multicast streams of `node` (computed and memoized on first
    /// access for lazy plans).
    pub(crate) fn streams(&self, node: usize) -> &[PreStream] {
        match &self.tables {
            Tables::Dense { streams, .. } => &streams[node],
            Tables::Lazy {
                topo, wl, streams, ..
            } => streams[node]
                .get_or_init(|| build_streams(topo.as_ref(), wl, NodeId(node as u32)).into()),
        }
    }

    /// Total targets per multicast operation of `node`.
    #[inline]
    pub(crate) fn op_targets(&self, node: usize) -> u32 {
        match &self.tables {
            Tables::Dense { op_targets, .. } | Tables::Lazy { op_targets, .. } => op_targets[node],
        }
    }

    /// Per-node multicast fan-out (total targets per operation), cloned
    /// for engine-side bookkeeping.
    pub(crate) fn fanout_table(&self) -> Vec<u32> {
        match &self.tables {
            Tables::Dense { op_targets, .. } | Tables::Lazy { op_targets, .. } => {
                op_targets.clone()
            }
        }
    }

    /// Capacity hint for message arenas: one full multicast spawn wave
    /// (every node firing its configured operation at once) plus a
    /// unicast per node — live-message counts rarely exceed this outside
    /// deep saturation. Lazy plans answer O(n) without forcing stream
    /// computation.
    pub(crate) fn spawn_wave_hint(&self) -> usize {
        match &self.tables {
            Tables::Dense { streams, .. } => streams.iter().map(|s| s.len().max(1)).sum(),
            Tables::Lazy { .. } => self.n,
        }
    }

    /// The cv (channel × virtual-channel) resource index of a hop.
    #[inline]
    pub(crate) fn cv_index(&self, hop: Hop) -> u32 {
        self.cv_base[hop.channel.idx()] + hop.vc.0 as u32
    }

    /// Guard against pairing a plan with a foreign topology or workload:
    /// a mismatched plan would index out of range (or worse, allocate
    /// multicast ops that can never complete). Cheap — run at engine
    /// construction.
    pub(crate) fn assert_matches(&self, topo: &dyn Topology, wl: &Workload) {
        assert_eq!(
            self.n,
            topo.network().num_nodes(),
            "SimPlan was built for a different topology"
        );
        assert_eq!(
            self.num_channels,
            topo.network().num_channels(),
            "SimPlan was built for a different channel graph"
        );
        if wl.multicast_fraction > 0.0 {
            for node in 0..self.n {
                assert!(
                    self.op_targets(node) > 0,
                    "SimPlan has no multicast streams for node {node} but alpha > 0"
                );
            }
        }
    }

    /// The unicast path `src → dst` (panics on the diagonal): a shared
    /// table entry for dense plans, a fresh on-demand computation for
    /// lazy ones.
    #[inline]
    pub fn unicast_path(&self, src: NodeId, dst: NodeId) -> Arc<Path> {
        match &self.tables {
            Tables::Dense { unicast_paths, .. } => Arc::clone(
                unicast_paths[src.idx() * self.n + dst.idx()]
                    .as_ref()
                    .expect("off-diagonal path exists"),
            ),
            Tables::Lazy { topo, .. } => Arc::new(topo.unicast_path(src, dst)),
        }
    }

    /// Owned snapshot of `node`'s stream table — each stream's path and
    /// absorb schedule `(link index, absorbing node)` in visit order.
    /// Diagnostic/test surface; the differential suite uses it to compare
    /// lazy tables against the materialized oracle.
    pub fn streams_snapshot(&self, node: NodeId) -> Vec<(Path, Vec<(u16, NodeId)>)> {
        self.streams(node.idx())
            .iter()
            .map(|pre| ((*pre.path).clone(), pre.absorbs.to_vec()))
            .collect()
    }

    /// Total targets per multicast operation of `node` (public mirror of
    /// the engine-side accessor, for tests and diagnostics).
    pub fn op_target_count(&self, node: NodeId) -> u32 {
        self.op_targets(node.idx())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::{Min, Quarc};
    use noc_workloads::DestinationSets;

    #[test]
    fn plan_tables_cover_the_network() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        let wl = Workload::new(16, 0.01, 0.1, sets).unwrap();
        let plan = SimPlan::build(&topo, &wl).unwrap();
        assert_eq!(plan.num_nodes(), 16);
        assert!(!plan.is_lazy());
        assert_eq!(plan.cv_base.len(), plan.num_channels);
        assert_eq!(plan.vcs.len(), plan.num_channels);
        for s in 0..16u32 {
            for d in 0..16u32 {
                if s != d {
                    assert_eq!(plan.unicast_path(NodeId(s), NodeId(d)).src, NodeId(s));
                }
            }
        }
        for node in 0..16 {
            assert!(!plan.streams(node).is_empty());
            assert_eq!(plan.op_targets(node), 4);
        }
        assert_eq!(plan.fanout_table(), vec![4; 16]);
    }

    #[test]
    fn plan_builds_per_scheme_stream_tables() {
        use noc_workloads::RoutingSpec;
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        let wl = Workload::new(16, 0.01, 0.1, sets).unwrap();
        for spec in noc_topology::ALL_ROUTINGS {
            let plan = SimPlan::build(&topo, &wl.clone().with_routing(spec)).unwrap();
            for node in 0..16 {
                assert_eq!(plan.op_targets(node), 4, "{spec}: all targets scheduled");
                if spec == RoutingSpec::UnicastTree {
                    assert_eq!(plan.streams(node).len(), 4, "one stream per destination");
                }
            }
        }
    }

    #[test]
    fn plan_rejects_unrealizable_routing() {
        use noc_topology::Spidergon;
        let topo = Spidergon::new(8).unwrap();
        let sets = DestinationSets::random(&topo, 2, 1);
        let wl = Workload::new(16, 0.01, 0.1, sets)
            .unwrap()
            .with_routing(noc_workloads::RoutingSpec::Multipath);
        let err = SimPlan::build(&topo, &wl).unwrap_err();
        assert!(matches!(err, PlanError::Routing(_)), "got {err:?}");
        assert!(err.to_string().contains("not realizable"));
    }

    #[test]
    fn plan_rejects_alpha_with_empty_sets() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::explicit(vec![Vec::new(); 16]);
        let wl = Workload::new(16, 0.01, 0.1, sets).unwrap();
        let err = SimPlan::build(&topo, &wl).unwrap_err();
        assert_eq!(err, PlanError::EmptyMulticastSet { node: 0 });
        assert!(err.to_string().contains("empty multicast set"));
    }

    #[test]
    fn implicit_topologies_build_lazy_plans_that_match_the_oracle() {
        let implicit = Min::new(2, 3).unwrap();
        let oracle = Min::materialized(2, 3).unwrap();
        let sets = DestinationSets::random(&implicit, 3, 7);
        let wl = Workload::new(16, 0.01, 0.2, sets).unwrap();
        let lazy = SimPlan::build(&implicit, &wl).unwrap();
        let dense = SimPlan::build(&oracle, &wl).unwrap();
        assert!(lazy.is_lazy());
        assert!(!dense.is_lazy());
        assert_eq!(lazy.num_channels, dense.num_channels);
        assert_eq!(lazy.num_cvs, dense.num_cvs);
        assert_eq!(lazy.cv_base, dense.cv_base);
        assert_eq!(lazy.vcs, dense.vcs);
        for node in 0..8u32 {
            let node = NodeId(node);
            assert_eq!(lazy.op_target_count(node), dense.op_target_count(node));
            assert_eq!(lazy.streams_snapshot(node), dense.streams_snapshot(node));
            for d in 0..8u32 {
                let d = NodeId(d);
                if node != d {
                    assert_eq!(*lazy.unicast_path(node, d), *dense.unicast_path(node, d));
                }
            }
        }
    }
}
