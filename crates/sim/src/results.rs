//! Simulation output.

use noc_queueing::{BatchMeans, Histogram, Welford};
use noc_telemetry::{LogHistogram, TraceLog, UtilSeries};
use serde::{Deserialize, Serialize};

/// Summary of a latency population.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LatencyStats {
    /// Sample mean (cycles); 0 when no samples were collected.
    pub mean: f64,
    /// Half-width of the approximate 95% confidence interval (batch
    /// means); `NaN` with insufficient batches.
    pub ci95: f64,
    /// Number of samples.
    pub count: u64,
    /// Smallest observed latency (`NaN` when empty).
    pub min: f64,
    /// Largest observed latency (`NaN` when empty).
    pub max: f64,
    /// Median estimate from the population's [`LogHistogram`] (`NaN`
    /// when empty or when no histogram backs the population).
    pub p50: f64,
    /// 95th-percentile estimate (`NaN` as for `p50`).
    pub p95: f64,
    /// 99th-percentile estimate (`NaN` as for `p50`).
    pub p99: f64,
}

// Hand-written so latency summaries persisted before the telemetry
// subsystem (cached results, saved scenario JSONs) keep parsing: the
// quantile fields were never computed there, which is exactly what `NaN`
// reports.
impl serde::Deserialize for LatencyStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let f = |name| serde::de::field(v, "LatencyStats", name);
        let opt_nan = |name| match v.get(name) {
            Some(x) => serde::Deserialize::from_value(x),
            None => Ok(f64::NAN),
        };
        Ok(LatencyStats {
            mean: Deserialize::from_value(f("mean")?)?,
            ci95: Deserialize::from_value(f("ci95")?)?,
            count: Deserialize::from_value(f("count")?)?,
            min: Deserialize::from_value(f("min")?)?,
            max: Deserialize::from_value(f("max")?)?,
            p50: opt_nan("p50")?,
            p95: opt_nan("p95")?,
            p99: opt_nan("p99")?,
        })
    }
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            mean: 0.0,
            ci95: 0.0,
            count: 0,
            min: 0.0,
            max: 0.0,
            p50: f64::NAN,
            p95: f64::NAN,
            p99: f64::NAN,
        }
    }
}

impl LatencyStats {
    /// Summarise a batch-means accumulator.
    pub fn from_batch_means(bm: &BatchMeans) -> Self {
        LatencyStats {
            mean: bm.mean(),
            ci95: bm.ci95_half_width(),
            count: bm.count(),
            min: bm.overall().min(),
            max: bm.overall().max(),
            p50: f64::NAN,
            p95: f64::NAN,
            p99: f64::NAN,
        }
    }

    /// Summarise a plain Welford accumulator (normal-approximation CI —
    /// used for per-source populations too small for batch means).
    pub fn from_welford(w: &Welford) -> Self {
        let ci95 = if w.count() >= 2 {
            1.96 * w.std_dev() / (w.count() as f64).sqrt()
        } else {
            f64::NAN
        };
        LatencyStats {
            mean: w.mean(),
            ci95,
            count: w.count(),
            min: w.min(),
            max: w.max(),
            p50: f64::NAN,
            p95: f64::NAN,
            p99: f64::NAN,
        }
    }

    /// These stats with P50/P95/P99 stamped from the population's
    /// streaming histogram (builder style).
    pub fn with_quantiles(mut self, h: &LogHistogram) -> Self {
        self.p50 = h.p50();
        self.p95 = h.p95();
        self.p99 = h.p99();
        self
    }

    /// Mean latency, or `None` when no samples exist.
    pub fn mean_opt(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }
}

/// The streaming log-bucketed histograms behind the run's latency
/// summaries — carried whole so the Runner can merge them *exactly*
/// across replicates (bucket-count addition) before taking quantiles,
/// instead of averaging per-replicate percentiles.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHists {
    /// Tagged unicast message latencies.
    pub unicast: LogHistogram,
    /// Tagged multicast operation latencies (the paper's metric).
    pub multicast: LogHistogram,
    /// Per-stream latencies (diagnostic).
    pub stream: LogHistogram,
}

/// Engine-internal work counters: how the run's wall-clock was actually
/// spent, surfaced so engine performance fixes are measurable from the
/// outside (benches and the CI perf smoke read these, not just timings).
///
/// The counters describe *engine mechanics*, not simulation semantics:
/// two bit-identical runs may legitimately differ here (the cycle engine
/// reports only `simulated_cycles`), so the differential equivalence
/// suite deliberately excludes this field from its comparisons.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineCounters {
    /// Cycles the engine actually executed through its per-cycle
    /// machinery (the cycle engine: every cycle; the event engine: the
    /// non-skipped remainder — `cycles / simulated_cycles` is its
    /// compression ratio).
    pub simulated_cycles: u64,
    /// Arrival events popped off the event queue (event engine only).
    pub events_popped: u64,
    /// Streaming spans applied in bulk (event engine only).
    pub spans_batched: u64,
    /// Cycles fast-forwarded inside those spans (event engine only).
    pub span_cycles: u64,
    /// Cycles proven to be stalled fixpoints and skipped from (event
    /// engine only).
    pub stall_fixpoints: u64,
    /// Streaming-span eligibility scans that found no batchable span —
    /// pure overhead, the hot-load pathology this counter exists to
    /// watch (event engine only).
    pub span_scans_failed: u64,
}

/// Closed-loop protocol statistics of one run (present only when a
/// [`noc_app::ClosedLoopSpec`] drove the engine).
///
/// Open-loop metrics answer "how fast does the network serve offered
/// load"; these answer the closed-loop question — how fast does the
/// *application* make progress when its sources stall on the network.
#[derive(Clone, Debug, Serialize)]
pub struct ClosedLoopResults {
    /// Requests issued across all nodes.
    pub requests_issued: u64,
    /// Requests retired (== issued whenever the run quiesced).
    pub requests_retired: u64,
    /// Per-request completion latency (issue → retire), in cycles —
    /// quantiles stamped from `completion_hist`.
    pub completion: LatencyStats,
    /// Streaming histogram behind `completion`, kept whole so replicate
    /// tails merge exactly.
    pub completion_hist: LogHistogram,
    /// Time-average outstanding requests across all nodes (the
    /// occupancy of the protocol windows).
    pub avg_outstanding: f64,
    /// Requests retired per cycle — the closed-loop throughput.
    pub ops_per_cycle: f64,
    /// Did the protocol run to completion (every machine done, nothing
    /// in flight)? `false` means the run hit its deadline or backlog
    /// limit first.
    pub quiesced: bool,
    /// The cycle the run ended on (the quiescence cycle when
    /// `quiesced`).
    pub quiesce_cycle: u64,
}

// Hand-written for the same legacy-file reason as [`LatencyStats`]: a
// result persisted before the telemetry subsystem has no completion
// histogram — an empty one is the honest reconstruction.
impl serde::Deserialize for ClosedLoopResults {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let f = |name| serde::de::field(v, "ClosedLoopResults", name);
        Ok(ClosedLoopResults {
            requests_issued: Deserialize::from_value(f("requests_issued")?)?,
            requests_retired: Deserialize::from_value(f("requests_retired")?)?,
            completion: Deserialize::from_value(f("completion")?)?,
            completion_hist: match v.get("completion_hist") {
                Some(h) => Deserialize::from_value(h)?,
                None => LogHistogram::new(),
            },
            avg_outstanding: Deserialize::from_value(f("avg_outstanding")?)?,
            ops_per_cycle: Deserialize::from_value(f("ops_per_cycle")?)?,
            quiesced: Deserialize::from_value(f("quiesced")?)?,
            quiesce_cycle: Deserialize::from_value(f("quiesce_cycle")?)?,
        })
    }
}

/// Complete results of one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimResults {
    /// Unicast message latency (generation → last flit absorbed), with
    /// quantiles from `latency_hists.unicast`.
    pub unicast: LatencyStats,
    /// Multicast operation latency (generation → last flit absorbed at the
    /// last destination over all streams) — the paper's multicast latency.
    pub multicast: LatencyStats,
    /// Per-source multicast latency (indexed by node), validating the
    /// model's per-node predictions (Eq. 14), not just the average.
    pub multicast_by_source: Vec<LatencyStats>,
    /// Multicast latency histogram (4-cycle bins) for tail-latency
    /// comparisons against the model's max-of-exponentials distribution.
    pub multicast_hist: Histogram,
    /// Per-stream latency (generation → last flit absorbed at the stream's
    /// own final target); diagnostic, not a paper metric.
    pub stream: LatencyStats,
    /// Streaming log-bucketed histograms behind the latency summaries
    /// above — the mergeable source of the P50/P95/P99 columns.
    pub latency_hists: LatencyHists,
    /// Tagged unicasts injected / delivered.
    pub unicast_injected: u64,
    /// Tagged unicast messages delivered.
    pub unicast_delivered: u64,
    /// Tagged multicast operations injected.
    pub multicast_injected: u64,
    /// Tagged multicast operations fully delivered.
    pub multicast_delivered: u64,
    /// Total messages (all classes, tagged or not) generated / absorbed —
    /// conservation audit.
    pub total_generated: u64,
    /// Total messages absorbed by sinks.
    pub total_absorbed: u64,
    /// `true` when the run hit its drain deadline or backlog limit with
    /// tagged traffic still in flight: the operating point is (near)
    /// saturation.
    pub saturated: bool,
    /// Deadlock watchdog: flits in the network but nothing moved for an
    /// extended window. Must always be `false` — the dateline virtual
    /// channels make the routing deadlock-free; this field exists to catch
    /// regressions of that argument.
    pub deadlocked: bool,
    /// Cycles simulated.
    pub cycles: u64,
    /// Total flit-channel traversals (throughput metric).
    pub flit_moves: u64,
    /// Peak injection backlog observed (messages waiting at sources).
    pub peak_backlog: usize,
    /// Per-channel utilisation over the measurement window (fraction of
    /// cycles the channel moved a flit), indexed by `ChannelId`.
    pub channel_utilization: Vec<f64>,
    /// Engine-internal work counters (mechanics, not semantics — see
    /// [`EngineCounters`]).
    pub engine: EngineCounters,
    /// Windowed per-channel utilization time series; `None` unless the
    /// config's [`noc_telemetry::TelemetrySpec`] enabled it. Identical
    /// between engines (integer counts, compared by the equivalence
    /// suite).
    pub util: Option<UtilSeries>,
    /// Captured event trace; `None` unless tracing was enabled. Like
    /// [`EngineCounters`], the trace describes engine *mechanics*: the
    /// two engines legitimately record different event interleavings
    /// inside a cycle (and the event engine elides events in skipped
    /// spans), so the equivalence suite excludes this field.
    pub trace: Option<TraceLog>,
    /// Closed-loop protocol statistics; `None` on open-loop runs.
    pub closed_loop: Option<ClosedLoopResults>,
}

impl SimResults {
    /// Largest link-channel utilisation (the bottleneck channel load).
    pub fn max_utilization(&self) -> f64 {
        self.channel_utilization.iter().copied().fold(0.0, f64::max)
    }

    /// All tagged traffic delivered?
    pub fn complete(&self) -> bool {
        self.unicast_delivered == self.unicast_injected
            && self.multicast_delivered == self.multicast_injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_from_accumulator() {
        let mut bm = BatchMeans::new(4);
        for x in [10.0, 12.0, 14.0, 16.0, 18.0, 20.0, 22.0, 24.0] {
            bm.push(x);
        }
        let s = LatencyStats::from_batch_means(&bm);
        assert_eq!(s.count, 8);
        assert!((s.mean - 17.0).abs() < 1e-12);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 24.0);
        assert_eq!(s.mean_opt(), Some(17.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = LatencyStats::from_batch_means(&BatchMeans::new(4));
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_opt(), None);
        assert!(s.p99.is_nan(), "no histogram stamped, no quantiles");
    }

    #[test]
    fn quantiles_stamp_from_histogram() {
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = LatencyStats::default().with_quantiles(&h);
        assert_eq!(s.p50, 50.0, "values < 64 are bucketed exactly");
        assert!(s.p95 >= 95.0 && s.p95 <= 98.0);
        assert!(s.p99 >= 99.0 && s.p99 <= 100.0);
    }

    #[test]
    fn pre_telemetry_latency_stats_parse_with_nan_quantiles() {
        let legacy = r#"{"mean":12.5,"ci95":0.5,"count":10,"min":8,"max":20}"#;
        let s: LatencyStats = serde::json::from_str(legacy).unwrap();
        assert_eq!(s.mean, 12.5);
        assert_eq!(s.count, 10);
        assert!(s.p50.is_nan() && s.p95.is_nan() && s.p99.is_nan());
    }

    #[test]
    fn pre_telemetry_closed_loop_results_parse_with_empty_hist() {
        let legacy = r#"{
            "requests_issued": 4, "requests_retired": 4,
            "completion": {"mean":10.0,"ci95":1.0,"count":4,"min":5,"max":15},
            "avg_outstanding": 1.5, "ops_per_cycle": 0.01,
            "quiesced": true, "quiesce_cycle": 400
        }"#;
        let r: ClosedLoopResults = serde::json::from_str(legacy).unwrap();
        assert_eq!(r.requests_retired, 4);
        assert_eq!(r.completion_hist, LogHistogram::new());
    }
}
