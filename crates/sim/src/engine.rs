//! The cycle-stepped wormhole engine — the reference oracle.
//!
//! See the crate-level documentation for the node model and timing
//! conventions. The engine state is a flat set of *channel virtual-channel*
//! (cv) resources; each cv is either free or owned by one message at one
//! hop of its path, with a FIFO list of waiting headers — the
//! non-preemptive FIFO arbitration of the paper's simulator (§4).
//!
//! Every cycle:
//!
//! 1. **Generation** — each node's arrival stream ([`ArrivalStream`],
//!    built from the workload's traffic spec — Poisson by default) may
//!    emit a unicast (path from the precomputed table) or a multicast
//!    operation (one stream per active injection port); new messages join
//!    the injection channel's waiter queue (the "passive queue" in
//!    creation-time order).
//! 2. **Selection** — each active physical channel picks at most one of its
//!    cvs (round-robin) whose owner can move a flit, judged against the
//!    *previous* cycle's counters (one-cycle credit loop).
//! 3. **Application** — chosen flits traverse; headers entering a buffer
//!    request the next channel; tails leaving a buffer release channels and
//!    trigger absorptions (clone-to-sink at multicast targets, completion
//!    at ejection).
//! 4. **Grants** — released or newly requested free cvs are granted to the
//!    FIFO head of their waiter queues.
//!
//! This engine advances *every* cycle, active or idle. That makes it slow
//! at low load and trivially correct — exactly what a differential oracle
//! should be. The production engine is [`crate::EventSimulator`], which
//! reproduces this engine's runs bit-for-bit while skipping inert cycles.

use crate::closed_loop::{Action, ClosedDelivery, ClosedLoopDriver};
use crate::config::SimConfig;
use crate::engine_api::{audit_state, AuditInput, EngineAudit, SimEngine};
use crate::message::{ActiveMsg, CvState, MsgId, MulticastOp, OpId};
use crate::metrics::Metrics;
use crate::plan::SimPlan;
use crate::results::{EngineCounters, SimResults};
use crate::schedule::{Arrival, ArrivalStream};
use noc_app::{AppEvent, ClosedLoopSpec, NetEnv};
use noc_topology::{ChannelKind, NodeId, Topology};
use noc_workloads::Workload;
use std::collections::HashSet;
use std::sync::Arc;

/// Invariant-checked access to a live message slot. Free functions over
/// the slot table (not `&self` methods) so hot-loop call sites keep
/// their disjoint field borrows; the panic names the violated engine
/// invariant instead of the bare `unwrap` it replaces.
#[inline]
fn live_msg<'m>(msgs: &'m [Option<ActiveMsg>], id: MsgId, what: &str) -> &'m ActiveMsg {
    match msgs.get(id as usize) {
        Some(Some(msg)) => msg,
        _ => bad_slot(id, what),
    }
}

/// Mutable counterpart of [`live_msg`].
#[inline]
fn live_msg_mut<'m>(msgs: &'m mut [Option<ActiveMsg>], id: MsgId, what: &str) -> &'m mut ActiveMsg {
    match msgs.get_mut(id as usize) {
        Some(Some(msg)) => msg,
        _ => bad_slot(id, what),
    }
}

#[cold]
#[inline(never)]
fn bad_slot(id: MsgId, what: &str) -> ! {
    panic!("engine invariant violated: {what} references freed message slot {id}")
}

/// The cycle-stepped simulator. Borrowing the topology and workload keeps
/// runs cheap to set up inside parameter sweeps; the precomputed
/// [`SimPlan`] can additionally be shared across runs.
pub struct Simulator<'a> {
    topo: &'a dyn Topology,
    wl: &'a Workload,
    cfg: SimConfig,
    plan: Arc<SimPlan>,

    // --- dynamic state ---
    cycle: u64,
    cvs: Vec<CvState>,
    /// Round-robin pointer per physical channel.
    rr: Vec<u8>,
    /// Physical channels with at least one owned cv.
    active: Vec<u32>,
    active_flag: Vec<bool>,
    msgs: Vec<Option<ActiveMsg>>,
    free_msgs: Vec<MsgId>,
    ops: Vec<MulticastOp>,
    free_ops: Vec<OpId>,
    ops_allocated: u64,
    ops_completed: u64,
    /// Per-node arrival streams (traffic-spec driven; Poisson default).
    arrivals: Vec<ArrivalStream>,
    /// Messages waiting at injection channels (backlog).
    inj_backlog: usize,
    peak_backlog: usize,
    /// Tagged traffic still in flight.
    tagged_outstanding: u64,
    /// Last cycle on which any flit moved (deadlock watchdog).
    last_move_cycle: u64,

    // --- scratch (reused across cycles) ---
    moves: Vec<(MsgId, u16)>,
    regrant: Vec<u32>,

    // --- closed-loop protocol drive (None on open-loop runs) ---
    closed: Option<ClosedLoopDriver>,
    /// Absorptions recorded by `apply_moves` for post-phase dispatch.
    arrived: Vec<ClosedDelivery>,
    /// Pending protocol actions (injections, timers).
    actions: Vec<Action>,

    // --- statistics ---
    metrics: Metrics,
}

impl<'a> Simulator<'a> {
    /// Build a simulator for `topo` under `wl`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or if the workload does not
    /// fit the topology (see [`crate::plan::PlanError`]); use
    /// [`SimPlan::build`] + [`Simulator::with_plan`] for typed errors.
    pub fn new(topo: &'a dyn Topology, wl: &'a Workload, cfg: SimConfig) -> Self {
        let plan = SimPlan::build(topo, wl).unwrap_or_else(|e| panic!("{e}"));
        Simulator::with_plan(topo, wl, cfg, plan)
    }

    /// Build a simulator on a prebuilt [`SimPlan`] (shared across the runs
    /// of a sweep, or with the event engine of a differential pair).
    pub fn with_plan(
        topo: &'a dyn Topology,
        wl: &'a Workload,
        cfg: SimConfig,
        plan: Arc<SimPlan>,
    ) -> Self {
        cfg.validate().expect("invalid simulator configuration");
        plan.assert_matches(topo, wl);
        let arrivals = ArrivalStream::build_all(wl, plan.n, cfg.seed);
        let channels = plan.num_channels;
        let metrics = Metrics::new(&cfg, plan.n, channels, !plan.is_lazy());
        Simulator {
            topo,
            wl,
            cfg,
            cycle: 0,
            cvs: vec![CvState::default(); plan.num_cvs],
            rr: vec![0; channels],
            active: Vec::with_capacity(channels),
            active_flag: vec![false; channels],
            msgs: Vec::new(),
            free_msgs: Vec::new(),
            ops: Vec::new(),
            free_ops: Vec::new(),
            ops_allocated: 0,
            ops_completed: 0,
            arrivals,
            inj_backlog: 0,
            peak_backlog: 0,
            tagged_outstanding: 0,
            last_move_cycle: 0,
            moves: Vec::new(),
            regrant: Vec::new(),
            closed: None,
            arrived: Vec::new(),
            actions: Vec::new(),
            metrics,
            plan,
        }
    }

    /// Install a closed-loop protocol: the run is then driven by the
    /// per-node machines instead of the open-loop arrival streams.
    ///
    /// Must be called before any cycle is simulated, on a zero-rate
    /// workload (the protocol is the only traffic source).
    pub fn install_closed_loop(&mut self, spec: &ClosedLoopSpec, master_seed: u64) {
        assert_eq!(self.cycle, 0, "closed-loop install after the run started");
        assert!(
            self.arrivals.iter().all(|s| s.next_arrival() == u64::MAX),
            "closed-loop runs require a zero-rate workload"
        );
        let env = NetEnv {
            n: self.plan.n,
            fanout: self.plan.fanout_table(),
        };
        // Closed-loop runs measure every cycle from cycle 1.
        self.metrics.set_measure_origin(0);
        self.closed = Some(ClosedLoopDriver::new(spec.build(&env, master_seed)));
    }

    #[inline]
    fn cv_index(&self, hop: noc_topology::Hop) -> u32 {
        self.plan.cv_index(hop)
    }

    fn alloc_msg(&mut self, msg: ActiveMsg) -> MsgId {
        if let Some(id) = self.free_msgs.pop() {
            self.msgs[id as usize] = Some(msg);
            id
        } else {
            self.msgs.push(Some(msg));
            (self.msgs.len() - 1) as MsgId
        }
    }

    fn alloc_op(&mut self, op: MulticastOp) -> OpId {
        self.ops_allocated += 1;
        if let Some(id) = self.free_ops.pop() {
            self.ops[id as usize] = op;
            id
        } else {
            self.ops.push(op);
            (self.ops.len() - 1) as OpId
        }
    }

    fn activate(&mut self, channel: usize) {
        if !self.active_flag[channel] {
            self.active_flag[channel] = true;
            self.active.push(channel as u32);
        }
    }

    /// Enqueue a freshly generated message at the head channel of its
    /// path (`node` = the injecting source, for the trace).
    fn enqueue(&mut self, id: MsgId, node: u32) {
        let hop0 = live_msg(&self.msgs, id, "freshly enqueued message")
            .path
            .hops[0];
        let cv = self.cv_index(hop0) as usize;
        self.cvs[cv].waiters.push_back((id, 0));
        self.inj_backlog += 1;
        self.peak_backlog = self.peak_backlog.max(self.inj_backlog);
        self.regrant.push(cv as u32);
        self.metrics.trace_inject(self.cycle, node);
    }

    /// Spawn the message(s) of one arrival at `node` this cycle.
    fn spawn(&mut self, node: usize, arrival: Arrival, tagging: bool) {
        let len = self.wl.msg_len;
        let gen = self.cycle;
        match arrival {
            Arrival::Multicast => {
                let op = self.alloc_op(MulticastOp {
                    src: NodeId(node as u32),
                    gen,
                    remaining: self.plan.op_targets(node),
                    last_absorb: gen,
                    tagged: tagging,
                });
                if tagging {
                    self.metrics.multicast_injected += 1;
                    self.tagged_outstanding += 1;
                }
                for si in 0..self.plan.streams(node).len() {
                    let (path, absorbs) = {
                        let pre = &self.plan.streams(node)[si];
                        (Arc::clone(&pre.path), Arc::clone(&pre.absorbs))
                    };
                    let id =
                        self.alloc_msg(ActiveMsg::stream(path, len, gen, tagging, op, absorbs));
                    self.metrics.total_generated += 1;
                    self.enqueue(id, node as u32);
                }
            }
            Arrival::Unicast(dst) => {
                let path = self.plan.unicast_path(NodeId(node as u32), dst);
                let id = self.alloc_msg(ActiveMsg::unicast(path, len, gen, tagging));
                if tagging {
                    self.metrics.unicast_injected += 1;
                    self.tagged_outstanding += 1;
                }
                self.metrics.total_generated += 1;
                self.enqueue(id, node as u32);
            }
        }
    }

    /// Phase 1: message generation at every node (in node order — the
    /// deterministic spawn order both engines share).
    fn generate(&mut self, tagging: bool) {
        for node in 0..self.plan.n {
            if self.arrivals[node].next_arrival() != self.cycle {
                continue;
            }
            let arrival = self.arrivals[node].pop(self.wl, self.plan.n, NodeId(node as u32));
            self.spawn(node, arrival, tagging);
        }
    }

    /// Phase 2: pick at most one flit move per active physical channel,
    /// judged on the previous cycle's counters.
    fn select_moves(&mut self) {
        self.moves.clear();
        let buffer_depth = self.cfg.buffer_depth;
        let mut i = 0;
        while i < self.active.len() {
            let pc = self.active[i] as usize;
            let base = self.plan.cv_base[pc];
            let nv = self.plan.vcs[pc];
            let mut any_owned = false;
            let mut chosen: Option<u8> = None;
            for j in 0..nv {
                let vc = (self.rr[pc] + j) % nv;
                let cv = &self.cvs[(base + vc as u32) as usize];
                let Some((m, h)) = cv.owner else { continue };
                any_owned = true;
                if chosen.is_some() {
                    continue;
                }
                let msg = live_msg(&self.msgs, m, "cv owner");
                let h = h as usize;
                // Supply: the next flit must be available upstream.
                let supply = if h == 0 {
                    msg.traversed[0] < msg.len
                } else {
                    msg.traversed[h] < msg.traversed[h - 1]
                };
                if !supply {
                    continue;
                }
                // Capacity: downstream buffer space as of last cycle.
                if h + 1 < msg.path.len() && msg.occupancy(h) >= buffer_depth {
                    continue;
                }
                chosen = Some(vc);
            }
            if let Some(vc) = chosen {
                let cv = &self.cvs[(base + vc as u32) as usize];
                let (m, h) = cv
                    .owner
                    .expect("selection invariant violated: chosen vc lost its owner mid-cycle");
                self.moves.push((m, h));
                self.rr[pc] = (vc + 1) % nv;
            }
            if any_owned {
                i += 1;
            } else {
                // Lazy deactivation: no cv of this channel is owned.
                self.active_flag[pc] = false;
                self.active.swap_remove(i);
            }
        }
    }

    /// Phase 3: apply the selected moves; handle requests, releases,
    /// absorptions and completions.
    fn apply_moves(&mut self, measuring: bool) {
        let now = self.cycle;
        // Take the moves buffer to appease the borrow checker; restored at
        // the end so the allocation is reused.
        let moves = std::mem::take(&mut self.moves);
        for &(mid, h16) in &moves {
            let h = h16 as usize;
            // --- advance the flit ---
            let (channel_of_h, header_arrived, tail_passed, prev_hop, next_hop) = {
                let msg = live_msg_mut(&mut self.msgs, mid, "moving flit's message");
                msg.traversed[h] += 1;
                let t = msg.traversed[h];
                (
                    msg.path.hops[h].channel.idx(),
                    t == 1,
                    t == msg.len,
                    (h > 0).then(|| msg.path.hops[h - 1]),
                    (h + 1 < msg.path.len()).then(|| msg.path.hops[h + 1]),
                )
            };
            self.metrics.record_flit_move(now, channel_of_h, measuring);

            // --- header entered buffer(h): request the next channel ---
            if header_arrived {
                if h == 0 {
                    // The message left the injection queue head.
                    self.inj_backlog -= 1;
                }
                if let Some(next) = next_hop {
                    let cv = self.cv_index(next) as usize;
                    self.cvs[cv].waiters.push_back((mid, (h + 1) as u16));
                    self.regrant.push(cv as u32);
                }
            }

            // --- tail traversed hop h ---
            if tail_passed {
                // The tail left buffer(h-1): release that channel.
                if let Some(prev) = prev_hop {
                    let cv = self.cv_index(prev) as usize;
                    debug_assert_eq!(self.cvs[cv].owner, Some((mid, (h - 1) as u16)));
                    self.cvs[cv].owner = None;
                    self.regrant.push(cv as u32);
                    self.metrics.trace_release(now, prev.channel.idx());
                }
                // Absorptions scheduled at this hop (multicast targets; the
                // final target's completion hop is the ejection hop).
                let mut absorbed_here = 0u32;
                let mut op_done: Option<OpId> = None;
                let mut stream_tagged = false;
                let mut stream_gen = 0u64;
                {
                    let closed = self.closed.is_some();
                    let msg = live_msg_mut(&mut self.msgs, mid, "absorbing stream's message");
                    if let Some(stream) = msg.multicast.as_mut() {
                        while (stream.next_absorb as usize) < stream.absorbs.len()
                            && stream.absorbs[stream.next_absorb as usize].0 == h16
                        {
                            let target = stream.absorbs[stream.next_absorb as usize].1;
                            if closed {
                                self.arrived.push(ClosedDelivery::Absorb {
                                    op: stream.op,
                                    target,
                                });
                            }
                            self.metrics.trace_absorb(now, target.0);
                            stream.next_absorb += 1;
                            absorbed_here += 1;
                        }
                        if absorbed_here > 0 {
                            let op = &mut self.ops[stream.op as usize];
                            op.remaining -= absorbed_here;
                            op.last_absorb = now;
                            if op.remaining == 0 {
                                op_done = Some(stream.op);
                            }
                        }
                        stream_tagged = msg.tagged;
                        stream_gen = msg.gen;
                    }
                }
                if let Some(opid) = op_done {
                    self.ops_completed += 1;
                    let op = &self.ops[opid as usize];
                    self.metrics.trace_op_done(now, op.src.0);
                    if op.tagged {
                        self.metrics.record_op_delivery(op);
                        self.tagged_outstanding -= 1;
                    }
                    self.free_ops.push(opid);
                    if self.closed.is_some() {
                        self.arrived.push(ClosedDelivery::OpDone(opid));
                    }
                }

                // Message fully absorbed at the ejection hop?
                let is_last = {
                    let msg = live_msg(&self.msgs, mid, "tail-moving message");
                    h == msg.last_hop()
                };
                if is_last {
                    // Release the ejection channel itself.
                    let msg = live_msg(&self.msgs, mid, "tail-moving message");
                    let eject = msg.path.hops[h].channel.idx();
                    let cv = self.cv_index(msg.path.hops[h]) as usize;
                    debug_assert_eq!(self.cvs[cv].owner, Some((mid, h16)));
                    self.cvs[cv].owner = None;
                    self.regrant.push(cv as u32);
                    self.metrics.total_absorbed += 1;
                    self.metrics.trace_release(now, eject);

                    let (tagged, gen, is_unicast, dst) = {
                        let msg = live_msg(&self.msgs, mid, "absorbed message");
                        (msg.tagged, msg.gen, msg.multicast.is_none(), msg.path.dst)
                    };
                    if is_unicast {
                        // Multicast targets trace their absorbs in the
                        // stream's absorb list above; unicasts here.
                        self.metrics.trace_absorb(now, dst.0);
                        if tagged {
                            self.metrics.record_unicast_delivery(now, gen);
                            self.tagged_outstanding -= 1;
                        }
                        if self.closed.is_some() {
                            self.arrived.push(ClosedDelivery::Unicast(mid));
                        }
                    } else if stream_tagged {
                        self.metrics.record_stream_delivery(now, stream_gen);
                    }
                    // Free the slot.
                    self.msgs[mid as usize] = None;
                    self.free_msgs.push(mid);
                }
            }
        }
        self.moves = moves;
        self.moves.clear();
    }

    /// Phase 4: grant free channels to FIFO-first waiters.
    fn grant(&mut self) {
        let regrant = std::mem::take(&mut self.regrant);
        for &cv_u in &regrant {
            let cv = cv_u as usize;
            if self.cvs[cv].owner.is_none() {
                if let Some((m, h)) = self.cvs[cv].waiters.pop_front() {
                    self.cvs[cv].owner = Some((m, h));
                    // Find the physical channel of this cv to activate it.
                    let msg = live_msg(&self.msgs, m, "granted waiter");
                    let channel = msg.path.hops[h as usize].channel.idx();
                    self.activate(channel);
                    self.metrics.trace_grant(self.cycle, channel);
                }
            }
        }
        self.regrant = regrant;
        self.regrant.clear();
    }

    /// Advance one cycle. `tagging` controls whether newly generated
    /// messages join the measured population.
    fn step(&mut self, tagging: bool, measuring: bool) {
        self.cycle += 1;
        self.generate(tagging);
        self.select_moves();
        if !self.moves.is_empty() {
            self.last_move_cycle = self.cycle;
        } else if !self.active.is_empty() {
            // Traffic holds channels but nothing can move this cycle.
            self.metrics.trace_stall(self.cycle);
        }
        self.apply_moves(measuring);
        self.grant();
    }

    /// Deadlock audit: flits exist in the network (owned channels) but
    /// nothing has moved for `window` cycles. With the dateline virtual
    /// channels this must never trigger; it exists to catch regressions in
    /// the deadlock-avoidance scheme.
    fn deadlocked(&self, window: u64) -> bool {
        self.cycle.saturating_sub(self.last_move_cycle) > window && !self.active.is_empty()
    }

    // ------------------------------------------------------------------
    // Closed-loop drive: the protocol machines are the traffic source.
    // ------------------------------------------------------------------

    /// Dispatch [`AppEvent::Start`] to every machine in node order and
    /// perform the resulting injections (eligible to move next cycle,
    /// like any cycle-0 arrival).
    fn closed_start(&mut self) {
        let mut driver = self.closed.take().expect("closed-loop driver present");
        let mut actions = std::mem::take(&mut self.actions);
        for node in 0..self.plan.n {
            driver.dispatch(
                self.cycle,
                NodeId(node as u32),
                AppEvent::Start,
                &mut actions,
            );
        }
        self.closed = Some(driver);
        self.actions = actions;
        self.closed_perform();
        self.grant();
    }

    /// Closed-loop generation phase: fire every timer due this cycle, in
    /// node order, and perform the resulting actions.
    fn closed_generate(&mut self) {
        let mut driver = self.closed.take().expect("closed-loop driver present");
        let mut actions = std::mem::take(&mut self.actions);
        for node in 0..self.plan.n {
            let node = NodeId(node as u32);
            if driver.timer_at(node) == Some(self.cycle) {
                driver.dispatch(self.cycle, node, AppEvent::Timeout, &mut actions);
            }
        }
        self.closed = Some(driver);
        self.actions = actions;
        self.closed_perform();
    }

    /// Dispatch every absorption `apply_moves` recorded this cycle (in
    /// absorption order) and perform the resulting actions; new
    /// injections enqueue before the grant phase.
    fn closed_deliver(&mut self) {
        if self.arrived.is_empty() {
            return;
        }
        let mut driver = self.closed.take().expect("closed-loop driver present");
        let mut actions = std::mem::take(&mut self.actions);
        let arrived = std::mem::take(&mut self.arrived);
        for &d in &arrived {
            match d {
                ClosedDelivery::Unicast(mid) => {
                    let (dst, payload) = driver.unicast_delivered(mid);
                    driver.dispatch(self.cycle, dst, AppEvent::Delivery(payload), &mut actions);
                }
                ClosedDelivery::Absorb { op, target } => {
                    let payload = driver.absorb_payload(op);
                    driver.dispatch(
                        self.cycle,
                        target,
                        AppEvent::Delivery(payload),
                        &mut actions,
                    );
                }
                ClosedDelivery::OpDone(op) => driver.op_done(op),
            }
        }
        self.arrived = arrived;
        self.arrived.clear();
        self.closed = Some(driver);
        self.actions = actions;
        self.closed_perform();
    }

    /// Perform the pending protocol actions: allocate and enqueue the
    /// requested messages (all tagged — closed-loop statistics cover the
    /// whole run). Timers need no engine state here: the cycle engine
    /// polls the driver's timer table each cycle.
    fn closed_perform(&mut self) {
        let actions = std::mem::take(&mut self.actions);
        let len = self.wl.msg_len;
        let gen = self.cycle;
        for &action in &actions {
            match action {
                Action::Unicast { src, dst, payload } => {
                    let path = self.plan.unicast_path(src, dst);
                    let id = self.alloc_msg(ActiveMsg::unicast(path, len, gen, true));
                    self.metrics.unicast_injected += 1;
                    self.tagged_outstanding += 1;
                    self.metrics.total_generated += 1;
                    self.enqueue(id, src.0);
                    self.closed
                        .as_mut()
                        .expect("closed-loop driver present")
                        .note_unicast(id, dst, payload);
                }
                Action::Multicast { src, payload } => {
                    let node = src.idx();
                    assert!(
                        !self.plan.streams(node).is_empty(),
                        "protocol multicast from a source with no streams"
                    );
                    let op = self.alloc_op(MulticastOp {
                        src,
                        gen,
                        remaining: self.plan.op_targets(node),
                        last_absorb: gen,
                        tagged: true,
                    });
                    self.metrics.multicast_injected += 1;
                    self.tagged_outstanding += 1;
                    for si in 0..self.plan.streams(node).len() {
                        let (path, absorbs) = {
                            let pre = &self.plan.streams(node)[si];
                            (Arc::clone(&pre.path), Arc::clone(&pre.absorbs))
                        };
                        let id =
                            self.alloc_msg(ActiveMsg::stream(path, len, gen, true, op, absorbs));
                        self.metrics.total_generated += 1;
                        self.enqueue(id, node as u32);
                    }
                    self.closed
                        .as_mut()
                        .expect("closed-loop driver present")
                        .note_multicast(op, payload);
                }
                Action::Timer { .. } => {}
            }
        }
        self.actions = actions;
        self.actions.clear();
    }

    /// One closed-loop cycle: timers → selection → application →
    /// delivery dispatch → grants. Deliveries dispatch *inside* the
    /// cycle (between application and grant) so the machines' injections
    /// join the waiter queues in the same cycle the absorptions landed —
    /// on both engines, since both order the phases identically.
    fn step_closed(&mut self) {
        self.cycle += 1;
        self.closed_generate();
        self.select_moves();
        if !self.moves.is_empty() {
            self.last_move_cycle = self.cycle;
        } else if !self.active.is_empty() {
            self.metrics.trace_stall(self.cycle);
        }
        self.apply_moves(true);
        self.closed_deliver();
        self.grant();
    }

    /// The protocol has fully quiesced: every machine done, nothing in
    /// flight anywhere.
    fn closed_quiescent(&self) -> bool {
        self.tagged_outstanding == 0
            && self
                .closed
                .as_ref()
                .expect("closed-loop driver present")
                .quiescent()
    }

    /// Closed-loop run loop: no warmup or measurement window — the run
    /// ends at protocol quiescence, with the deadline, backlog and
    /// watchdog breaks as safety nets (all checked at the top, so both
    /// engines evaluate them on exactly the cycles they simulate).
    fn run_closed(&mut self) -> SimResults {
        let deadline = self.cfg.deadline();
        let mut saturated = false;
        let mut deadlocked = false;
        self.closed_start();
        loop {
            if self.closed_quiescent() {
                break;
            }
            if self.cycle >= deadline {
                saturated = true;
                break;
            }
            if self.inj_backlog > self.cfg.backlog_limit {
                saturated = true;
                break;
            }
            if self.cycle.is_multiple_of(1024) && self.deadlocked(10_000) {
                deadlocked = true;
                saturated = true;
                break;
            }
            self.step_closed();
        }
        let cycles = self.cycle;
        let quiesced = self.closed_quiescent();
        let mut res = self.metrics.finish(
            saturated,
            deadlocked,
            cycles,
            self.peak_backlog,
            cycles,
            EngineCounters {
                simulated_cycles: cycles,
                ..Default::default()
            },
        );
        let mut driver = self.closed.take().expect("closed-loop driver present");
        res.closed_loop = Some(driver.finish(cycles, quiesced));
        self.closed = Some(driver);
        res
    }

    /// Run to completion and produce results.
    pub fn run(&mut self) -> SimResults {
        if self.closed.is_some() {
            return self.run_closed();
        }
        let warmup = self.cfg.warmup_cycles;
        let measure_end = self.cfg.measure_end();
        let deadline = self.cfg.deadline();
        let mut saturated = false;
        let mut deadlocked = false;

        loop {
            let next = self.cycle + 1;
            let tagging = next > warmup && next <= measure_end;
            let measuring = tagging;
            self.step(tagging, measuring);

            if self.cycle >= measure_end && self.tagged_outstanding == 0 {
                break;
            }
            if self.cycle >= deadline {
                saturated = self.tagged_outstanding > 0;
                break;
            }
            if self.inj_backlog > self.cfg.backlog_limit {
                saturated = true;
                break;
            }
            if self.cycle.is_multiple_of(1024) && self.deadlocked(10_000) {
                deadlocked = true;
                saturated = true;
                break;
            }
        }

        // Normalise utilisation by the cycles actually spent measuring: a
        // run that breaks out early (saturation, backlog overflow) covers
        // less than the configured window.
        let measured_cycles = self.cycle.min(measure_end).saturating_sub(warmup);
        self.metrics.finish(
            saturated,
            deadlocked,
            self.cycle,
            self.peak_backlog,
            measured_cycles,
            EngineCounters {
                simulated_cycles: self.cycle,
                ..Default::default()
            },
        )
    }

    /// Scripted-injection hook: enqueue a unicast `src → dst` *now* and
    /// make it eligible for injection next cycle, exactly as if the
    /// Poisson source had generated it this cycle. Returns the message id
    /// for use with [`Simulator::message_in_flight`].
    ///
    /// Intended for deterministic micro-benchmarks and timing tests; it
    /// composes with background Poisson traffic.
    pub fn inject_unicast_now(&mut self, src: NodeId, dst: NodeId) -> MsgId {
        let path = self.plan.unicast_path(src, dst);
        let id = self.alloc_msg(ActiveMsg::unicast(path, self.wl.msg_len, self.cycle, false));
        self.metrics.total_generated += 1;
        self.enqueue(id, src.0);
        self.grant();
        id
    }

    /// Scripted-injection hook: start `src`'s configured multicast
    /// operation *now*; returns the ids of its port-stream messages.
    pub fn inject_multicast_now(&mut self, src: NodeId) -> Vec<MsgId> {
        let gen = self.cycle;
        let node = src.idx();
        assert!(
            !self.plan.streams(node).is_empty(),
            "source has no multicast streams configured"
        );
        let op = self.alloc_op(MulticastOp {
            src,
            gen,
            remaining: self.plan.op_targets(node),
            last_absorb: gen,
            tagged: false,
        });
        let mut ids = Vec::new();
        for si in 0..self.plan.streams(node).len() {
            let (path, absorbs) = {
                let pre = &self.plan.streams(node)[si];
                (Arc::clone(&pre.path), Arc::clone(&pre.absorbs))
            };
            let id = self.alloc_msg(ActiveMsg::stream(
                path,
                self.wl.msg_len,
                gen,
                false,
                op,
                absorbs,
            ));
            self.metrics.total_generated += 1;
            self.enqueue(id, src.0);
            ids.push(id);
        }
        self.grant();
        ids
    }

    /// Advance exactly one cycle without tagging or measuring (testing
    /// hook for cycle-precise assertions).
    pub fn step_one(&mut self) {
        self.step(false, false);
    }

    /// Is the message still in the network (queued or in flight)?
    pub fn message_in_flight(&self, id: MsgId) -> bool {
        self.msgs[id as usize].is_some()
    }

    /// Step until `id` completes, returning the completion cycle (the
    /// shared [`SimEngine::run_until_complete`] loop).
    ///
    /// # Panics
    ///
    /// Panics if the message does not complete within 1M cycles (deadlock
    /// or a forgotten zero-length path — both are bugs).
    pub fn run_until_complete(&mut self, id: MsgId) -> u64 {
        SimEngine::run_until_complete(self, id)
    }

    /// Inject a single message immediately (testing hook): returns the
    /// cycle count until it completes, simulating an otherwise idle
    /// network. Must be called on a simulator with a zero-rate workload.
    pub fn measure_isolated_unicast(&mut self, src: NodeId, dst: NodeId) -> u64 {
        assert_eq!(self.wl.gen_rate, 0.0, "requires a zero-rate workload");
        let gen = self.cycle;
        let id = self.inject_unicast_now(src, dst);
        self.run_until_complete(id) - gen
    }

    /// Inject a single multicast operation on an idle network (testing
    /// hook): returns the operation latency (generation until the last
    /// target absorbs the tail flit).
    pub fn measure_isolated_multicast(&mut self, src: NodeId) -> u64 {
        assert_eq!(self.wl.gen_rate, 0.0, "requires a zero-rate workload");
        let gen = self.cycle;
        let ids = self.inject_multicast_now(src);
        let op = live_msg(&self.msgs, ids[0], "injected stream message")
            .multicast
            .as_ref()
            .expect("stream messages carry multicast state")
            .op;
        for id in ids {
            self.run_until_complete(id);
        }
        self.ops[op as usize].last_absorb - gen
    }

    /// Structural self-check (see [`SimEngine::audit`]).
    pub fn audit(&self) -> Result<EngineAudit, String> {
        let lookup = |m: MsgId| self.msgs.get(m as usize).and_then(Option::as_ref);
        let freed: HashSet<OpId> = self.free_ops.iter().copied().collect();
        let live_ops = self
            .ops
            .iter()
            .enumerate()
            .filter(|&(i, _)| !freed.contains(&(i as OpId)))
            .map(|(i, op)| (i as OpId, op))
            .collect();
        audit_state(AuditInput {
            cycle: self.cycle,
            cvs: &self.cvs,
            msg_lookup: &lookup,
            live_messages: self.msgs.iter().flatten().count() as u64,
            live_ops,
            plan: &self.plan,
            inj_backlog: self.inj_backlog,
            tagged_outstanding: self.tagged_outstanding,
            ops_allocated: self.ops_allocated,
            ops_completed: self.ops_completed,
            total_generated: self.metrics.total_generated,
            total_absorbed: self.metrics.total_absorbed,
        })
    }

    /// Current simulated cycle (testing/diagnostics).
    pub fn now(&self) -> u64 {
        self.cycle
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &dyn Topology {
        self.topo
    }

    /// Count of channels whose kind matches (diagnostics). Works on both
    /// dense and implicit storage.
    pub fn channel_count(&self, kind: ChannelKind) -> usize {
        let net = self.topo.network();
        (0..net.num_channels() as u32)
            .filter(|&id| net.channel_at(noc_topology::ChannelId(id)).kind == kind)
            .count()
    }
}

impl SimEngine for Simulator<'_> {
    fn run(&mut self) -> SimResults {
        Simulator::run(self)
    }

    fn step_one(&mut self) {
        Simulator::step_one(self)
    }

    fn now(&self) -> u64 {
        Simulator::now(self)
    }

    fn message_in_flight(&self, id: MsgId) -> bool {
        Simulator::message_in_flight(self, id)
    }

    fn inject_unicast_now(&mut self, src: NodeId, dst: NodeId) -> MsgId {
        Simulator::inject_unicast_now(self, src, dst)
    }

    fn inject_multicast_now(&mut self, src: NodeId) -> Vec<MsgId> {
        Simulator::inject_multicast_now(self, src)
    }

    fn measure_isolated_unicast(&mut self, src: NodeId, dst: NodeId) -> u64 {
        Simulator::measure_isolated_unicast(self, src, dst)
    }

    fn measure_isolated_multicast(&mut self, src: NodeId) -> u64 {
        Simulator::measure_isolated_multicast(self, src)
    }

    fn audit(&self) -> Result<EngineAudit, String> {
        Simulator::audit(self)
    }

    fn install_closed_loop(&mut self, spec: &ClosedLoopSpec, master_seed: u64) {
        Simulator::install_closed_loop(self, spec, master_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::Quarc;
    use noc_workloads::DestinationSets;

    fn zero_workload(topo: &dyn Topology, msg_len: u32) -> Workload {
        Workload::new(msg_len, 0.0, 0.0, DestinationSets::random(topo, 4, 1)).unwrap()
    }

    #[test]
    fn zero_load_unicast_latency_is_exact() {
        let topo = Quarc::new(16).unwrap();
        for (src, dst, msg_len) in [(0u32, 3u32, 16u32), (0, 8, 32), (5, 1, 64), (2, 12, 16)] {
            let wl = zero_workload(&topo, msg_len);
            let mut sim = Simulator::new(&topo, &wl, SimConfig::quick(1));
            let lat = sim.measure_isolated_unicast(NodeId(src), NodeId(dst));
            let path = topo.unicast_path(NodeId(src), NodeId(dst));
            let expected = msg_len as u64 + path.hop_count() as u64;
            assert_eq!(
                lat, expected,
                "zero-load latency {src}->{dst} len {msg_len}: got {lat}, want {expected}"
            );
        }
    }

    #[test]
    fn zero_load_broadcast_latency_matches_longest_stream() {
        let topo = Quarc::new(16).unwrap();
        let wl = Workload::new(32, 0.0, 0.0, DestinationSets::broadcast(&topo)).unwrap();
        let mut sim = Simulator::new(&topo, &wl, SimConfig::quick(1));
        let lat = sim.measure_isolated_multicast(NodeId(0));
        // All four broadcast streams traverse k = 4 links; the slowest
        // completes at msg + (k + 1) cycles.
        assert_eq!(lat, 32 + 4 + 1);
    }

    #[test]
    fn conservation_all_generated_messages_absorb() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 3);
        let wl = Workload::new(16, 0.004, 0.05, sets).unwrap();
        let mut sim = Simulator::new(&topo, &wl, SimConfig::quick(7));
        let res = sim.run();
        assert!(!res.saturated, "low load must not saturate");
        assert!(res.complete(), "all tagged traffic must be delivered");
        assert!(res.total_generated > 0);
        // Anything generated but unabsorbed must still be in flight (the
        // run stops once tagged traffic drains, untagged may remain).
        assert!(res.total_absorbed <= res.total_generated);
        let in_flight = res.total_generated - res.total_absorbed;
        assert!(
            in_flight < 3000,
            "untagged in-flight backlog should be small at low load, got {in_flight}"
        );
        sim.audit().expect("post-run audit");
    }

    #[test]
    fn latencies_grow_with_load() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 3);
        let mut means = Vec::new();
        for rate in [0.002, 0.02] {
            let wl = Workload::new(16, rate, 0.05, sets.clone()).unwrap();
            let mut sim = Simulator::new(&topo, &wl, SimConfig::quick(11));
            let res = sim.run();
            assert!(res.unicast.count > 50, "need samples at rate {rate}");
            means.push(res.unicast.mean);
        }
        assert!(
            means[1] > means[0],
            "unicast latency must rise with load: {means:?}"
        );
    }

    #[test]
    fn saturation_is_detected_at_absurd_load() {
        let topo = Quarc::new(8).unwrap();
        let sets = DestinationSets::random(&topo, 2, 3);
        let wl = Workload::new(64, 0.9, 0.5, sets).unwrap();
        let mut cfg = SimConfig::quick(13);
        cfg.backlog_limit = 2_000;
        let mut sim = Simulator::new(&topo, &wl, cfg);
        let res = sim.run();
        assert!(
            res.saturated,
            "rate 0.9 with 64-flit messages must saturate"
        );
    }

    #[test]
    fn early_break_normalises_utilization_by_actual_measured_cycles() {
        // Force an early backlog break well inside the measurement window
        // and check the utilisation denominator is the cycles actually
        // measured, not the configured window. With the configured-window
        // denominator the busiest channel of a saturated 8-node Quarc
        // would read far below its true (≈1) utilisation.
        let topo = Quarc::new(8).unwrap();
        let sets = DestinationSets::random(&topo, 2, 3);
        let wl = Workload::new(64, 0.9, 0.5, sets).unwrap();
        let mut cfg = SimConfig::quick(13);
        cfg.warmup_cycles = 100;
        cfg.measure_cycles = 1_000_000; // never reached
        cfg.backlog_limit = 2_000;
        let mut sim = Simulator::new(&topo, &wl, cfg);
        let res = sim.run();
        assert!(res.saturated);
        assert!(
            res.cycles < cfg.warmup_cycles + cfg.measure_cycles,
            "the run must have broken out early"
        );
        let measured = res.cycles - cfg.warmup_cycles;
        // The busiest channel moves a flit nearly every measured cycle at
        // this load; the old `measure_cycles` denominator would report
        // measured / 1_000_000 ≪ 0.5.
        assert!(
            res.max_utilization() > 0.5,
            "bottleneck utilisation {} should be ~1 over the {} measured cycles",
            res.max_utilization(),
            measured
        );
        assert!(
            res.max_utilization() <= 1.0 + 1e-12,
            "utilisation cannot exceed one flit per cycle"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 5);
        let wl = Workload::new(16, 0.01, 0.1, sets).unwrap();
        let r1 = Simulator::new(&topo, &wl, SimConfig::quick(99)).run();
        let r2 = Simulator::new(&topo, &wl, SimConfig::quick(99)).run();
        assert_eq!(r1.unicast.count, r2.unicast.count);
        assert_eq!(r1.unicast.mean, r2.unicast.mean);
        assert_eq!(r1.multicast.mean, r2.multicast.mean);
        assert_eq!(r1.flit_moves, r2.flit_moves);
        let r3 = Simulator::new(&topo, &wl, SimConfig::quick(100)).run();
        assert_ne!(
            r1.flit_moves, r3.flit_moves,
            "different seed, different run"
        );
    }

    #[test]
    fn multicast_latency_at_least_stream_latency() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 6, 5);
        let wl = Workload::new(16, 0.008, 0.2, sets).unwrap();
        let res = Simulator::new(&topo, &wl, SimConfig::quick(42)).run();
        assert!(res.multicast.count > 20);
        assert!(
            res.multicast.mean >= res.stream.mean,
            "op latency (max over streams) must dominate stream latency"
        );
    }

    #[test]
    fn shared_plan_reproduces_fresh_construction() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 5);
        let wl = Workload::new(16, 0.01, 0.1, sets).unwrap();
        let plan = SimPlan::build(&topo, &wl).expect("plan builds");
        let a = Simulator::new(&topo, &wl, SimConfig::quick(5)).run();
        let b = Simulator::with_plan(&topo, &wl, SimConfig::quick(5), Arc::clone(&plan)).run();
        let c = Simulator::with_plan(&topo, &wl, SimConfig::quick(5), plan).run();
        assert_eq!(a.flit_moves, b.flit_moves);
        assert_eq!(a.unicast.mean, b.unicast.mean);
        assert_eq!(b.flit_moves, c.flit_moves, "plans are reusable");
    }
}
