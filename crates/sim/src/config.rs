//! Simulator configuration.

use noc_telemetry::TelemetrySpec;
use serde::{Deserialize, Serialize};

/// Which simulation engine executes the run.
///
/// Both engines implement identical semantics and produce bit-identical
/// results under the same seed (enforced by the differential suite in
/// `tests/engine_equivalence.rs`); they differ only in how they spend
/// wall-clock time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// The cycle-stepped reference engine: advances every cycle,
    /// scanning the active network. Simple, obviously correct — kept as
    /// the oracle the event engine is differentially tested against.
    Cycle,
    /// The event-driven engine: skips provably inert cycles (idle gaps
    /// between injections, blocked fixpoints) and jumps straight to the
    /// next arrival, grant boundary or watchdog tick. 5–50× faster at
    /// low load; the default.
    #[default]
    EventDriven,
}

/// Run-length and fidelity parameters of a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct SimConfig {
    /// Master seed; every run is deterministic in `(seed, config,
    /// workload, topology)`.
    pub seed: u64,
    /// Cycles discarded before measurement starts (transient removal).
    pub warmup_cycles: u64,
    /// Length of the tagging window: messages generated in
    /// `[warmup, warmup + measure)` contribute to the statistics.
    pub measure_cycles: u64,
    /// Extra cycles allowed after the measurement window for tagged
    /// messages to drain; exceeding it marks the run as saturated.
    pub drain_cycles: u64,
    /// Flit-buffer depth per virtual channel. Depth 2 sustains full
    /// throughput under the one-cycle credit loop; depth 1 is classic
    /// single-flit wormhole buffering (half throughput per channel).
    pub buffer_depth: u32,
    /// If the number of messages waiting at injection channels exceeds this
    /// limit the run stops early and reports saturation.
    pub backlog_limit: usize,
    /// Batch size for the batch-means confidence intervals.
    pub batch_size: u64,
    /// Which engine executes the run (event-driven by default; the cycle
    /// engine is the reference oracle).
    pub engine: EngineKind,
    /// Flight-recorder telemetry: event tracing and the utilization time
    /// series. Off by default — a disabled instrument costs one branch
    /// per tap and never perturbs results (the equivalence suite checks
    /// runs bit-identical with telemetry on and off).
    pub telemetry: TelemetrySpec,
}

// Hand-written so configurations persisted before the telemetry
// subsystem (scenario JSONs, cached results) keep parsing: a missing
// `telemetry` key means everything off, which is exactly how those runs
// executed.
impl serde::Deserialize for SimConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let f = |name| serde::de::field(v, "SimConfig", name);
        Ok(SimConfig {
            seed: Deserialize::from_value(f("seed")?)?,
            warmup_cycles: Deserialize::from_value(f("warmup_cycles")?)?,
            measure_cycles: Deserialize::from_value(f("measure_cycles")?)?,
            drain_cycles: Deserialize::from_value(f("drain_cycles")?)?,
            buffer_depth: Deserialize::from_value(f("buffer_depth")?)?,
            backlog_limit: Deserialize::from_value(f("backlog_limit")?)?,
            batch_size: Deserialize::from_value(f("batch_size")?)?,
            engine: Deserialize::from_value(f("engine")?)?,
            telemetry: match v.get("telemetry") {
                Some(t) => Deserialize::from_value(t)?,
                None => TelemetrySpec::default(),
            },
        })
    }
}

impl SimConfig {
    /// Small run for unit tests: fast, still long enough for stable means
    /// at the rates the tests use.
    pub fn quick(seed: u64) -> Self {
        SimConfig {
            seed,
            warmup_cycles: 3_000,
            measure_cycles: 15_000,
            drain_cycles: 40_000,
            buffer_depth: 2,
            backlog_limit: 20_000,
            batch_size: 32,
            engine: EngineKind::default(),
            telemetry: TelemetrySpec::default(),
        }
    }

    /// Figure-quality run used by the Fig. 6/7 regeneration harness.
    pub fn standard(seed: u64) -> Self {
        SimConfig {
            seed,
            warmup_cycles: 20_000,
            measure_cycles: 120_000,
            drain_cycles: 200_000,
            buffer_depth: 2,
            backlog_limit: 60_000,
            batch_size: 128,
            engine: EngineKind::default(),
            telemetry: TelemetrySpec::default(),
        }
    }

    /// This configuration with the given engine selected (builder style).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// This configuration with the given telemetry spec (builder style).
    pub fn with_telemetry(mut self, telemetry: TelemetrySpec) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// End of the tagging window.
    #[inline]
    pub fn measure_end(&self) -> u64 {
        self.warmup_cycles + self.measure_cycles
    }

    /// Hard stop cycle.
    #[inline]
    pub fn deadline(&self) -> u64 {
        self.measure_end() + self.drain_cycles
    }

    /// Validate invariants (buffer depth and windows).
    pub fn validate(&self) -> Result<(), String> {
        if self.buffer_depth == 0 {
            return Err("buffer_depth must be >= 1".into());
        }
        if self.measure_cycles == 0 {
            return Err("measure_cycles must be >= 1".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be >= 1".into());
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::standard(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_compose() {
        let c = SimConfig::quick(1);
        assert_eq!(c.measure_end(), c.warmup_cycles + c.measure_cycles);
        assert_eq!(c.deadline(), c.measure_end() + c.drain_cycles);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut c = SimConfig::quick(1);
        c.buffer_depth = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::quick(1);
        c.measure_cycles = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::quick(1);
        c.batch_size = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn standard_is_longer_than_quick() {
        assert!(SimConfig::standard(0).measure_cycles > SimConfig::quick(0).measure_cycles);
    }

    #[test]
    fn telemetry_defaults_off_and_builds_on() {
        use noc_telemetry::TraceMode;
        assert!(!SimConfig::quick(1).telemetry.enabled());
        assert!(!SimConfig::standard(1).telemetry.enabled());
        let cfg = SimConfig::quick(1).with_telemetry(TelemetrySpec::flight_recorder(512, 64));
        assert_eq!(cfg.telemetry.trace, TraceMode::Ring { capacity: 512 });
        assert_eq!(cfg.telemetry.util_window, 64);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn pre_telemetry_configs_still_parse() {
        // A config serialized before the telemetry field existed: the
        // missing key must deserialize as telemetry-off, not an error.
        let mut cfg = SimConfig::quick(9);
        cfg.telemetry = TelemetrySpec::off().with_util_window(32);
        let json = serde::json::to_string(&cfg);
        let legacy = json.replace(",\"telemetry\":{\"trace\":\"Off\",\"util_window\":32}", "");
        assert_ne!(legacy, json, "telemetry key was present and stripped");
        let back: SimConfig = serde::json::from_str(&legacy).unwrap();
        assert_eq!(back, SimConfig::quick(9), "defaults to telemetry off");
        // And a config that kept the key round-trips identically.
        let full: SimConfig = serde::json::from_str(&json).unwrap();
        assert_eq!(full, cfg);
    }

    #[test]
    fn event_engine_is_the_default() {
        assert_eq!(SimConfig::quick(1).engine, EngineKind::EventDriven);
        assert_eq!(SimConfig::standard(1).engine, EngineKind::EventDriven);
        assert_eq!(
            SimConfig::quick(1).with_engine(EngineKind::Cycle).engine,
            EngineKind::Cycle
        );
    }
}
