//! In-flight message state.
//!
//! The simulator does not materialise individual flits. A wormhole message
//! occupies a contiguous window of its path's channels; per hop it suffices
//! to count how many flits have traversed that channel
//! (`traversed[h]`). All flit-level behaviour follows:
//!
//! * buffer occupancy of hop `h` = `traversed[h] − traversed[h+1]`;
//! * the header has entered hop `h`'s buffer iff `traversed[h] ≥ 1`;
//! * the tail has left hop `h−1`'s buffer iff `traversed[h] == len`.

use noc_topology::{NodeId, Path};
use std::collections::VecDeque;
use std::sync::Arc;

/// Dense message identifier (index into the simulator's slab).
pub type MsgId = u32;

/// Per-(channel, vc) resource state, shared by both engines: a cv is
/// either free or owned by one message at one hop of its path, with a
/// FIFO list of waiting headers (the paper's non-preemptive arbitration).
#[derive(Clone, Debug, Default)]
pub(crate) struct CvState {
    /// Owning message and the hop index it holds this cv at.
    pub(crate) owner: Option<(MsgId, u16)>,
    /// Headers waiting for this cv, FIFO.
    pub(crate) waiters: VecDeque<(MsgId, u16)>,
}

/// Dense multicast-operation identifier.
pub type OpId = u32;

/// Precomputed absorb schedule of a multicast stream: `(completion_hop,
/// target)` pairs in visit order. A target is absorbed when the stream's
/// tail has traversed `completion_hop` — for an intermediate target that is
/// the hop leaving the target's router (clone to the sink happens in the
/// same cycle as the forwarding, §3.3.2); for the final target it is the
/// ejection hop itself.
pub type AbsorbSchedule = Arc<[(u16, NodeId)]>;

/// Build the absorb schedule for a stream path and its visit-ordered
/// targets.
pub fn absorb_schedule(
    path: &Path,
    targets: &[NodeId],
    downstream_of: impl Fn(noc_topology::ChannelId) -> NodeId,
) -> AbsorbSchedule {
    let mut out = Vec::with_capacity(targets.len());
    let mut ti = 0usize;
    // Link hops are indices 1..len-1; the node entered by link hop j is
    // downstream(channel(j)); its completion hop is j + 1.
    for (j, hop) in path.hops[1..path.hops.len() - 1].iter().enumerate() {
        if ti >= targets.len() {
            break;
        }
        let node = downstream_of(hop.channel);
        if node == targets[ti] {
            out.push(((j + 2) as u16, node)); // hop index j+1, completion j+2
            ti += 1;
        }
    }
    assert_eq!(
        ti,
        targets.len(),
        "every target must lie on the stream path in visit order"
    );
    out.into()
}

/// An active (injected or queued) message.
#[derive(Clone, Debug)]
pub struct ActiveMsg {
    /// The full route (shared with the precomputed path tables).
    pub path: Arc<Path>,
    /// Message length in flits.
    pub len: u32,
    /// Generation cycle.
    pub gen: u64,
    /// Flits that have traversed each hop (`traversed.len() == path.len()`).
    pub traversed: Box<[u32]>,
    /// For multicast streams: the owning operation and absorb schedule.
    pub multicast: Option<StreamState>,
    /// Whether this message counts toward the statistics.
    pub tagged: bool,
}

/// Multicast-specific message state.
#[derive(Clone, Debug)]
pub struct StreamState {
    /// The multicast operation this stream belongs to.
    pub op: OpId,
    /// Absorb schedule in visit order.
    pub absorbs: AbsorbSchedule,
    /// Next unabsorbed entry of `absorbs`.
    pub next_absorb: u16,
}

impl ActiveMsg {
    /// A unicast message over `path`.
    pub fn unicast(path: Arc<Path>, len: u32, gen: u64, tagged: bool) -> Self {
        let hops = path.len();
        ActiveMsg {
            path,
            len,
            gen,
            traversed: vec![0u32; hops].into_boxed_slice(),
            multicast: None,
            tagged,
        }
    }

    /// A multicast stream message.
    pub fn stream(
        path: Arc<Path>,
        len: u32,
        gen: u64,
        tagged: bool,
        op: OpId,
        absorbs: AbsorbSchedule,
    ) -> Self {
        let hops = path.len();
        ActiveMsg {
            path,
            len,
            gen,
            traversed: vec![0u32; hops].into_boxed_slice(),
            multicast: Some(StreamState {
                op,
                absorbs,
                next_absorb: 0,
            }),
            tagged,
        }
    }

    /// Index of the last hop (the ejection channel).
    #[inline]
    pub fn last_hop(&self) -> usize {
        self.path.len() - 1
    }

    /// Has the whole message been absorbed?
    #[inline]
    pub fn complete(&self) -> bool {
        self.traversed[self.last_hop()] == self.len
    }

    /// Buffer occupancy of hop `h` (flits that traversed `h` but not yet
    /// `h+1`).
    #[inline]
    pub fn occupancy(&self, h: usize) -> u32 {
        if h + 1 < self.path.len() {
            self.traversed[h] - self.traversed[h + 1]
        } else {
            0 // ejection buffer drains into the sink instantly
        }
    }
}

/// A multicast operation: one generation event fanned out over up to `m`
/// port streams.
#[derive(Clone, Debug)]
pub struct MulticastOp {
    /// Source node of the operation.
    pub src: NodeId,
    /// Generation cycle.
    pub gen: u64,
    /// Destinations not yet absorbed (across all streams).
    pub remaining: u32,
    /// Cycle of the most recent absorption.
    pub last_absorb: u64,
    /// Whether the operation counts toward the statistics.
    pub tagged: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::{NodeId, Quarc, Topology};

    #[test]
    fn absorb_schedule_for_cross_left_stream() {
        let q = Quarc::new(16).unwrap();
        let streams = q.multicast_streams(NodeId(0), &[NodeId(8), NodeId(6), NodeId(5)]);
        let st = &streams[0];
        let net = q.network();
        let sched = absorb_schedule(&st.path, &st.targets, |c| net.downstream(c));
        // Path: inj(0), xl 0->8 (hop1), ccw 8->7 (hop2), ccw 7->6 (hop3),
        // ccw 6->5 (hop4), ej(5) (hop5).
        // Target 8 completes at hop 2, 6 at hop 4, 5 at hop 5 (ejection).
        assert_eq!(
            sched.as_ref(),
            &[(2, NodeId(8)), (4, NodeId(6)), (5, NodeId(5))]
        );
    }

    #[test]
    fn final_target_completes_at_ejection_hop() {
        let q = Quarc::new(16).unwrap();
        let streams = q.multicast_streams(NodeId(0), &[NodeId(2)]);
        let st = &streams[0];
        let net = q.network();
        let sched = absorb_schedule(&st.path, &st.targets, |c| net.downstream(c));
        let last = st.path.len() - 1;
        assert_eq!(sched.as_ref(), &[(last as u16, NodeId(2))]);
    }

    #[test]
    fn occupancy_and_completion() {
        let q = Quarc::new(16).unwrap();
        let path = Arc::new(q.unicast_path(NodeId(0), NodeId(2)));
        let mut m = ActiveMsg::unicast(path, 4, 10, true);
        assert!(!m.complete());
        m.traversed[0] = 3;
        m.traversed[1] = 1;
        assert_eq!(m.occupancy(0), 2);
        assert_eq!(m.occupancy(1), 1);
        let last = m.last_hop();
        m.traversed[last] = 4;
        assert!(m.complete());
        assert_eq!(m.occupancy(last), 0);
    }

    #[test]
    #[should_panic(expected = "visit order")]
    fn absorb_schedule_rejects_off_path_targets() {
        let q = Quarc::new(16).unwrap();
        let streams = q.multicast_streams(NodeId(0), &[NodeId(2)]);
        let st = &streams[0];
        let net = q.network();
        // Node 9 is not on the clockwise stream to node 2.
        absorb_schedule(&st.path, &[NodeId(9)], |c| net.downstream(c));
    }
}
