//! The engine abstraction: one simulation contract, two implementations.
//!
//! [`SimEngine`] is the interface the rest of the workspace programs
//! against — the harness, the figure binaries and the timing tests all
//! accept `dyn SimEngine`, so the cycle-stepped reference engine
//! ([`crate::Simulator`]) and the event-driven engine
//! ([`crate::EventSimulator`]) are interchangeable. [`build_engine`]
//! dispatches on [`crate::config::EngineKind`].
//!
//! The two engines promise *bit-identical* runs under the same seed:
//! identical delivered counts, identical latency samples in identical
//! order, identical cycle counts. `tests/engine_equivalence.rs` enforces
//! the promise differentially; [`SimEngine::audit`] exposes the structural
//! invariants (ownership consistency, conservation counters) that the
//! property tests check on both.

use crate::config::{EngineKind, SimConfig};
use crate::event_engine::EventSimulator;
use crate::message::{ActiveMsg, CvState, MsgId, MulticastOp, OpId};
use crate::plan::SimPlan;
use crate::results::SimResults;
use noc_app::ClosedLoopSpec;
use noc_topology::{NodeId, Topology};
use noc_workloads::Workload;
use std::collections::HashSet;
use std::sync::Arc;

/// A flit-level wormhole simulation engine.
///
/// Implementations must agree cycle-for-cycle: every method here has the
/// exact semantics documented on the reference [`crate::Simulator`].
pub trait SimEngine {
    /// Run to completion and produce results.
    fn run(&mut self) -> SimResults;

    /// Advance exactly one cycle without tagging or measuring (testing
    /// hook for cycle-precise assertions).
    fn step_one(&mut self);

    /// Current simulated cycle.
    fn now(&self) -> u64;

    /// Is the message still in the network (queued or in flight)?
    fn message_in_flight(&self, id: MsgId) -> bool;

    /// Scripted-injection hook: enqueue a unicast `src → dst` *now*,
    /// eligible for injection next cycle.
    fn inject_unicast_now(&mut self, src: NodeId, dst: NodeId) -> MsgId;

    /// Scripted-injection hook: start `src`'s configured multicast
    /// operation *now*; returns the ids of its port-stream messages.
    fn inject_multicast_now(&mut self, src: NodeId) -> Vec<MsgId>;

    /// Inject a single unicast on an idle network and return its latency.
    /// Must be called on a simulator with a zero-rate workload.
    fn measure_isolated_unicast(&mut self, src: NodeId, dst: NodeId) -> u64;

    /// Inject a single multicast operation on an idle network and return
    /// the operation latency (generation until the last target absorbs).
    fn measure_isolated_multicast(&mut self, src: NodeId) -> u64;

    /// Structural self-check: ownership consistency plus the conservation
    /// counters. `Err` describes the first violated invariant.
    fn audit(&self) -> Result<EngineAudit, String>;

    /// Install a closed-loop protocol: [`SimEngine::run`] is then driven
    /// by the spec's per-node machines instead of open-loop arrivals,
    /// ends at protocol quiescence, and stamps
    /// [`SimResults::closed_loop`](crate::results::SimResults::closed_loop).
    ///
    /// # Panics
    ///
    /// Panics if any cycle has already been simulated or the workload's
    /// generation rate is non-zero (the protocol must be the only
    /// traffic source).
    fn install_closed_loop(&mut self, spec: &ClosedLoopSpec, master_seed: u64);

    /// Step until `id` completes, returning the completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if the message does not complete within 1M cycles (deadlock
    /// or a forgotten zero-length path — both are bugs).
    fn run_until_complete(&mut self, id: MsgId) -> u64 {
        let guard = self.now() + 1_000_000;
        while self.message_in_flight(id) {
            self.step_one();
            assert!(self.now() < guard, "message {id} did not complete");
        }
        self.now()
    }
}

/// Snapshot of an engine's structural counters, produced by
/// [`SimEngine::audit`] after the per-resource consistency checks pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineAudit {
    /// Current simulated cycle.
    pub cycle: u64,
    /// Messages allocated and not yet absorbed (queued or in flight).
    pub live_messages: u64,
    /// Messages waiting at injection channels (the backlog).
    pub queued_messages: u64,
    /// Cv resources currently owned by a message.
    pub owned_cvs: u64,
    /// Multicast operations allocated and not yet completed.
    pub live_ops: u64,
    /// Multicast operations allocated since the start of the run.
    pub ops_allocated: u64,
    /// Multicast operations whose `remaining` reached zero (each op must
    /// complete exactly once: `ops_allocated == ops_completed + live_ops`).
    pub ops_completed: u64,
    /// Messages generated (all classes, tagged or not).
    pub total_generated: u64,
    /// Messages fully absorbed by sinks.
    pub total_absorbed: u64,
    /// Tagged traffic still outstanding.
    pub tagged_outstanding: u64,
}

/// Build the engine selected by `cfg.engine`.
///
/// Returns a typed [`PlanError`](crate::plan::PlanError) when the
/// workload does not fit the topology, instead of panicking.
pub fn build_engine<'a>(
    topo: &'a dyn Topology,
    wl: &'a Workload,
    cfg: SimConfig,
) -> Result<Box<dyn SimEngine + 'a>, crate::plan::PlanError> {
    Ok(build_engine_with_plan(
        topo,
        wl,
        cfg,
        SimPlan::build(topo, wl)?,
    ))
}

/// Build the engine selected by `cfg.engine` on a prebuilt [`SimPlan`]
/// (rate sweeps and differential pairs share one plan across runs).
pub fn build_engine_with_plan<'a>(
    topo: &'a dyn Topology,
    wl: &'a Workload,
    cfg: SimConfig,
    plan: Arc<SimPlan>,
) -> Box<dyn SimEngine + 'a> {
    match cfg.engine {
        EngineKind::Cycle => Box::new(crate::Simulator::with_plan(topo, wl, cfg, plan)),
        EngineKind::EventDriven => Box::new(EventSimulator::with_plan(topo, wl, cfg, plan)),
    }
}

/// Borrowed view of an engine's dynamic state for [`audit_state`].
///
/// Message and op storage is abstracted (a lookup closure plus a
/// materialised live-op list) because the two engines keep different
/// layouts — the reference engine a `Vec<Option<_>>` with free lists,
/// the event engine generation-tagged [`crate::arena::Arena`]s. Audits
/// are cold paths; the materialisation cost is irrelevant.
pub(crate) struct AuditInput<'s> {
    pub cycle: u64,
    pub cvs: &'s [CvState],
    /// Live-message lookup: `None` for freed (or stale) ids.
    pub msg_lookup: &'s dyn Fn(MsgId) -> Option<&'s ActiveMsg>,
    /// Messages allocated and not yet absorbed.
    pub live_messages: u64,
    /// Live multicast operations with their ids.
    pub live_ops: Vec<(OpId, &'s MulticastOp)>,
    pub plan: &'s SimPlan,
    pub inj_backlog: usize,
    pub tagged_outstanding: u64,
    pub ops_allocated: u64,
    pub ops_completed: u64,
    pub total_generated: u64,
    pub total_absorbed: u64,
}

/// Shared audit over both engines' identically-shaped state: checks that
/// every owned cv points at a live message whose path actually crosses
/// that cv, that no (message, hop) owns two cvs, that waiters reference
/// live messages, and that every live multicast operation still has
/// targets outstanding.
pub(crate) fn audit_state(inp: AuditInput<'_>) -> Result<EngineAudit, String> {
    let mut owned_cvs = 0u64;
    let mut holders: HashSet<(MsgId, u16)> = HashSet::new();
    for (cv, state) in inp.cvs.iter().enumerate() {
        if let Some((m, h)) = state.owner {
            owned_cvs += 1;
            let msg =
                (inp.msg_lookup)(m).ok_or_else(|| format!("cv {cv} owned by dead message {m}"))?;
            let hop = *msg
                .path
                .hops
                .get(h as usize)
                .ok_or_else(|| format!("cv {cv} owner hop {h} beyond message {m}'s path"))?;
            if inp.plan.cv_index(hop) as usize != cv {
                return Err(format!(
                    "cv {cv} owned by message {m} at hop {h}, but that hop maps to cv {}",
                    inp.plan.cv_index(hop)
                ));
            }
            if !holders.insert((m, h)) {
                return Err(format!("message {m} hop {h} owns two cvs"));
            }
        }
        for &(m, _) in &state.waiters {
            if (inp.msg_lookup)(m).is_none() {
                return Err(format!("cv {cv} queues dead message {m}"));
            }
        }
    }

    let live_ops = inp.live_ops.len() as u64;
    for &(i, op) in &inp.live_ops {
        if op.remaining == 0 {
            return Err(format!("live multicast op {i} has zero targets remaining"));
        }
    }
    if inp.ops_allocated != inp.ops_completed + live_ops {
        return Err(format!(
            "op accounting broken: {} allocated != {} completed + {} live",
            inp.ops_allocated, inp.ops_completed, live_ops
        ));
    }

    if inp.total_generated != inp.total_absorbed + inp.live_messages {
        return Err(format!(
            "flit conservation broken: {} generated != {} absorbed + {} live",
            inp.total_generated, inp.total_absorbed, inp.live_messages
        ));
    }

    Ok(EngineAudit {
        cycle: inp.cycle,
        live_messages: inp.live_messages,
        queued_messages: inp.inj_backlog as u64,
        owned_cvs,
        live_ops,
        ops_allocated: inp.ops_allocated,
        ops_completed: inp.ops_completed,
        total_generated: inp.total_generated,
        total_absorbed: inp.total_absorbed,
        tagged_outstanding: inp.tagged_outstanding,
    })
}
