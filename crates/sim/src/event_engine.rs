//! The event-driven wormhole engine.
//!
//! Same semantics as the cycle-stepped reference engine
//! ([`crate::Simulator`]), different relationship with time: instead of
//! advancing every cycle, this engine only *simulates* cycles on which the
//! network state can change, and jumps over the rest. Runs are
//! bit-identical to the reference under the same seed — same arrivals
//! (both engines draw from the shared per-node [`ArrivalStream`]s), same
//! arbitration outcomes, same statistics in the same order — which the
//! differential suite (`tests/engine_equivalence.rs`) enforces.
//!
//! ## Which cycles can be skipped?
//!
//! A cycle is *inert* when simulating it would change nothing. Two
//! situations guarantee that, and the engine proves them incrementally:
//!
//! * **Idle** — no cv is owned (`active` is empty). Then no flit can
//!   move, no waiter exists (a waiter on a free cv would have been
//!   granted when it enqueued), and only a new arrival changes anything.
//! * **Stalled** — the last simulated cycle selected no moves and granted
//!   no new owners. Selection judges supply/capacity purely on the flit
//!   counters, which only moves mutate, and round-robin pointers only
//!   advance on a chosen move; so if nothing moved and nothing was
//!   granted, the next cycle's selection reaches the identical verdict.
//!   The state is a fixpoint until the next arrival.
//!
//! In either situation the engine advances straight to the earliest of:
//! the next scheduled arrival (from the binary-heap [`EventQueue`]), the
//! end of the measurement window (where the run may terminate), the drain
//! deadline, and — when channels are still held — the next deadlock
//! watchdog tick. Each of those is exactly a cycle where the reference
//! engine's run loop could newly break or its state could change, so the
//! observable trajectory (break cycle, flags, every counter) is preserved.
//!
//! ## Streaming fast-forward
//!
//! Between structural events a wormhole message simply *streams*: every
//! channel of its granted window moves one flit per cycle, and the cycle
//! outcome repeats verbatim. After simulating a cycle the engine checks
//! whether the next cycles are guaranteed replays — every active channel
//! either moved its single owned cv (with stable supply and credit) or is
//! stably blocked, nothing was granted, no tail/header/absorb threshold,
//! arrival, run boundary or watchdog tick is due — and if so it applies
//! `K` repetitions in one bulk update of the flit counters
//! (`EventSimulator::apply_streaming_span`). Grant-to-grant, the
//! per-cycle machinery only runs on cycles where arbitration can change.
//!
//! Together the two mechanisms collapse the cost from O(cycles) to
//! O(structural events): injections, header hand-offs, grants and tail
//! releases. That is the 10–50× lever the Fig. 6/7 sweeps need at low
//! load, with the cycle engine retained as the oracle.

use crate::arena::Arena;
use crate::closed_loop::{Action, ClosedDelivery, ClosedLoopDriver};
use crate::config::SimConfig;
use crate::engine_api::{audit_state, AuditInput, EngineAudit, SimEngine};
use crate::message::{ActiveMsg, CvState, MsgId, MulticastOp, OpId};
use crate::metrics::Metrics;
use crate::plan::SimPlan;
use crate::results::{EngineCounters, SimResults};
use crate::schedule::{Arrival, ArrivalStream, EventQueue};
use noc_app::{AppEvent, ClosedLoopSpec, NetEnv};
use noc_topology::{NodeId, Topology};
use noc_workloads::Workload;
use std::sync::Arc;

/// Deadlock-watchdog parameters, shared verbatim with the reference
/// engine: checked on multiples of `WATCHDOG_STRIDE`, firing after
/// `WATCHDOG_WINDOW` move-free cycles with channels still held.
const WATCHDOG_STRIDE: u64 = 1024;
const WATCHDOG_WINDOW: u64 = 10_000;

/// Cap of the streaming-scan backoff exponent: after repeated
/// unprofitable eligibility scans the engine re-attempts at most every
/// `2^SPAN_BACKOFF_CAP` eligible cycles. At high load the scan almost
/// always fails (held channels trip its conservative freeze checks),
/// and running it after every simulated cycle was the hot-path overhead
/// that made the event engine lose to the cycle engine there — the
/// backoff is a deterministic heuristic that only changes *when* spans
/// are attempted, never their outcome, so results are unaffected.
const SPAN_BACKOFF_CAP: u32 = 8;

/// A span must advance at least this many cycles to count as profitable
/// and reset the backoff. A full eligibility scan costs on the order of
/// a few simulated cycles, so shorter spans — the typical find deep in
/// saturation, where a handful of cycles stream between structural
/// events — are applied (the cycles are already bought) but pace the
/// scan like a failure: without this, each short find re-arms per-cycle
/// scanning and the scan overhead eats the streamed cycles it saves.
const SPAN_PROFIT_MIN: u64 = 8;

/// The event-driven simulator — the default engine.
pub struct EventSimulator<'a> {
    topo: &'a dyn Topology,
    wl: &'a Workload,
    cfg: SimConfig,
    plan: Arc<SimPlan>,

    // --- dynamic state (same resource model as the reference engine) ---
    cycle: u64,
    cvs: Vec<CvState>,
    rr: Vec<u8>,
    active: Vec<u32>,
    active_flag: Vec<bool>,
    /// Live messages in a dense generation-tagged slab (ids stay `u32`,
    /// so cv owners/waiters are untouched; stale ids panic with the
    /// violated invariant by name).
    msgs: Arena<ActiveMsg>,
    /// Live multicast operations, same layout.
    ops: Arena<MulticastOp>,
    ops_allocated: u64,
    ops_completed: u64,
    inj_backlog: usize,
    peak_backlog: usize,
    tagged_outstanding: u64,
    last_move_cycle: u64,

    // --- event scheduling ---
    /// Per-node arrival streams (shared sampling code with the reference).
    arrivals: Vec<ArrivalStream>,
    /// Min-heap of `(next arrival cycle, node)`; same-cycle entries pop in
    /// node order, matching the reference engine's generation loop.
    queue: EventQueue,
    /// The last simulated cycle moved no flit and granted no owner: the
    /// state is a fixpoint until the next arrival (see module docs).
    stalled: bool,
    /// Consecutive failed streaming-scan attempts (saturating at
    /// [`SPAN_BACKOFF_CAP`]); sets the cooldown after each failure.
    span_fail_streak: u32,
    /// Eligible cycles left before the next streaming-scan attempt.
    span_cooldown: u32,
    /// Engine-internal work counters (events popped, spans batched,
    /// fixpoints, failed scans), surfaced through
    /// [`SimResults::engine`](crate::results::SimResults::engine).
    counters: EngineCounters,

    // --- scratch ---
    moves: Vec<(MsgId, u16)>,
    /// Did this cv move a flit in the current cycle? Populated *lazily*
    /// by the streaming eligibility scan from the cycle's move list (and
    /// cleared before the scan returns), so ordinary cycles pay nothing
    /// for the O(1) move-set lookup the fast-forward needs.
    cv_moved: Vec<bool>,
    /// Owned-cv count per physical channel, maintained incrementally on
    /// grant/release (the fast-forward's single-ownership test).
    owned_count: Vec<u8>,
    /// Channels that moved this cycle (scratch of the fast-forward scan,
    /// cleared before it returns).
    channel_moved: Vec<bool>,
    regrant: Vec<u32>,

    // --- closed-loop protocol drive (None on open-loop runs) ---
    closed: Option<ClosedLoopDriver>,
    /// Absorptions recorded by `apply_moves` for post-phase dispatch.
    arrived: Vec<ClosedDelivery>,
    /// Pending protocol actions (injections, timers).
    actions: Vec<Action>,

    // --- statistics ---
    metrics: Metrics,
}

impl<'a> EventSimulator<'a> {
    /// Build an event-driven simulator for `topo` under `wl`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or if the workload does not
    /// fit the topology (see [`crate::plan::PlanError`]); use
    /// [`SimPlan::build`] + [`EventSimulator::with_plan`] for typed
    /// errors.
    pub fn new(topo: &'a dyn Topology, wl: &'a Workload, cfg: SimConfig) -> Self {
        let plan = SimPlan::build(topo, wl).unwrap_or_else(|e| panic!("{e}"));
        EventSimulator::with_plan(topo, wl, cfg, plan)
    }

    /// Build on a prebuilt [`SimPlan`] (shared across sweep points and
    /// with the reference engine of a differential pair).
    pub fn with_plan(
        topo: &'a dyn Topology,
        wl: &'a Workload,
        cfg: SimConfig,
        plan: Arc<SimPlan>,
    ) -> Self {
        cfg.validate().expect("invalid simulator configuration");
        plan.assert_matches(topo, wl);
        let arrivals = ArrivalStream::build_all(wl, plan.n, cfg.seed);
        let mut queue = EventQueue::with_capacity(plan.n);
        for (node, stream) in arrivals.iter().enumerate() {
            if stream.next_arrival() != u64::MAX {
                queue.push(stream.next_arrival(), node as u32);
            }
        }
        let channels = plan.num_channels;
        let metrics = Metrics::new(&cfg, plan.n, channels, !plan.is_lazy());
        EventSimulator {
            topo,
            wl,
            cfg,
            cycle: 0,
            cvs: vec![CvState::default(); plan.num_cvs],
            rr: vec![0; channels],
            active: Vec::with_capacity(channels),
            active_flag: vec![false; channels],
            msgs: Arena::with_capacity(plan.spawn_wave_hint()),
            ops: Arena::with_capacity(plan.num_nodes()),
            ops_allocated: 0,
            ops_completed: 0,
            inj_backlog: 0,
            peak_backlog: 0,
            tagged_outstanding: 0,
            last_move_cycle: 0,
            arrivals,
            queue,
            stalled: false,
            span_fail_streak: 0,
            span_cooldown: 0,
            counters: EngineCounters::default(),
            moves: Vec::new(),
            cv_moved: vec![false; plan.num_cvs],
            owned_count: vec![0; channels],
            channel_moved: vec![false; channels],
            regrant: Vec::new(),
            closed: None,
            arrived: Vec::new(),
            actions: Vec::new(),
            metrics,
            plan,
        }
    }

    /// Install a closed-loop protocol: the run is then driven by the
    /// per-node machines instead of the open-loop arrival streams, and
    /// the event heap carries the protocol's timers.
    ///
    /// Must be called before any cycle is simulated, on a zero-rate
    /// workload (the protocol is the only traffic source).
    pub fn install_closed_loop(&mut self, spec: &ClosedLoopSpec, master_seed: u64) {
        assert_eq!(self.cycle, 0, "closed-loop install after the run started");
        assert!(
            self.queue.is_empty(),
            "closed-loop runs require a zero-rate workload"
        );
        let env = NetEnv {
            n: self.plan.n,
            fanout: self.plan.fanout_table(),
        };
        // Closed-loop runs measure every cycle from cycle 1.
        self.metrics.set_measure_origin(0);
        self.closed = Some(ClosedLoopDriver::new(spec.build(&env, master_seed)));
    }

    #[inline]
    fn cv_index(&self, hop: noc_topology::Hop) -> u32 {
        self.plan.cv_index(hop)
    }

    fn alloc_msg(&mut self, msg: ActiveMsg) -> MsgId {
        self.msgs.insert(msg)
    }

    fn alloc_op(&mut self, op: MulticastOp) -> OpId {
        self.ops_allocated += 1;
        self.ops.insert(op)
    }

    fn activate(&mut self, channel: usize) {
        if !self.active_flag[channel] {
            self.active_flag[channel] = true;
            self.active.push(channel as u32);
        }
    }

    /// Enqueue a freshly generated message (`node` = the injecting
    /// source, for the trace).
    fn enqueue(&mut self, id: MsgId, node: u32) {
        let hop0 = self.msgs.get(id, "freshly enqueued message").path.hops[0];
        let cv = self.cv_index(hop0) as usize;
        self.cvs[cv].waiters.push_back((id, 0));
        self.inj_backlog += 1;
        self.peak_backlog = self.peak_backlog.max(self.inj_backlog);
        self.regrant.push(cv as u32);
        self.metrics.trace_inject(self.cycle, node);
    }

    /// Spawn the message(s) of one arrival at `node` this cycle —
    /// identical bookkeeping to the reference engine's spawn.
    fn spawn(&mut self, node: usize, arrival: Arrival, tagging: bool) {
        let len = self.wl.msg_len;
        let gen = self.cycle;
        match arrival {
            Arrival::Multicast => {
                let op = self.alloc_op(MulticastOp {
                    src: NodeId(node as u32),
                    gen,
                    remaining: self.plan.op_targets(node),
                    last_absorb: gen,
                    tagged: tagging,
                });
                if tagging {
                    self.metrics.multicast_injected += 1;
                    self.tagged_outstanding += 1;
                }
                for si in 0..self.plan.streams(node).len() {
                    let (path, absorbs) = {
                        let pre = &self.plan.streams(node)[si];
                        (Arc::clone(&pre.path), Arc::clone(&pre.absorbs))
                    };
                    let id =
                        self.alloc_msg(ActiveMsg::stream(path, len, gen, tagging, op, absorbs));
                    self.metrics.total_generated += 1;
                    self.enqueue(id, node as u32);
                }
            }
            Arrival::Unicast(dst) => {
                let path = self.plan.unicast_path(NodeId(node as u32), dst);
                let id = self.alloc_msg(ActiveMsg::unicast(path, len, gen, tagging));
                if tagging {
                    self.metrics.unicast_injected += 1;
                    self.tagged_outstanding += 1;
                }
                self.metrics.total_generated += 1;
                self.enqueue(id, node as u32);
            }
        }
    }

    /// Pop every arrival due this cycle off the heap (node-ascending for
    /// ties) and spawn it; reschedule each source at its next firing.
    fn generate(&mut self, tagging: bool) {
        while let Some(node) = self.queue.pop_due(self.cycle) {
            self.counters.events_popped += 1;
            let n = node as usize;
            debug_assert_eq!(self.arrivals[n].next_arrival(), self.cycle);
            let arrival = self.arrivals[n].pop(self.wl, self.plan.n, NodeId(node));
            self.spawn(n, arrival, tagging);
            let next = self.arrivals[n].next_arrival();
            if next != u64::MAX {
                self.queue.push(next, node);
            }
        }
    }

    /// Selection, judged on the previous cycle's counters — byte-for-byte
    /// the reference engine's arbitration (round-robin start, FIFO
    /// tie-breaks, lazy deactivation order all included, because the
    /// active-list permutation feeds the order statistics are recorded in).
    fn select_moves(&mut self) {
        self.moves.clear();
        let buffer_depth = self.cfg.buffer_depth;
        let mut i = 0;
        while i < self.active.len() {
            let pc = self.active[i] as usize;
            let base = self.plan.cv_base[pc];
            let nv = self.plan.vcs[pc];
            let mut any_owned = false;
            let mut chosen: Option<u8> = None;
            for j in 0..nv {
                let vc = (self.rr[pc] + j) % nv;
                let cv = &self.cvs[(base + vc as u32) as usize];
                let Some((m, h)) = cv.owner else { continue };
                any_owned = true;
                if chosen.is_some() {
                    continue;
                }
                let msg = self.msgs.get(m, "cv owner");
                let h = h as usize;
                let supply = if h == 0 {
                    msg.traversed[0] < msg.len
                } else {
                    msg.traversed[h] < msg.traversed[h - 1]
                };
                if !supply {
                    continue;
                }
                if h + 1 < msg.path.len() && msg.occupancy(h) >= buffer_depth {
                    continue;
                }
                chosen = Some(vc);
            }
            if let Some(vc) = chosen {
                let cv_idx = base + vc as u32;
                let (m, h) = self.cvs[cv_idx as usize]
                    .owner
                    .expect("selection invariant violated: chosen vc lost its owner mid-cycle");
                self.moves.push((m, h));
                self.rr[pc] = (vc + 1) % nv;
            }
            if any_owned {
                i += 1;
            } else {
                self.active_flag[pc] = false;
                self.active.swap_remove(i);
            }
        }
    }

    /// Apply the selected moves (requests, releases, absorptions,
    /// completions) in selection order — the order statistics accumulate
    /// in, which bit-identicality depends on.
    fn apply_moves(&mut self, measuring: bool) {
        let now = self.cycle;
        let moves = std::mem::take(&mut self.moves);
        for &(mid, h16) in &moves {
            let h = h16 as usize;
            let (channel_of_h, header_arrived, tail_passed, prev_hop, next_hop) = {
                let msg = self.msgs.get_mut(mid, "moving flit's message");
                msg.traversed[h] += 1;
                let t = msg.traversed[h];
                (
                    msg.path.hops[h].channel.idx(),
                    t == 1,
                    t == msg.len,
                    (h > 0).then(|| msg.path.hops[h - 1]),
                    (h + 1 < msg.path.len()).then(|| msg.path.hops[h + 1]),
                )
            };
            self.metrics.record_flit_move(now, channel_of_h, measuring);

            if header_arrived {
                if h == 0 {
                    self.inj_backlog -= 1;
                }
                if let Some(next) = next_hop {
                    let cv = self.cv_index(next) as usize;
                    self.cvs[cv].waiters.push_back((mid, (h + 1) as u16));
                    self.regrant.push(cv as u32);
                }
            }

            if tail_passed {
                if let Some(prev) = prev_hop {
                    let cv = self.cv_index(prev) as usize;
                    debug_assert_eq!(self.cvs[cv].owner, Some((mid, (h - 1) as u16)));
                    self.cvs[cv].owner = None;
                    self.owned_count[prev.channel.idx()] -= 1;
                    self.regrant.push(cv as u32);
                    self.metrics.trace_release(now, prev.channel.idx());
                }
                let mut absorbed_here = 0u32;
                let mut op_done: Option<OpId> = None;
                let mut stream_tagged = false;
                let mut stream_gen = 0u64;
                {
                    let closed = self.closed.is_some();
                    let msg = self.msgs.get_mut(mid, "absorbing stream's message");
                    if let Some(stream) = msg.multicast.as_mut() {
                        while (stream.next_absorb as usize) < stream.absorbs.len()
                            && stream.absorbs[stream.next_absorb as usize].0 == h16
                        {
                            let target = stream.absorbs[stream.next_absorb as usize].1;
                            if closed {
                                self.arrived.push(ClosedDelivery::Absorb {
                                    op: stream.op,
                                    target,
                                });
                            }
                            self.metrics.trace_absorb(now, target.0);
                            stream.next_absorb += 1;
                            absorbed_here += 1;
                        }
                        if absorbed_here > 0 {
                            let op = self.ops.get_mut(stream.op, "stream's multicast op");
                            op.remaining -= absorbed_here;
                            op.last_absorb = now;
                            if op.remaining == 0 {
                                op_done = Some(stream.op);
                            }
                        }
                        stream_tagged = msg.tagged;
                        stream_gen = msg.gen;
                    }
                }
                if let Some(opid) = op_done {
                    self.ops_completed += 1;
                    let op = self.ops.get(opid, "completed multicast op");
                    self.metrics.trace_op_done(now, op.src.0);
                    if op.tagged {
                        self.metrics.record_op_delivery(op);
                        self.tagged_outstanding -= 1;
                    }
                    self.ops.free(opid, "completed multicast op");
                    if self.closed.is_some() {
                        self.arrived.push(ClosedDelivery::OpDone(opid));
                    }
                }

                let is_last = {
                    let msg = self.msgs.get(mid, "tail-moving message");
                    h == msg.last_hop()
                };
                if is_last {
                    let msg = self.msgs.get(mid, "absorbed message");
                    let eject = msg.path.hops[h];
                    let cv = self.cv_index(eject) as usize;
                    debug_assert_eq!(self.cvs[cv].owner, Some((mid, h16)));
                    self.cvs[cv].owner = None;
                    self.owned_count[eject.channel.idx()] -= 1;
                    self.regrant.push(cv as u32);
                    self.metrics.total_absorbed += 1;
                    self.metrics.trace_release(now, eject.channel.idx());

                    let (tagged, gen, is_unicast, dst) = {
                        let msg = self.msgs.get(mid, "absorbed message");
                        (msg.tagged, msg.gen, msg.multicast.is_none(), msg.path.dst)
                    };
                    if is_unicast {
                        // Multicast targets trace their absorbs in the
                        // stream's absorb list above; unicasts here.
                        self.metrics.trace_absorb(now, dst.0);
                        if tagged {
                            self.metrics.record_unicast_delivery(now, gen);
                            self.tagged_outstanding -= 1;
                        }
                        if self.closed.is_some() {
                            self.arrived.push(ClosedDelivery::Unicast(mid));
                        }
                    } else if stream_tagged {
                        self.metrics.record_stream_delivery(now, stream_gen);
                    }
                    self.msgs.free(mid, "absorbed message");
                }
            }
        }
        // Unlike the reference engine, keep the move set: the streaming
        // fast-forward inspects it after the cycle (select clears it).
        self.moves = moves;
    }

    /// Grant free channels to FIFO-first waiters; returns how many new
    /// owners were installed (zero feeds the stall detector).
    fn grant(&mut self) -> usize {
        let mut granted = 0usize;
        let regrant = std::mem::take(&mut self.regrant);
        for &cv_u in &regrant {
            let cv = cv_u as usize;
            if self.cvs[cv].owner.is_none() {
                if let Some((m, h)) = self.cvs[cv].waiters.pop_front() {
                    self.cvs[cv].owner = Some((m, h));
                    granted += 1;
                    let msg = self.msgs.get(m, "granted waiter");
                    let channel = msg.path.hops[h as usize].channel.idx();
                    self.owned_count[channel] += 1;
                    self.activate(channel);
                    self.metrics.trace_grant(self.cycle, channel);
                }
            }
        }
        self.regrant = regrant;
        self.regrant.clear();
        granted
    }

    /// Simulate exactly cycle `target` (every cycle strictly between the
    /// current one and `target` is inert by construction — see the module
    /// docs) and update the stall detector. Returns the number of new
    /// grants (the streaming fast-forward needs grant-free cycles).
    ///
    /// `self.moves` still holds the cycle's move set afterwards, for the
    /// fast-forward eligibility scan.
    fn simulate_cycle(&mut self, target: u64, tagging: bool, measuring: bool) -> usize {
        debug_assert!(target > self.cycle);
        self.cycle = target;
        self.counters.simulated_cycles += 1;
        self.generate(tagging);
        self.select_moves();
        let moved = !self.moves.is_empty();
        if moved {
            self.last_move_cycle = self.cycle;
        }
        self.apply_moves(measuring);
        let granted = self.grant();
        self.stalled = !moved && granted == 0;
        if self.stalled {
            self.counters.stall_fixpoints += 1;
            if !self.active.is_empty() {
                self.metrics.trace_stall(self.cycle);
            }
        }
        granted
    }

    /// Did hop `h` of message `m` (with body `msg`) move this cycle?
    /// O(1): a hop's flits cross exactly its path cv, so the per-cv moved
    /// bitmap plus the ownership check identifies the pair. Only valid in
    /// the streaming eligibility scan, where no release or grant has
    /// disturbed the cycle's ownership (both are disqualifying events).
    #[inline]
    fn in_move_set(&self, msg: &ActiveMsg, m: MsgId, h: usize) -> bool {
        let cv = self.plan.cv_index(msg.path.hops[h]) as usize;
        self.cv_moved[cv] && self.cvs[cv].owner == Some((m, h as u16))
    }

    /// How many cycles after the just-simulated one are guaranteed exact
    /// replays of its move set, with no structural event (grant, header or
    /// tail threshold, absorb, arrival, deactivation, run boundary or
    /// watchdog tick)? Returns 0 when the next cycle must be simulated
    /// normally.
    ///
    /// Must only be called when the simulated cycle moved flits and
    /// granted nothing.
    fn streaming_span_len(&mut self, warmup: u64, measure_end: u64, deadline: u64) -> u64 {
        let c = self.cycle;

        // External caps: the span may not contain an arrival, cross the
        // warmup or measurement boundary (the measuring flag must stay
        // constant and the run loop may break at `measure_end`), or pass
        // the drain deadline.
        let next_arrival = self.queue.peek_time().unwrap_or(u64::MAX);
        let mut k = next_arrival.saturating_sub(c + 1);
        if c < warmup {
            k = k.min(warmup - c);
        } else if c < measure_end {
            k = k.min(measure_end - c);
        }
        k = k.min(deadline.saturating_sub(c));
        if k == 0 {
            return 0;
        }

        // Cheap pre-checks that need no mark state: a dead mover or a
        // crossed tail threshold disqualifies the span outright, paying a
        // few loads per mover and leaving no mark bookkeeping to undo.
        // The full pass below re-derives these facts; this pass only
        // filters.
        for &(m, h16) in &self.moves {
            let Some(msg) = self.msgs.try_get(m) else {
                return 0;
            };
            if msg.traversed[h16 as usize] >= msg.len {
                return 0;
            }
        }

        // Mark the cycle's move set for `in_move_set` — lazily, here,
        // so only scan cycles pay for the bookkeeping. A mover absorbed
        // during apply is left unmarked: its cvs are ownerless, so
        // `in_move_set` is false for them either way, and the mover loop
        // below bails on the dead id before any verdict is returned.
        let moves = std::mem::take(&mut self.moves);
        for &(m, h16) in &moves {
            if let Some(msg) = self.msgs.try_get(m) {
                self.cv_moved[self.plan.cv_index(msg.path.hops[h16 as usize]) as usize] = true;
            }
        }

        // Movers: numeric caps, single-ownership, and channel marking.
        // On the streaming fast path this loop is the whole scan.
        let buffer_depth = self.cfg.buffer_depth;
        let mut ok = true;
        for &(m, h16) in &moves {
            // A released/absorbed message or a crossed tail threshold
            // means this cycle had structural aftermath (releases, lazy
            // deactivation): let the per-cycle machinery settle it.
            let Some(msg) = self.msgs.try_get(m) else {
                ok = false;
                break;
            };
            let h = h16 as usize;
            let t = msg.traversed[h];
            if t >= msg.len {
                ok = false;
                break;
            }
            // Sibling vcs on the mover's channel do not disqualify the
            // span by themselves: after the move the round-robin pointer
            // sits just past the mover's vc, so the mover is examined
            // *last* on the next pass and re-chosen iff every sibling is
            // unelectable — which the held-channel loop below verifies
            // stays true for the whole span.
            let pc = msg.path.hops[h].channel.idx();
            self.channel_moved[pc] = true;
            // Stop before the tail threshold (`t == len` is a structural
            // cycle: releases, absorbs, completions).
            k = k.min((msg.len - 1 - t) as u64);
            // Supply: upstream counter is frozen unless hop h−1 is also
            // streaming in this span.
            if h > 0 && !self.in_move_set(msg, m, h - 1) {
                k = k.min((msg.traversed[h - 1] - t) as u64);
            }
            // Credit: downstream occupancy grows unless hop h+1 is also
            // streaming.
            if h + 1 < msg.path.len() && !self.in_move_set(msg, m, h + 1) {
                k = k.min((buffer_depth - msg.occupancy(h)) as u64);
            }
            if k == 0 {
                ok = false;
                break;
            }
        }

        // Held channels: every owned cv that is not this cycle's mover
        // must stay unelectable for the whole span — on a blocked channel
        // that is every owned cv, on a moving channel the sibling vcs the
        // round-robin would otherwise rotate in. Only single-vc streaming
        // channels skip the walk (the pure-streaming fast path).
        if ok {
            'channels: for &pc_u in &self.active {
                let pc = pc_u as usize;
                if self.channel_moved[pc] && self.owned_count[pc] == 1 {
                    continue;
                }
                if self.owned_count[pc] == 0 {
                    // Fully released channel: the next select pass must
                    // lazily deactivate it to keep the active-list
                    // permutation (and with it every downstream ordering)
                    // identical to the reference engine's.
                    ok = false;
                    break;
                }
                let base = self.plan.cv_base[pc];
                let nv = self.plan.vcs[pc];
                for vc in 0..nv {
                    let cv_idx = (base + vc as u32) as usize;
                    if self.cv_moved[cv_idx] {
                        // The channel's mover: streaming eligibility is
                        // the mover loop's job, not a freeze condition.
                        continue;
                    }
                    let Some((m, h)) = self.cvs[cv_idx].owner else {
                        continue;
                    };
                    let msg = self.msgs.get(m, "cv owner");
                    let h = h as usize;
                    let supply = if h == 0 {
                        msg.traversed[0] < msg.len
                    } else {
                        msg.traversed[h] < msg.traversed[h - 1]
                    };
                    if !supply {
                        // Starved: stays starved iff the upstream hop is
                        // not streaming (h == 0 starvation means the whole
                        // message already crossed this hop — permanent).
                        if h > 0 && self.in_move_set(msg, m, h - 1) {
                            ok = false;
                            break 'channels;
                        }
                    } else if h + 1 < msg.path.len() && msg.occupancy(h) >= buffer_depth {
                        // Credit-blocked: stays blocked iff the downstream
                        // hop is not draining.
                        if self.in_move_set(msg, m, h + 1) {
                            ok = false;
                            break 'channels;
                        }
                    } else {
                        // Supply and credit fine yet not selected — only
                        // possible through round-robin interplay this scan
                        // does not model; be conservative.
                        ok = false;
                        break 'channels;
                    }
                }
            }
        }

        // Clear the cv and channel marks (messages are untouched by the
        // scan, so every marked mover is still resolvable).
        for &(m, h16) in &moves {
            if let Some(msg) = self.msgs.try_get(m) {
                let hop = msg.path.hops[h16 as usize];
                self.cv_moved[self.plan.cv_index(hop) as usize] = false;
                self.channel_moved[hop.channel.idx()] = false;
            }
        }
        self.moves = moves;
        if ok {
            k
        } else {
            0
        }
    }

    /// Apply `k` exact replays of the current move set in one step: every
    /// moving hop advances `k` flits, time and the watchdog anchor jump to
    /// the span's end. No grants, releases, deliveries or backlog changes
    /// occur inside a span by construction.
    fn apply_streaming_span(&mut self, k: u64, measuring: bool) {
        let start = self.cycle;
        let moves = std::mem::take(&mut self.moves);
        for &(m, h) in &moves {
            let msg = self.msgs.get_mut(m, "streaming mover");
            msg.traversed[h as usize] += k as u32;
            let channel = msg.path.hops[h as usize].channel.idx();
            self.metrics
                .record_flit_moves_bulk(start, channel, k, measuring);
        }
        self.moves = moves;
        self.cycle += k;
        self.last_move_cycle = self.cycle;
        self.counters.spans_batched += 1;
        self.counters.span_cycles += k;
    }

    /// The next cycle on which anything can happen or the run loop could
    /// newly terminate. When the network can make progress that is simply
    /// the next cycle; when it is idle or stalled, jump to the earliest
    /// external event.
    fn next_cycle_of_interest(&self, measure_end: u64, deadline: u64) -> u64 {
        let next = self.cycle + 1;
        if !self.active.is_empty() && !self.stalled {
            return next;
        }
        let mut t = self.queue.peek_time().unwrap_or(u64::MAX);
        if self.tagged_outstanding == 0 {
            // The run may end at the measurement boundary.
            t = t.min(measure_end);
        }
        t = t.min(deadline);
        if !self.active.is_empty() {
            // Channels are held but nothing moves: the deadlock watchdog
            // must fire on the same cycle the reference engine fires on.
            t = t.min(self.next_watchdog_cycle());
        }
        t.max(next)
    }

    /// First stride-aligned cycle at which the watchdog condition
    /// `cycle − last_move > window` holds.
    fn next_watchdog_cycle(&self) -> u64 {
        self.last_move_cycle
            .saturating_add(WATCHDOG_WINDOW + 1)
            .max(self.cycle + 1)
            .next_multiple_of(WATCHDOG_STRIDE)
    }

    fn watchdog_fires(&self) -> bool {
        self.cycle.saturating_sub(self.last_move_cycle) > WATCHDOG_WINDOW && !self.active.is_empty()
    }

    // ------------------------------------------------------------------
    // Closed-loop drive: the protocol machines are the traffic source.
    // The event heap (unused by arrivals: closed-loop workloads are
    // zero-rate) carries the protocol timers, so idle/stalled stretches
    // jump straight to the next timeout — protocol emissions are
    // schedulable arrivals, not rate-driven lookahead.
    // ------------------------------------------------------------------

    /// Dispatch [`AppEvent::Start`] to every machine in node order and
    /// perform the resulting injections — identical to the reference
    /// engine's closed start.
    fn closed_start(&mut self) {
        let mut driver = self.closed.take().expect("closed-loop driver present");
        let mut actions = std::mem::take(&mut self.actions);
        for node in 0..self.plan.n {
            driver.dispatch(
                self.cycle,
                NodeId(node as u32),
                AppEvent::Start,
                &mut actions,
            );
        }
        self.closed = Some(driver);
        self.actions = actions;
        self.closed_perform();
        self.grant();
    }

    /// Closed-loop generation phase: pop every timer due this cycle off
    /// the heap (node-ascending for ties — the reference engine's poll
    /// order) and perform the resulting actions.
    fn closed_generate(&mut self) {
        let mut driver = self.closed.take().expect("closed-loop driver present");
        let mut actions = std::mem::take(&mut self.actions);
        while let Some(node) = self.queue.pop_due(self.cycle) {
            self.counters.events_popped += 1;
            let node = NodeId(node);
            debug_assert_eq!(driver.timer_at(node), Some(self.cycle));
            driver.dispatch(self.cycle, node, AppEvent::Timeout, &mut actions);
        }
        self.closed = Some(driver);
        self.actions = actions;
        self.closed_perform();
    }

    /// Dispatch every absorption `apply_moves` recorded this cycle (in
    /// absorption order) and perform the resulting actions.
    fn closed_deliver(&mut self) {
        if self.arrived.is_empty() {
            return;
        }
        let mut driver = self.closed.take().expect("closed-loop driver present");
        let mut actions = std::mem::take(&mut self.actions);
        let arrived = std::mem::take(&mut self.arrived);
        for &d in &arrived {
            match d {
                ClosedDelivery::Unicast(mid) => {
                    let (dst, payload) = driver.unicast_delivered(mid);
                    driver.dispatch(self.cycle, dst, AppEvent::Delivery(payload), &mut actions);
                }
                ClosedDelivery::Absorb { op, target } => {
                    let payload = driver.absorb_payload(op);
                    driver.dispatch(
                        self.cycle,
                        target,
                        AppEvent::Delivery(payload),
                        &mut actions,
                    );
                }
                ClosedDelivery::OpDone(op) => driver.op_done(op),
            }
        }
        self.arrived = arrived;
        self.arrived.clear();
        self.closed = Some(driver);
        self.actions = actions;
        self.closed_perform();
    }

    /// Perform the pending protocol actions — the reference engine's
    /// bookkeeping plus heap scheduling for timers.
    fn closed_perform(&mut self) {
        let actions = std::mem::take(&mut self.actions);
        let len = self.wl.msg_len;
        let gen = self.cycle;
        for &action in &actions {
            match action {
                Action::Unicast { src, dst, payload } => {
                    let path = self.plan.unicast_path(src, dst);
                    let id = self.alloc_msg(ActiveMsg::unicast(path, len, gen, true));
                    self.metrics.unicast_injected += 1;
                    self.tagged_outstanding += 1;
                    self.metrics.total_generated += 1;
                    self.enqueue(id, src.0);
                    self.closed
                        .as_mut()
                        .expect("closed-loop driver present")
                        .note_unicast(id, dst, payload);
                }
                Action::Multicast { src, payload } => {
                    let node = src.idx();
                    assert!(
                        !self.plan.streams(node).is_empty(),
                        "protocol multicast from a source with no streams"
                    );
                    let op = self.alloc_op(MulticastOp {
                        src,
                        gen,
                        remaining: self.plan.op_targets(node),
                        last_absorb: gen,
                        tagged: true,
                    });
                    self.metrics.multicast_injected += 1;
                    self.tagged_outstanding += 1;
                    for si in 0..self.plan.streams(node).len() {
                        let (path, absorbs) = {
                            let pre = &self.plan.streams(node)[si];
                            (Arc::clone(&pre.path), Arc::clone(&pre.absorbs))
                        };
                        let id =
                            self.alloc_msg(ActiveMsg::stream(path, len, gen, true, op, absorbs));
                        self.metrics.total_generated += 1;
                        self.enqueue(id, node as u32);
                    }
                    self.closed
                        .as_mut()
                        .expect("closed-loop driver present")
                        .note_multicast(op, payload);
                }
                Action::Timer { node, at } => self.queue.push(at, node.0),
            }
        }
        self.actions = actions;
        self.actions.clear();
    }

    /// Simulate exactly cycle `target` in closed-loop mode; mirrors
    /// [`EventSimulator::simulate_cycle`] with the protocol phases of the
    /// reference engine's `step_closed` spliced in at the same points.
    fn simulate_cycle_closed(&mut self, target: u64) {
        debug_assert!(target > self.cycle);
        self.cycle = target;
        self.counters.simulated_cycles += 1;
        self.closed_generate();
        self.select_moves();
        let moved = !self.moves.is_empty();
        if moved {
            self.last_move_cycle = self.cycle;
        }
        self.apply_moves(true);
        self.closed_deliver();
        let granted = self.grant();
        self.stalled = !moved && granted == 0;
        if self.stalled {
            self.counters.stall_fixpoints += 1;
            if !self.active.is_empty() {
                self.metrics.trace_stall(self.cycle);
            }
        }
    }

    /// The next cycle on which anything can happen in closed-loop mode:
    /// the heap holds timers instead of arrivals, there is no
    /// measurement boundary, and streaming spans are not attempted
    /// (protocol messages are short; the span machinery's caps don't
    /// model delivery-triggered injections).
    fn closed_next_cycle(&self, deadline: u64) -> u64 {
        let next = self.cycle + 1;
        if !self.active.is_empty() && !self.stalled {
            return next;
        }
        let mut t = self.queue.peek_time().unwrap_or(u64::MAX);
        t = t.min(deadline);
        if !self.active.is_empty() {
            t = t.min(self.next_watchdog_cycle());
        }
        t.max(next)
    }

    /// The protocol has fully quiesced: every machine done, nothing in
    /// flight anywhere.
    fn closed_quiescent(&self) -> bool {
        self.tagged_outstanding == 0
            && self
                .closed
                .as_ref()
                .expect("closed-loop driver present")
                .quiescent()
    }

    /// Closed-loop run loop — the reference engine's trajectory
    /// (quiescence, deadline, backlog, watchdog, all checked at the
    /// top), evaluated only on cycles a simulated cycle could have
    /// changed: quiescence and backlog only move on simulated cycles,
    /// and the jump targets cap at the deadline and watchdog boundaries.
    fn run_closed(&mut self) -> SimResults {
        let deadline = self.cfg.deadline();
        let mut saturated = false;
        let mut deadlocked = false;
        self.closed_start();
        loop {
            if self.closed_quiescent() {
                break;
            }
            if self.cycle >= deadline {
                saturated = true;
                break;
            }
            if self.inj_backlog > self.cfg.backlog_limit {
                saturated = true;
                break;
            }
            if self.cycle.is_multiple_of(WATCHDOG_STRIDE) && self.watchdog_fires() {
                deadlocked = true;
                saturated = true;
                break;
            }
            let target = self.closed_next_cycle(deadline);
            self.simulate_cycle_closed(target);
        }
        let cycles = self.cycle;
        let quiesced = self.closed_quiescent();
        let mut res = self.metrics.finish(
            saturated,
            deadlocked,
            cycles,
            self.peak_backlog,
            cycles,
            self.counters,
        );
        let mut driver = self.closed.take().expect("closed-loop driver present");
        res.closed_loop = Some(driver.finish(cycles, quiesced));
        self.closed = Some(driver);
        res
    }

    /// Run to completion and produce results — the same observable
    /// trajectory as the reference engine's run loop, evaluated only on
    /// cycles of interest.
    pub fn run(&mut self) -> SimResults {
        if self.closed.is_some() {
            return self.run_closed();
        }
        let warmup = self.cfg.warmup_cycles;
        let measure_end = self.cfg.measure_end();
        let deadline = self.cfg.deadline();
        let mut saturated = false;
        let mut deadlocked = false;

        loop {
            let target = self.next_cycle_of_interest(measure_end, deadline);
            let tagging = target > warmup && target <= measure_end;
            let granted = self.simulate_cycle(target, tagging, tagging);

            if self.cycle >= measure_end && self.tagged_outstanding == 0 {
                break;
            }
            if self.cycle >= deadline {
                saturated = self.tagged_outstanding > 0;
                break;
            }
            if self.inj_backlog > self.cfg.backlog_limit {
                saturated = true;
                break;
            }
            if self.cycle.is_multiple_of(WATCHDOG_STRIDE) && self.watchdog_fires() {
                deadlocked = true;
                saturated = true;
                break;
            }

            // Streaming fast-forward: while nothing structural can happen,
            // replay this cycle's move set in bulk. Only the two break
            // conditions the span caps can land on need re-evaluation.
            //
            // The eligibility scan is the engine's high-load overhead: in
            // a congested network it fails almost every cycle (blocked
            // channels hit its conservative bails), so repeated failures
            // back off exponentially. The cooldown only gates *when* the
            // scan re-runs — skipped opportunities fall back to normal
            // per-cycle simulation, so results are bit-identical either
            // way.
            if granted == 0 && !self.moves.is_empty() {
                if self.span_cooldown > 0 {
                    self.span_cooldown -= 1;
                } else {
                    let k = self.streaming_span_len(warmup, measure_end, deadline);
                    if k >= SPAN_PROFIT_MIN {
                        self.span_fail_streak = 0;
                    } else {
                        // A failed scan, or a find too short to pay for
                        // the scan: back off either way.
                        if k == 0 {
                            self.counters.span_scans_failed += 1;
                        }
                        self.span_fail_streak = (self.span_fail_streak + 1).min(SPAN_BACKOFF_CAP);
                        self.span_cooldown = 1 << self.span_fail_streak;
                    }
                    if k > 0 {
                        let measuring = self.cycle >= warmup && self.cycle < measure_end;
                        self.apply_streaming_span(k, measuring);
                        if self.cycle >= measure_end && self.tagged_outstanding == 0 {
                            break;
                        }
                        if self.cycle >= deadline {
                            saturated = self.tagged_outstanding > 0;
                            break;
                        }
                    }
                }
            }
        }

        let measured_cycles = self.cycle.min(measure_end).saturating_sub(warmup);
        self.metrics.finish(
            saturated,
            deadlocked,
            self.cycle,
            self.peak_backlog,
            measured_cycles,
            self.counters,
        )
    }

    /// Scripted-injection hook — see
    /// [`Simulator::inject_unicast_now`](crate::Simulator::inject_unicast_now).
    pub fn inject_unicast_now(&mut self, src: NodeId, dst: NodeId) -> MsgId {
        let path = self.plan.unicast_path(src, dst);
        let id = self.alloc_msg(ActiveMsg::unicast(path, self.wl.msg_len, self.cycle, false));
        self.metrics.total_generated += 1;
        self.enqueue(id, src.0);
        self.grant();
        // New work exists; whatever stall was proven before no longer holds.
        self.stalled = false;
        id
    }

    /// Scripted-injection hook — see
    /// [`Simulator::inject_multicast_now`](crate::Simulator::inject_multicast_now).
    pub fn inject_multicast_now(&mut self, src: NodeId) -> Vec<MsgId> {
        let gen = self.cycle;
        let node = src.idx();
        assert!(
            !self.plan.streams(node).is_empty(),
            "source has no multicast streams configured"
        );
        let op = self.alloc_op(MulticastOp {
            src,
            gen,
            remaining: self.plan.op_targets(node),
            last_absorb: gen,
            tagged: false,
        });
        let mut ids = Vec::new();
        for si in 0..self.plan.streams(node).len() {
            let (path, absorbs) = {
                let pre = &self.plan.streams(node)[si];
                (Arc::clone(&pre.path), Arc::clone(&pre.absorbs))
            };
            let id = self.alloc_msg(ActiveMsg::stream(
                path,
                self.wl.msg_len,
                gen,
                false,
                op,
                absorbs,
            ));
            self.metrics.total_generated += 1;
            self.enqueue(id, src.0);
            ids.push(id);
        }
        self.grant();
        self.stalled = false;
        ids
    }

    /// Advance exactly one cycle without tagging or measuring (testing
    /// hook for cycle-precise assertions; no skipping).
    pub fn step_one(&mut self) {
        self.simulate_cycle(self.cycle + 1, false, false);
    }

    /// Is the message still in the network (queued or in flight)?
    pub fn message_in_flight(&self, id: MsgId) -> bool {
        self.msgs.contains(id)
    }

    /// Step until `id` completes, returning the completion cycle (the
    /// shared [`SimEngine::run_until_complete`] loop).
    ///
    /// # Panics
    ///
    /// Panics if the message does not complete within 1M cycles.
    pub fn run_until_complete(&mut self, id: MsgId) -> u64 {
        SimEngine::run_until_complete(self, id)
    }

    /// Isolated unicast latency on an idle network (testing hook).
    pub fn measure_isolated_unicast(&mut self, src: NodeId, dst: NodeId) -> u64 {
        assert_eq!(self.wl.gen_rate, 0.0, "requires a zero-rate workload");
        let gen = self.cycle;
        let id = self.inject_unicast_now(src, dst);
        self.run_until_complete(id) - gen
    }

    /// Isolated multicast operation latency on an idle network (testing
    /// hook).
    pub fn measure_isolated_multicast(&mut self, src: NodeId) -> u64 {
        assert_eq!(self.wl.gen_rate, 0.0, "requires a zero-rate workload");
        let gen = self.cycle;
        let ids = self.inject_multicast_now(src);
        // The op's arena slot is freed the moment it completes, so the
        // latency is read off the run instead: each stream's final target
        // absorbs at its ejection hop, so the op's last absorb is exactly
        // the completion cycle of the slowest stream.
        let mut done = gen;
        for id in ids {
            done = done.max(self.run_until_complete(id));
        }
        done - gen
    }

    /// Structural self-check (see [`SimEngine::audit`]): the shared state
    /// audit plus the event engine's incremental ownership counters.
    pub fn audit(&self) -> Result<EngineAudit, String> {
        for (pc, &count) in self.owned_count.iter().enumerate() {
            let base = self.plan.cv_base[pc];
            let nv = self.plan.vcs[pc];
            let actual = (0..nv)
                .filter(|&vc| self.cvs[(base + vc as u32) as usize].owner.is_some())
                .count();
            if actual != count as usize {
                return Err(format!(
                    "channel {pc}: owned-cv count drifted (cached {count}, actual {actual})"
                ));
            }
        }
        let lookup = |m| self.msgs.try_get(m);
        audit_state(AuditInput {
            cycle: self.cycle,
            cvs: &self.cvs,
            msg_lookup: &lookup,
            live_messages: self.msgs.len() as u64,
            live_ops: self.ops.iter().collect(),
            plan: &self.plan,
            inj_backlog: self.inj_backlog,
            tagged_outstanding: self.tagged_outstanding,
            ops_allocated: self.ops_allocated,
            ops_completed: self.ops_completed,
            total_generated: self.metrics.total_generated,
            total_absorbed: self.metrics.total_absorbed,
        })
    }

    /// Current simulated cycle (testing/diagnostics).
    pub fn now(&self) -> u64 {
        self.cycle
    }

    /// How many cycles were actually simulated (the rest were skipped or
    /// fast-forwarded). Diagnostics: `now() / simulated_cycles()` is the
    /// engine's effective compression ratio.
    pub fn simulated_cycles(&self) -> u64 {
        self.counters.simulated_cycles
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &dyn Topology {
        self.topo
    }
}

impl SimEngine for EventSimulator<'_> {
    fn run(&mut self) -> SimResults {
        EventSimulator::run(self)
    }

    fn step_one(&mut self) {
        EventSimulator::step_one(self)
    }

    fn now(&self) -> u64 {
        EventSimulator::now(self)
    }

    fn message_in_flight(&self, id: MsgId) -> bool {
        EventSimulator::message_in_flight(self, id)
    }

    fn inject_unicast_now(&mut self, src: NodeId, dst: NodeId) -> MsgId {
        EventSimulator::inject_unicast_now(self, src, dst)
    }

    fn inject_multicast_now(&mut self, src: NodeId) -> Vec<MsgId> {
        EventSimulator::inject_multicast_now(self, src)
    }

    fn measure_isolated_unicast(&mut self, src: NodeId, dst: NodeId) -> u64 {
        EventSimulator::measure_isolated_unicast(self, src, dst)
    }

    fn measure_isolated_multicast(&mut self, src: NodeId) -> u64 {
        EventSimulator::measure_isolated_multicast(self, src)
    }

    fn audit(&self) -> Result<EngineAudit, String> {
        EventSimulator::audit(self)
    }

    fn install_closed_loop(&mut self, spec: &ClosedLoopSpec, master_seed: u64) {
        EventSimulator::install_closed_loop(self, spec, master_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::Quarc;
    use noc_workloads::DestinationSets;

    #[test]
    fn zero_load_latency_is_exact() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        let wl = Workload::new(32, 0.0, 0.0, sets).unwrap();
        let mut sim = EventSimulator::new(&topo, &wl, SimConfig::quick(1));
        let lat = sim.measure_isolated_unicast(NodeId(0), NodeId(8));
        let path = topo.unicast_path(NodeId(0), NodeId(8));
        assert_eq!(lat, 32 + path.hop_count() as u64);
    }

    #[test]
    fn low_load_run_completes_and_audits_clean() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 3);
        let wl = Workload::new(16, 0.004, 0.05, sets).unwrap();
        let mut sim = EventSimulator::new(&topo, &wl, SimConfig::quick(7));
        let res = sim.run();
        assert!(!res.saturated);
        assert!(res.complete());
        assert!(res.total_generated > 0);
        sim.audit().expect("post-run audit");
    }

    #[test]
    fn low_load_runs_skip_most_cycles() {
        // The engine's raison d'être: at low load, the vast majority of
        // cycles are idle gaps or streaming spans and must not be
        // simulated one by one.
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 3);
        let wl = Workload::new(32, 0.0005, 0.05, sets).unwrap();
        let mut sim = EventSimulator::new(&topo, &wl, SimConfig::quick(7));
        let res = sim.run();
        assert!(!res.saturated);
        let ratio = res.cycles as f64 / sim.simulated_cycles() as f64;
        assert!(
            ratio > 5.0,
            "expected >5x cycle compression at low load, got {ratio:.1} \
             ({} simulated of {})",
            sim.simulated_cycles(),
            res.cycles
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 5);
        let wl = Workload::new(16, 0.01, 0.1, sets).unwrap();
        let a = EventSimulator::new(&topo, &wl, SimConfig::quick(99)).run();
        let b = EventSimulator::new(&topo, &wl, SimConfig::quick(99)).run();
        assert_eq!(a.flit_moves, b.flit_moves);
        assert_eq!(a.unicast.mean, b.unicast.mean);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn saturation_detected_like_the_reference() {
        let topo = Quarc::new(8).unwrap();
        let sets = DestinationSets::random(&topo, 2, 3);
        let wl = Workload::new(64, 0.9, 0.5, sets).unwrap();
        let mut cfg = SimConfig::quick(13);
        cfg.backlog_limit = 2_000;
        let res = EventSimulator::new(&topo, &wl, cfg).run();
        assert!(res.saturated);
    }

    #[test]
    fn watchdog_schedule_is_stride_aligned_and_past_the_window() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        let wl = Workload::new(16, 0.0, 0.0, sets).unwrap();
        let sim = EventSimulator::new(&topo, &wl, SimConfig::quick(1));
        let c = sim.next_watchdog_cycle();
        assert_eq!(c % WATCHDOG_STRIDE, 0);
        assert!(c > sim.last_move_cycle + WATCHDOG_WINDOW);
    }
}
