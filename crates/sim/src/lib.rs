//! # noc-sim
//!
//! A flit-level wormhole NoC simulator — the reproduction's substitute for
//! the paper's OMNET++ discrete-event simulator (§4) — with **two
//! engines** behind one [`SimEngine`] contract:
//!
//! * [`EventSimulator`] (default) — event-driven: skips provably inert
//!   cycles and jumps between injections, grants and run boundaries.
//!   5–50× faster at the low-load sweep points the Fig. 6/7 validation
//!   protocol spends most of its time on.
//! * [`Simulator`] — cycle-stepped reference oracle: advances every
//!   cycle. Kept deliberately simple; the differential suite
//!   (`tests/engine_equivalence.rs`) requires the event engine to
//!   reproduce its runs bit-for-bit under a shared seed.
//!
//! Select the engine via the [`SimConfig`] `engine` field
//! ([`EngineKind`]) and construct through [`build_engine`], or
//! instantiate either engine directly.
//!
//! ## Model of a node (paper Fig. 5)
//!
//! ```text
//!            +--------+   m injection channels   +--------+
//!  Poisson   | passive| ========================>|        |==> links out
//!  source -->| queue  |                          | router |
//!            +--------+                          |        |<== links in
//!                 +------ sink <=================+--------+
//!                          m ejection channels
//! ```
//!
//! * The **source** generates unicast and multicast messages according to a
//!   Poisson process; the **passive queue** holds them per class and feeds
//!   the router through the injection channels in creation-time order.
//! * The **router** is all-port and non-preemptive: a channel (virtual
//!   channel of a physical link) is owned by one message from the header's
//!   arbitration win until the tail leaves its buffer; released channels are
//!   re-granted to waiting headers in FIFO order, exactly as described in
//!   the paper's §4.
//! * Multicast streams **absorb-and-forward**: at every target along the
//!   path the flits are cloned to the local sink in the same cycle they are
//!   forwarded along the rim (§3.3.2).
//!
//! ## Timing conventions
//!
//! One flit crosses one channel per cycle; each physical channel transmits
//! at most one flit per cycle shared across its virtual channels
//! (round-robin). Buffer space is checked against the *previous* cycle's
//! occupancy (credit loop of one cycle), so the default buffer depth of 2
//! flits sustains full throughput. Zero-load latency of a message of `L`
//! flits over a path with `H+2` channel traversals (injection + `H` links +
//! ejection) is exactly `L + H + 1` cycles, matching the analytical model's
//! `msg + D` with `D = path.hop_count()`.
//!
//! ## Traffic generation
//!
//! Each node's source is an [`ArrivalStream`]: a private RNG plus an
//! [`ArrivalProcess`] built from the workload's
//! [`noc_workloads::TrafficSpec`] — memoryless geometric gaps (the
//! paper's Poisson assumption, the default), bursty on/off sources with
//! the long-run mean matched to the nominal rate, or deterministic
//! replay of a recorded trace ([`record_trace`]). Generation is
//! open-loop and O(arrivals): processes never observe network state and
//! draw randomness per arrival, never per cycle. Under the geometric
//! spec the streams are draw-for-draw identical to the pre-subsystem
//! hard-coded source, so existing seeds and golden results keep their
//! meaning.
//!
//! ## Measurement protocol
//!
//! Messages generated inside the measurement window are tagged; the run
//! finishes when every tagged message (and every tagged multicast
//! operation) has been absorbed, or declares saturation when the drain
//! budget or backlog limit is exceeded. Multicast latency is the paper's
//! definition: generation until the last flit is absorbed at the *last*
//! destination over all port streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
mod closed_loop;
pub mod config;
pub mod engine;
pub mod engine_api;
pub mod event_engine;
pub mod message;
mod metrics;
pub mod plan;
pub mod results;
pub mod schedule;

pub use arena::Arena;
pub use config::{EngineKind, SimConfig};
pub use engine::Simulator;
pub use engine_api::{build_engine, build_engine_with_plan, EngineAudit, SimEngine};
pub use event_engine::EventSimulator;
pub use plan::{PlanError, SimPlan};
pub use results::{ClosedLoopResults, EngineCounters, LatencyHists, LatencyStats, SimResults};
pub use schedule::{record_trace, Arrival, ArrivalProcess, ArrivalStream};

// Re-exported so engine users can name a protocol without depending on
// `noc-app` directly (the closed-loop API surface lives on `SimEngine`).
pub use noc_app::ClosedLoopSpec;

// Re-exported so telemetry consumers (the bench runner, figure bins) can
// configure the flight recorder and read its artifacts without depending
// on `noc-telemetry` directly.
pub use noc_telemetry::{
    chrome_trace, validate_chrome_trace, LogHistogram, TelemetrySpec, TraceEvent, TraceEventKind,
    TraceLog, TraceMode, TrackNames, UtilSeries,
};
