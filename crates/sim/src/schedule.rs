//! Event scheduling and traffic generation shared by the simulation
//! engines.
//!
//! Three pieces live here:
//!
//! * [`EventQueue`] — a bucketed *calendar queue* of `(time, id)` events
//!   popped in lexicographic `(time, id)` order, so same-cycle events pop
//!   in ascending id order. Events due within the next
//!   [`CALENDAR_SLOTS`] cycles live in per-cycle buckets (O(1) push/pop —
//!   the dense regime of a loaded network); events further out fall back
//!   to a small binary heap and migrate into buckets as the drain
//!   frontier advances (the sparse low-load regime, where per-node gaps
//!   are tens of thousands of cycles). The event engine keys the queue by
//!   node to find the next injection without scanning the network; ties
//!   popping in node order is what keeps its spawn order identical to the
//!   cycle engine's `for node in 0..n` loop.
//! * [`ArrivalProcess`] — the per-node arrival-process contract behind a
//!   [`noc_workloads::TrafficSpec`]: a process knows the cycle of its next
//!   arrival and, when popped, classifies the arrival and schedules the
//!   following one. Draws are made *per arrival*, never per cycle, so the
//!   cost of generation is O(arrivals) regardless of how sparse the
//!   traffic is. Implementations: [`GeometricProcess`] (the paper's
//!   memoryless source — `P(gap = k) = (1 − λ)^{k−1} λ`, exactly the
//!   waiting time of a per-cycle Bernoulli source), [`OnOffProcess`]
//!   (bursty two-state source with the long-run mean matched to the
//!   nominal rate) and [`TraceProcess`] (deterministic replay of a
//!   recorded trace; see [`record_trace`]).
//! * [`ArrivalStream`] — one node's source: the node's private RNG
//!   (seeded from the master seed and the node index) plus its boxed
//!   process. Both engines consume the same streams and the per-arrival
//!   draw order (class, destination, next gap) is part of their
//!   deterministic contract, which is what makes their runs bit-identical
//!   under a shared seed. Under [`TrafficSpec::Geometric`] the streams
//!   are draw-for-draw identical to the pre-subsystem hard-coded source,
//!   so existing seeds keep their meaning.

use noc_topology::NodeId;
use noc_workloads::{TraceEntry, TraceKind, TrafficSpec, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Width of the calendar window, in cycles (a power of two, so slot
/// lookup is a mask). Events due within `[frontier, frontier + CALENDAR_SLOTS)`
/// live in per-cycle buckets; later events wait in a heap and migrate in
/// as the frontier advances.
pub const CALENDAR_SLOTS: u64 = 1024;

/// Bitmap words covering one bit per calendar slot.
const OCC_WORDS: usize = (CALENDAR_SLOTS as usize) / 64;

/// A bucketed calendar queue of `(time, id)` pairs.
///
/// `pop_due` pops events in `(time, id)` lexicographic order, so events
/// scheduled for the same cycle come out in ascending id order — a
/// deterministic tie-break the engines rely on.
///
/// Layout: events due within the next [`CALENDAR_SLOTS`] cycles of the
/// drain frontier sit in per-cycle buckets (`slots[time % CALENDAR_SLOTS]`),
/// found through an occupancy bitmap — push and pop are O(1) in the
/// dense regime of a loaded network. Events beyond the window fall back
/// to a small binary min-heap (`far`) and migrate into buckets when the
/// frontier reaches them — the sparse low-load regime, where inter-event
/// gaps dwarf the window. Within the window each slot holds events of
/// exactly one time, and same-time ids pop in ascending order via a lazy
/// descending sort on first drain of the slot.
///
/// The frontier (`cursor`) tracks the time of the most recently popped
/// event; `push` panics if asked to schedule behind it, so an engine bug
/// that would silently reorder events under the old heap surfaces as a
/// named invariant violation here.
#[derive(Clone, Debug)]
pub struct EventQueue {
    /// Drain frontier: every pending event has `time >= cursor`.
    cursor: u64,
    /// Earliest pending event time (`u64::MAX` when empty, except for
    /// events literally scheduled at `u64::MAX`). Maintained as a `min`
    /// on push and recomputed once per successful pop, so the loaded
    /// regime's once-per-cycle *failing* `pop_due` probe — the engine's
    /// hot path at saturation, where an arrival is due only every few
    /// cycles — is a single compare instead of a bitmap scan.
    next_time: u64,
    /// Events currently held in the calendar window.
    near_len: usize,
    /// Per-cycle buckets; `slots[t % CALENDAR_SLOTS]` holds the ids due
    /// at `t` for the unique in-window `t` mapping to that index.
    slots: Vec<Vec<u32>>,
    /// One bit per slot: does the bucket hold any events?
    occupied: [u64; OCC_WORDS],
    /// The time whose bucket is sorted (descending) and mid-drain.
    draining: Option<u64>,
    /// Far-future overflow: a binary min-heap of events with
    /// `time >= cursor + CALENDAR_SLOTS`.
    far: Vec<(u64, u32)>,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            cursor: 0,
            next_time: u64::MAX,
            near_len: 0,
            slots: vec![Vec::new(); CALENDAR_SLOTS as usize],
            occupied: [0; OCC_WORDS],
            draining: None,
            far: Vec::new(),
        }
    }

    /// An empty queue with room for `cap` far-future events (the calendar
    /// window itself is fixed-size).
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = EventQueue::new();
        q.far.reserve(cap);
        q
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near_len + self.far.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `id` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` lies behind the drain frontier — i.e. the caller
    /// is scheduling an event into the past relative to events already
    /// popped, which the pop order could no longer honour.
    pub fn push(&mut self, time: u64, id: u32) {
        assert!(
            time >= self.cursor,
            "EventQueue invariant violated: event (time {time}, id {id}) scheduled into the \
             past behind the drain frontier {}",
            self.cursor
        );
        self.next_time = self.next_time.min(time);
        if time - self.cursor < CALENDAR_SLOTS {
            self.near_insert(time, id);
        } else {
            self.far.push((time, id));
            self.far_sift_up(self.far.len() - 1);
        }
    }

    /// Earliest pending event time, if any. O(1): reads the maintained
    /// minimum.
    pub fn peek_time(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.next_time)
    }

    /// Pop the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: u64) -> Option<u32> {
        // Saturation hot path: a probe with nothing due is one compare
        // (the emptiness check only runs when `now` reaches the cached
        // minimum, which an empty queue parks at `u64::MAX`).
        if self.next_time > now || self.is_empty() {
            return None;
        }
        let id = loop {
            if let Some(t) = self.first_near_time() {
                break self.pop_slot(t);
            }
            // The window is empty and the next far event is due (the
            // cached minimum said so): jump the frontier to it so it (and
            // any companions) migrate into buckets, then pop from there.
            let &(t, _) = self
                .far
                .first()
                .expect("EventQueue invariant violated: cached minimum but no pending event");
            self.cursor = t;
            self.settle();
        };
        // In-window events always precede far ones (far ≥ cursor + window).
        self.next_time = self
            .first_near_time()
            .or_else(|| self.far.first().map(|&(t, _)| t))
            .unwrap_or(u64::MAX);
        Some(id)
    }

    /// Insert an in-window event into its bucket.
    fn near_insert(&mut self, time: u64, id: u32) {
        let s = (time % CALENDAR_SLOTS) as usize;
        if self.draining == Some(time) {
            // The bucket is mid-drain (sorted descending): keep it sorted.
            let pos = self.slots[s].partition_point(|&x| x > id);
            self.slots[s].insert(pos, id);
        } else {
            self.slots[s].push(id);
        }
        self.occupied[s / 64] |= 1u64 << (s % 64);
        self.near_len += 1;
    }

    /// Pop the smallest id due at `t` (the earliest pending time).
    fn pop_slot(&mut self, t: u64) -> u32 {
        if t > self.cursor {
            self.cursor = t;
            self.settle();
        }
        let s = (t % CALENDAR_SLOTS) as usize;
        if self.draining != Some(t) {
            // Lazy: sort descending on first drain so each pop is a
            // cheap pop-from-the-back in ascending id order.
            self.slots[s].sort_unstable_by(|a, b| b.cmp(a));
            self.draining = Some(t);
        }
        let id = self.slots[s]
            .pop()
            .expect("EventQueue invariant violated: occupied bucket holds no event");
        self.near_len -= 1;
        if self.slots[s].is_empty() {
            self.occupied[s / 64] &= !(1u64 << (s % 64));
            self.draining = None;
        }
        id
    }

    /// Migrate far events that now fall inside the window. Called after
    /// every frontier advance so the far heap's `time >= cursor + window`
    /// invariant holds.
    fn settle(&mut self) {
        let limit = self.cursor.saturating_add(CALENDAR_SLOTS);
        while let Some(&(t, id)) = self.far.first() {
            if t >= limit {
                break;
            }
            self.far_pop();
            self.near_insert(t, id);
        }
    }

    /// Earliest occupied bucket time within the window, via the bitmap.
    fn first_near_time(&self) -> Option<u64> {
        if self.near_len == 0 {
            return None;
        }
        let start = (self.cursor % CALENDAR_SLOTS) as usize;
        let base = self.cursor - self.cursor % CALENDAR_SLOTS;
        // Slots at or after the frontier's index hold times in this
        // window lap; earlier slots hold times one lap later.
        if let Some(s) = self.first_set_in(start, CALENDAR_SLOTS as usize) {
            return Some(base + s as u64);
        }
        let s = self.first_set_in(0, start)?;
        Some(base + CALENDAR_SLOTS + s as u64)
    }

    /// Lowest set bit in `occupied[lo..hi)`, if any.
    fn first_set_in(&self, lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi {
            return None;
        }
        let hi_w = hi.div_ceil(64);
        let mut w = lo / 64;
        let mut bits = self.occupied[w] & (!0u64 << (lo % 64));
        loop {
            if bits != 0 {
                let s = w * 64 + bits.trailing_zeros() as usize;
                return (s < hi).then_some(s);
            }
            w += 1;
            if w >= hi_w {
                return None;
            }
            bits = self.occupied[w];
        }
    }

    /// Pop the minimum of the far heap.
    fn far_pop(&mut self) {
        let last = self.far.len() - 1;
        self.far.swap(0, last);
        self.far.pop();
        if !self.far.is_empty() {
            self.far_sift_down(0);
        }
    }

    fn far_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.far[i] < self.far[parent] {
                self.far.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn far_sift_down(&mut self, mut i: usize) {
        let n = self.far.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.far[l] < self.far[smallest] {
                smallest = l;
            }
            if r < n && self.far[r] < self.far[smallest] {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.far.swap(i, smallest);
            i = smallest;
        }
    }
}

/// The class and destination of one generated message, drawn at arrival
/// time from the node's stream RNG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrival {
    /// A unicast to the sampled destination.
    Unicast(NodeId),
    /// A multicast operation over the node's configured destination set.
    Multicast,
}

/// One node's arrival process: when messages appear and what class they
/// are.
///
/// The contract both engines rely on:
///
/// * [`ArrivalProcess::next_arrival`] is the exact cycle of the next
///   arrival (`u64::MAX` = the process never fires again);
/// * [`ArrivalProcess::pop`] must only be called when `next_arrival()`
///   equals the current cycle; it classifies the due arrival, schedules
///   the next one, and draws randomness *only* from the passed RNG, in a
///   deterministic order — the draws happen per arrival, never per cycle.
pub trait ArrivalProcess: std::fmt::Debug + Send {
    /// Cycle of the next arrival (`u64::MAX` when the process is done).
    fn next_arrival(&self) -> u64;

    /// Consume the arrival due now: classify it and schedule the next.
    fn pop(&mut self, rng: &mut SmallRng, wl: &Workload, n: usize, src: NodeId) -> Arrival;
}

/// Classify a freshly generated message: multicast with probability α,
/// otherwise a unicast to a pattern-sampled destination. Shared by every
/// stochastic process so the draw order (class, then destination) is
/// identical across processes — and identical to the pre-subsystem
/// source.
fn classify(rng: &mut SmallRng, wl: &Workload, n: usize, src: NodeId) -> Arrival {
    let alpha = wl.multicast_fraction;
    if alpha > 0.0 && rng.gen::<f64>() < alpha {
        Arrival::Multicast
    } else {
        Arrival::Unicast(wl.unicast_pattern.sample(n, src, rng))
    }
}

/// Sample a geometric gap on `{1, 2, …}` by inverse transform:
/// `gap = ⌈ln(1 − u) / ln_q⌉` where `ln_q = ln(1 − p)`, clamped to 1.
/// One RNG draw. `ln_q` must be negative (p > 0).
fn geometric_gap(rng: &mut SmallRng, ln_q: f64) -> u64 {
    let u: f64 = rng.gen();
    // u ∈ [0, 1) so 1 − u ∈ (0, 1] and the ratio is finite and ≥ 0.
    let k = ((1.0 - u).ln() / ln_q).ceil();
    if k < 1.0 {
        1
    } else {
        k as u64 // saturates at u64::MAX for astronomical gaps
    }
}

/// `ln(1 − p)` of a per-cycle firing probability, or `0.0` when the
/// probability is zero (or below f64 resolution) — the "disabled" marker
/// the geometric samplers test for.
fn ln_q(p: f64) -> f64 {
    if p > 0.0 {
        (1.0 - p).ln()
    } else {
        0.0
    }
}

/// The paper's memoryless source: geometric inter-arrival gaps at the
/// workload's generation rate — one RNG draw per arrival instead of one
/// Bernoulli draw per cycle, generating the identical process.
#[derive(Clone, Debug)]
pub struct GeometricProcess {
    /// `ln(1 − λ)`; `0.0` disables the process (λ = 0, or λ below f64
    /// resolution).
    ln_one_minus_rate: f64,
    next: u64,
}

impl GeometricProcess {
    /// A process firing at `rate` messages/cycle, with the first gap
    /// measured from cycle 0. A `rate` of zero (or small enough that
    /// `1 − rate == 1` in f64) never fires and draws nothing.
    pub fn new(rate: f64, rng: &mut SmallRng) -> Self {
        let ln_one_minus_rate = ln_q(rate);
        let next = if ln_one_minus_rate < 0.0 {
            geometric_gap(rng, ln_one_minus_rate)
        } else {
            u64::MAX
        };
        GeometricProcess {
            ln_one_minus_rate,
            next,
        }
    }
}

impl ArrivalProcess for GeometricProcess {
    fn next_arrival(&self) -> u64 {
        self.next
    }

    fn pop(&mut self, rng: &mut SmallRng, wl: &Workload, n: usize, src: NodeId) -> Arrival {
        let arrival = classify(rng, wl, n, src);
        let gap = geometric_gap(rng, self.ln_one_minus_rate);
        self.next = self.next.saturating_add(gap);
        arrival
    }
}

/// A two-state bursty source: bursts of geometrically many messages
/// (mean `burst_len`) spaced at geometric gaps of the peak rate, separated
/// by geometric off-gaps sized so the long-run mean rate equals the
/// workload's nominal rate (Wald's identity makes the match exact in
/// expectation, so rate sweeps stay comparable with Poisson runs).
///
/// Draw cost: one draw per in-burst arrival, three per burst boundary —
/// O(arrivals) like every process here.
#[derive(Clone, Debug)]
pub struct OnOffProcess {
    /// `ln(1 − peak_rate)` — in-burst gap sampler.
    ln_q_on: f64,
    /// `ln(1 − 1/burst_len)` — burst-size sampler (`0.0` ⇒ size 1, no
    /// draw).
    ln_q_burst: f64,
    /// `ln(1 − 1/off_gap_mean)` — off-gap sampler.
    ln_q_off: f64,
    /// Arrivals left in the current burst after the one scheduled.
    remaining: u64,
    next: u64,
}

impl OnOffProcess {
    /// A bursty process with mean `burst_len` messages per burst at
    /// `peak_rate` inside bursts, matching a long-run mean of `rate`.
    /// `rate = 0` never fires and draws nothing; otherwise the parameters
    /// must satisfy `rate < peak_rate < 1` and `burst_len >= 1`
    /// (validated by [`TrafficSpec::validate`]).
    pub fn new(burst_len: f64, peak_rate: f64, rate: f64, rng: &mut SmallRng) -> Self {
        if rate <= 0.0 {
            return OnOffProcess {
                ln_q_on: 0.0,
                ln_q_burst: 0.0,
                ln_q_off: 0.0,
                remaining: 0,
                next: u64::MAX,
            };
        }
        let off_mean = TrafficSpec::off_gap_mean(burst_len, peak_rate, rate);
        let ln_q_off = ln_q(1.0 / off_mean);
        if ln_q_off == 0.0 {
            // The off-gap probability underflowed f64 (a mean rate below
            // resolution): a source that never fires, mirroring the
            // geometric process's treatment of such rates.
            return OnOffProcess {
                ln_q_on: 0.0,
                ln_q_burst: 0.0,
                ln_q_off: 0.0,
                remaining: 0,
                next: u64::MAX,
            };
        }
        let mut p = OnOffProcess {
            ln_q_on: ln_q(peak_rate),
            // `burst_len = 1` means every burst has exactly one message:
            // keep the 0.0 "no draw" sentinel (ln_q(1.0) would be −∞ and
            // waste a draw on a deterministic outcome). With one message
            // per burst every gap is an off-gap of mean 1/rate, so the
            // stream degenerates to draw-for-draw the geometric source.
            ln_q_burst: if burst_len > 1.0 {
                ln_q(1.0 / burst_len)
            } else {
                0.0
            },
            ln_q_off,
            remaining: 0,
            next: 0,
        };
        // Start at a burst boundary: the first arrival opens the first
        // burst after an off-gap measured from cycle 0.
        let gap = p.boundary_gap(rng);
        p.next = gap;
        p
    }

    /// Sample a burst boundary: the size of the next burst (stashed in
    /// `remaining`) and the off-gap preceding its first arrival.
    fn boundary_gap(&mut self, rng: &mut SmallRng) -> u64 {
        let burst = if self.ln_q_burst < 0.0 {
            geometric_gap(rng, self.ln_q_burst)
        } else {
            1
        };
        self.remaining = burst - 1;
        geometric_gap(rng, self.ln_q_off)
    }
}

impl ArrivalProcess for OnOffProcess {
    fn next_arrival(&self) -> u64 {
        self.next
    }

    fn pop(&mut self, rng: &mut SmallRng, wl: &Workload, n: usize, src: NodeId) -> Arrival {
        let arrival = classify(rng, wl, n, src);
        let gap = if self.remaining > 0 {
            self.remaining -= 1;
            geometric_gap(rng, self.ln_q_on)
        } else {
            self.boundary_gap(rng)
        };
        self.next = self.next.saturating_add(gap);
        arrival
    }
}

/// Deterministic replay of one node's slice of a recorded arrival trace.
/// Draws nothing from the RNG; classes and destinations come from the
/// trace.
#[derive(Clone, Debug)]
pub struct TraceProcess {
    /// This node's arrivals in cycle order.
    entries: Vec<(u64, Arrival)>,
    next_idx: usize,
}

impl TraceProcess {
    /// A process replaying `entries` (already filtered to one node,
    /// strictly increasing cycles — [`TrafficSpec::validate`] enforces
    /// the shape).
    pub fn new(entries: Vec<(u64, Arrival)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        TraceProcess {
            entries,
            next_idx: 0,
        }
    }
}

impl ArrivalProcess for TraceProcess {
    fn next_arrival(&self) -> u64 {
        self.entries
            .get(self.next_idx)
            .map_or(u64::MAX, |&(c, _)| c)
    }

    fn pop(&mut self, _rng: &mut SmallRng, _wl: &Workload, _n: usize, _src: NodeId) -> Arrival {
        let (_, arrival) = self.entries[self.next_idx];
        self.next_idx += 1;
        arrival
    }
}

/// One node's message source: the node's private RNG plus its arrival
/// process.
#[derive(Debug)]
pub struct ArrivalStream {
    rng: SmallRng,
    process: Box<dyn ArrivalProcess>,
}

/// Per-node seed mixing constant (kept from the original engine so seeds
/// keep their meaning across the refactor).
const NODE_SEED_MIX: u64 = 0xA076_1D64_78BD_642F;

/// The node's private RNG, seeded exactly as the pre-subsystem source
/// seeded it.
fn node_rng(master_seed: u64, node: usize) -> SmallRng {
    SmallRng::seed_from_u64(master_seed ^ (NODE_SEED_MIX.wrapping_mul(node as u64 + 1)))
}

impl ArrivalStream {
    /// Build node `node`'s memoryless stream under `master_seed` at `rate`
    /// messages/cycle — the [`TrafficSpec::Geometric`] process, kept as a
    /// named constructor for tests and micro-benchmarks.
    pub fn new(master_seed: u64, node: usize, rate: f64) -> Self {
        let mut rng = node_rng(master_seed, node);
        let process = Box::new(GeometricProcess::new(rate, &mut rng));
        ArrivalStream { rng, process }
    }

    /// Build every node's stream for `wl` under `master_seed`, dispatching
    /// on the workload's [`TrafficSpec`]. This is the single construction
    /// path both engines use; under [`TrafficSpec::Geometric`] the streams
    /// are draw-for-draw identical to the pre-subsystem hard-coded source.
    ///
    /// # Panics
    ///
    /// Panics if the spec does not fit the workload — the engines'
    /// documented construction contract; the experiment layer reports the
    /// same condition as a typed error before any engine is built.
    pub fn build_all(wl: &Workload, n: usize, master_seed: u64) -> Vec<ArrivalStream> {
        wl.traffic
            .validate(n, wl.gen_rate)
            .expect("traffic spec must fit the workload");
        match &wl.traffic {
            TrafficSpec::Geometric => (0..n)
                .map(|i| ArrivalStream::new(master_seed, i, wl.gen_rate))
                .collect(),
            TrafficSpec::OnOff {
                burst_len,
                peak_rate,
            } => (0..n)
                .map(|i| {
                    let mut rng = node_rng(master_seed, i);
                    let process = Box::new(OnOffProcess::new(
                        *burst_len,
                        *peak_rate,
                        wl.gen_rate,
                        &mut rng,
                    ));
                    ArrivalStream { rng, process }
                })
                .collect(),
            TrafficSpec::Trace { entries } => {
                let mut per_node: Vec<Vec<(u64, Arrival)>> = vec![Vec::new(); n];
                for e in entries.iter() {
                    let arrival = match e.kind {
                        TraceKind::Unicast { dst } => Arrival::Unicast(NodeId(dst)),
                        TraceKind::Multicast => Arrival::Multicast,
                    };
                    per_node[e.node as usize].push((e.cycle, arrival));
                }
                per_node
                    .into_iter()
                    .enumerate()
                    .map(|(i, entries)| ArrivalStream {
                        rng: node_rng(master_seed, i),
                        process: Box::new(TraceProcess::new(entries)),
                    })
                    .collect()
            }
        }
    }

    /// Cycle of the next arrival (`u64::MAX` when the stream is disabled
    /// or exhausted).
    #[inline]
    pub fn next_arrival(&self) -> u64 {
        self.process.next_arrival()
    }

    /// Consume the arrival due now: classify it and schedule the next one.
    ///
    /// Callers must only invoke this when `next_arrival()` equals the
    /// current cycle; the draw order (class, destination, next gap) is
    /// part of the deterministic contract between the engines.
    pub fn pop(&mut self, wl: &Workload, n: usize, src: NodeId) -> Arrival {
        self.process.pop(&mut self.rng, wl, n, src)
    }
}

/// Record the complete arrival trace `wl` generates under `master_seed`
/// up to and including `horizon`, as [`TrafficSpec::Trace`] entries
/// sorted by `(cycle, node)`.
///
/// Generation is open-loop — arrival processes never observe network
/// state — so this standalone recording is exactly the sequence any
/// engine run with the same `(workload, seed)` generates: replaying the
/// trace of a finished run (with `horizon` = the run's final cycle)
/// reproduces that run bit-for-bit, which `tests/traffic_processes.rs`
/// enforces.
pub fn record_trace(wl: &Workload, n: usize, master_seed: u64, horizon: u64) -> Vec<TraceEntry> {
    let mut streams = ArrivalStream::build_all(wl, n, master_seed);
    let mut entries = Vec::new();
    for (node, stream) in streams.iter_mut().enumerate() {
        while stream.next_arrival() <= horizon {
            let cycle = stream.next_arrival();
            let kind = match stream.pop(wl, n, NodeId(node as u32)) {
                Arrival::Unicast(dst) => TraceKind::Unicast { dst: dst.0 },
                Arrival::Multicast => TraceKind::Multicast,
            };
            entries.push(TraceEntry {
                cycle,
                node: node as u32,
                kind,
            });
        }
    }
    entries.sort_by_key(|e| (e.cycle, e.node));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::Quarc;
    use noc_workloads::DestinationSets;

    #[test]
    fn event_queue_pops_in_time_then_id_order() {
        let mut q = EventQueue::new();
        for (t, id) in [(5u64, 2u32), (3, 9), (5, 0), (1, 4), (3, 1)] {
            q.push(t, id);
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(1));
        let mut out = Vec::new();
        while let Some(id) = q.pop_due(u64::MAX) {
            out.push(id);
        }
        assert_eq!(out, vec![4, 1, 9, 0, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_due_respects_the_deadline() {
        let mut q = EventQueue::new();
        q.push(10, 1);
        q.push(4, 2);
        assert_eq!(q.pop_due(3), None);
        assert_eq!(q.pop_due(4), Some(2));
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(10), Some(1));
        assert_eq!(q.pop_due(u64::MAX), None);
    }

    #[test]
    fn far_events_migrate_across_the_window_boundary() {
        // Times beyond CALENDAR_SLOTS start in the far heap and must pop
        // in global (time, id) order as the frontier wraps the calendar.
        let mut q = EventQueue::new();
        let events = [
            (2u64, 7u32),
            (CALENDAR_SLOTS - 1, 3),
            (CALENDAR_SLOTS + 5, 1),
            (CALENDAR_SLOTS + 5, 0),
            (3 * CALENDAR_SLOTS + 2, 9),
            (10 * CALENDAR_SLOTS, 4),
        ];
        for (t, id) in events {
            q.push(t, id);
        }
        assert_eq!(q.len(), events.len());
        assert_eq!(q.peek_time(), Some(2));
        let mut out = Vec::new();
        while let Some(id) = q.pop_due(u64::MAX) {
            out.push(id);
        }
        assert_eq!(out, vec![7, 3, 0, 1, 9, 4]);
    }

    #[test]
    fn interleaved_pushes_keep_pop_order_after_wraps() {
        // Push-as-you-pop across several window laps: the queue must keep
        // honouring (time, id) order, including a push into a bucket that
        // is mid-drain (same time as the event just popped).
        let mut q = EventQueue::new();
        q.push(0, 5);
        q.push(0, 9);
        assert_eq!(q.pop_due(0), Some(5));
        q.push(0, 7); // same-cycle push while the bucket drains
        assert_eq!(q.pop_due(0), Some(7));
        assert_eq!(q.pop_due(0), Some(9));
        // March the frontier over multiple wraps with a sliding event set.
        let mut time = 1u64;
        for lap in 0..5u64 {
            let t = time + lap * (CALENDAR_SLOTS / 2 + 3);
            q.push(t, lap as u32);
            q.push(t + 2 * CALENDAR_SLOTS, 100 + lap as u32);
            time = t;
        }
        let mut last = (0u64, 0u32);
        let mut popped = 0;
        while let Some(t) = q.peek_time() {
            let id = q.pop_due(u64::MAX).unwrap();
            assert!(
                (t, id) > last,
                "pop order regressed: {:?} after {:?}",
                (t, id),
                last
            );
            last = (t, id);
            popped += 1;
        }
        assert_eq!(popped, 10);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn pushing_behind_the_frontier_panics() {
        let mut q = EventQueue::new();
        q.push(50, 1);
        assert_eq!(q.pop_due(50), Some(1));
        q.push(49, 2); // behind the drain frontier: an engine bug
    }

    fn test_workload(rate: f64, alpha: f64) -> Workload {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        Workload::new(16, rate, alpha, sets).unwrap()
    }

    #[test]
    fn zero_rate_stream_never_fires() {
        let s = ArrivalStream::new(7, 3, 0.0);
        assert_eq!(s.next_arrival(), u64::MAX);
    }

    #[test]
    fn gaps_are_geometric_with_the_right_mean() {
        // Mean gap must be 1/λ; variance (1−λ)/λ² — check the mean within
        // a few standard errors over many draws.
        let wl = test_workload(0.05, 0.0);
        let mut s = ArrivalStream::new(11, 0, 0.05);
        let mut last = 0u64;
        let n = 20_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let next = s.next_arrival();
            assert!(next > last, "gaps are at least one cycle");
            sum += next - last;
            last = next;
            s.pop(&wl, 16, NodeId(0));
        }
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 20.0).abs() < 0.5,
            "mean gap {mean} should be ~1/λ = 20"
        );
    }

    #[test]
    fn class_mix_follows_alpha() {
        let wl = test_workload(0.1, 0.25);
        let mut s = ArrivalStream::new(13, 5, 0.1);
        let n = 20_000;
        let mut mc = 0usize;
        for _ in 0..n {
            match s.pop(&wl, 16, NodeId(5)) {
                Arrival::Multicast => mc += 1,
                Arrival::Unicast(d) => assert_ne!(d, NodeId(5)),
            }
        }
        let frac = mc as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "multicast fraction {frac}");
    }

    #[test]
    fn streams_are_deterministic_in_seed_and_node() {
        let wl = test_workload(0.02, 0.1);
        let mut a = ArrivalStream::new(42, 1, 0.02);
        let mut b = ArrivalStream::new(42, 1, 0.02);
        for _ in 0..100 {
            assert_eq!(a.next_arrival(), b.next_arrival());
            assert_eq!(a.pop(&wl, 16, NodeId(1)), b.pop(&wl, 16, NodeId(1)));
        }
        let fresh = ArrivalStream::new(42, 1, 0.02);
        let c = ArrivalStream::new(42, 2, 0.02);
        let d = ArrivalStream::new(43, 1, 0.02);
        assert_ne!(fresh.next_arrival(), u64::MAX);
        assert!(
            c.next_arrival() != fresh.next_arrival() || d.next_arrival() != fresh.next_arrival()
        );
    }

    #[test]
    fn build_all_geometric_matches_the_named_constructor() {
        // The dispatch path must be draw-for-draw the pre-subsystem
        // source: same seeds, same gaps, same classifications.
        let wl = test_workload(0.03, 0.1);
        let mut built = ArrivalStream::build_all(&wl, 16, 99);
        let mut named: Vec<ArrivalStream> =
            (0..16).map(|i| ArrivalStream::new(99, i, 0.03)).collect();
        for node in 0..16usize {
            for _ in 0..50 {
                assert_eq!(
                    built[node].next_arrival(),
                    named[node].next_arrival(),
                    "node {node}"
                );
                assert_eq!(
                    built[node].pop(&wl, 16, NodeId(node as u32)),
                    named[node].pop(&wl, 16, NodeId(node as u32))
                );
            }
        }
    }

    #[test]
    fn onoff_gaps_cluster_into_bursts() {
        let rate = 0.01;
        let wl = test_workload(rate, 0.0).with_traffic(TrafficSpec::OnOff {
            burst_len: 8.0,
            peak_rate: 0.5,
        });
        let mut streams = ArrivalStream::build_all(&wl, 16, 5);
        let s = &mut streams[0];
        let mut gaps = Vec::new();
        let mut last = 0u64;
        for _ in 0..20_000 {
            let next = s.next_arrival();
            assert!(next > last);
            gaps.push(next - last);
            last = next;
            s.pop(&wl, 16, NodeId(0));
        }
        // Bursty traffic: most gaps are short (in-burst, mean 2 cycles at
        // peak 0.5), a minority are long off-gaps. A memoryless source at
        // rate 0.01 would put ~60% of gaps above 50 cycles.
        let short = gaps.iter().filter(|&&g| g <= 10).count() as f64 / gaps.len() as f64;
        assert!(
            short > 0.75,
            "expected >75% in-burst gaps, got {short} short"
        );
        // Mean rate still matches the nominal rate.
        let mean_gap = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!(
            (mean_gap - 1.0 / rate).abs() < 0.05 / rate,
            "mean gap {mean_gap} should be ~{}",
            1.0 / rate
        );
    }

    #[test]
    fn onoff_burst_one_degenerates_to_the_geometric_source() {
        // One message per burst: every gap is an off-gap of mean 1/rate,
        // sampled through the same inverse transform as the geometric
        // source — the streams must be draw-for-draw identical.
        let rate = 0.02;
        let wl = test_workload(rate, 0.1).with_traffic(TrafficSpec::OnOff {
            burst_len: 1.0,
            peak_rate: 0.5,
        });
        let mut onoff = ArrivalStream::build_all(&wl, 16, 77);
        let mut geo: Vec<ArrivalStream> =
            (0..16).map(|i| ArrivalStream::new(77, i, rate)).collect();
        for node in 0..16usize {
            let src = NodeId(node as u32);
            for _ in 0..200 {
                assert_eq!(onoff[node].next_arrival(), geo[node].next_arrival());
                assert_eq!(onoff[node].pop(&wl, 16, src), geo[node].pop(&wl, 16, src));
            }
        }
    }

    #[test]
    fn onoff_zero_rate_never_fires_and_draws_nothing() {
        let wl = test_workload(0.0, 0.0).with_traffic(TrafficSpec::OnOff {
            burst_len: 4.0,
            peak_rate: 0.5,
        });
        let streams = ArrivalStream::build_all(&wl, 16, 1);
        assert!(streams.iter().all(|s| s.next_arrival() == u64::MAX));
    }

    #[test]
    fn onoff_sub_resolution_rate_disables_the_stream() {
        // A mean rate below f64 resolution underflows the off-gap
        // probability; the stream must go quiet (like the geometric
        // source), not invert into an every-cycle injector.
        let mut rng = SmallRng::seed_from_u64(1);
        let p = OnOffProcess::new(4.0, 0.5, 1e-300, &mut rng);
        assert_eq!(p.next_arrival(), u64::MAX);
    }

    #[test]
    fn trace_streams_replay_exactly() {
        let entries = vec![
            TraceEntry {
                cycle: 3,
                node: 0,
                kind: TraceKind::Unicast { dst: 5 },
            },
            TraceEntry {
                cycle: 3,
                node: 2,
                kind: TraceKind::Multicast,
            },
            TraceEntry {
                cycle: 9,
                node: 0,
                kind: TraceKind::Unicast { dst: 1 },
            },
        ];
        let wl = test_workload(0.01, 0.1).with_traffic(TrafficSpec::trace(entries));
        let mut streams = ArrivalStream::build_all(&wl, 16, 7);
        assert_eq!(streams[0].next_arrival(), 3);
        assert_eq!(streams[1].next_arrival(), u64::MAX);
        assert_eq!(streams[2].next_arrival(), 3);
        assert_eq!(
            streams[0].pop(&wl, 16, NodeId(0)),
            Arrival::Unicast(NodeId(5))
        );
        assert_eq!(streams[0].next_arrival(), 9);
        assert_eq!(streams[2].pop(&wl, 16, NodeId(2)), Arrival::Multicast);
        assert_eq!(streams[2].next_arrival(), u64::MAX);
        assert_eq!(
            streams[0].pop(&wl, 16, NodeId(0)),
            Arrival::Unicast(NodeId(1))
        );
        assert_eq!(streams[0].next_arrival(), u64::MAX);
    }

    #[test]
    fn recorded_trace_matches_the_live_streams() {
        let wl = test_workload(0.02, 0.2);
        let horizon = 5_000;
        let trace = record_trace(&wl, 16, 31, horizon);
        assert!(!trace.is_empty());
        assert!(trace
            .windows(2)
            .all(|w| { (w[0].cycle, w[0].node) < (w[1].cycle, w[1].node) }));
        assert!(trace.iter().all(|e| (1..=horizon).contains(&e.cycle)));
        // Replaying the recorded trace yields the same arrivals as the
        // live geometric streams, node by node.
        let replay_wl = wl.clone().with_traffic(TrafficSpec::trace(trace.clone()));
        let mut live = ArrivalStream::build_all(&wl, 16, 31);
        let mut replay = ArrivalStream::build_all(&replay_wl, 16, 31);
        for node in 0..16usize {
            let src = NodeId(node as u32);
            while replay[node].next_arrival() != u64::MAX {
                assert_eq!(live[node].next_arrival(), replay[node].next_arrival());
                assert_eq!(live[node].pop(&wl, 16, src), replay[node].pop(&wl, 16, src));
            }
            assert!(live[node].next_arrival() > horizon);
        }
    }

    #[test]
    #[should_panic(expected = "traffic spec must fit")]
    fn build_all_rejects_unrealizable_specs() {
        let wl = test_workload(0.4, 0.0).with_traffic(TrafficSpec::OnOff {
            burst_len: 4.0,
            peak_rate: 0.2,
        });
        let _ = ArrivalStream::build_all(&wl, 16, 1);
    }
}
