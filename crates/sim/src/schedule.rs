//! Event scheduling primitives shared by the simulation engines.
//!
//! Two pieces live here:
//!
//! * [`EventQueue`] — a binary min-heap of `(time, id)` events ordered
//!   lexicographically, so same-cycle events pop in ascending id order.
//!   The event engine keys it by node to find the next injection without
//!   scanning the network; ties popping in node order is what keeps its
//!   spawn order identical to the cycle engine's `for node in 0..n` loop.
//! * [`ArrivalStream`] — one node's Poisson message source, sampling
//!   *geometric inter-arrival gaps* (one RNG draw per arrival) instead of
//!   one Bernoulli draw per cycle. The gap distribution
//!   `P(gap = k) = (1 − λ)^{k−1} λ` is exactly the waiting time of the
//!   per-cycle Bernoulli source, so the generated process is the same; the
//!   cost drops from O(cycles) to O(arrivals). Both engines consume the
//!   same streams, which is what makes their runs bit-identical under a
//!   shared seed.

use noc_topology::NodeId;
use noc_workloads::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A binary min-heap of `(time, id)` pairs.
///
/// `pop_due` pops events in `(time, id)` lexicographic order, so events
/// scheduled for the same cycle come out in ascending id order — a
/// deterministic tie-break the engines rely on.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: Vec<(u64, u32)>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// An empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `id` at `time`.
    pub fn push(&mut self, time: u64, id: u32) {
        self.heap.push((time, id));
        self.sift_up(self.heap.len() - 1);
    }

    /// Earliest pending event time, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.first().map(|&(t, _)| t)
    }

    /// Pop the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: u64) -> Option<u32> {
        match self.heap.first() {
            Some(&(t, id)) if t <= now => {
                let last = self.heap.len() - 1;
                self.heap.swap(0, last);
                self.heap.pop();
                if !self.heap.is_empty() {
                    self.sift_down(0);
                }
                Some(id)
            }
            _ => None,
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i] < self.heap[parent] {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.heap[l] < self.heap[smallest] {
                smallest = l;
            }
            if r < n && self.heap[r] < self.heap[smallest] {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

/// The class and destination of one generated message, drawn at arrival
/// time from the node's stream RNG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrival {
    /// A unicast to the sampled destination.
    Unicast(NodeId),
    /// A multicast operation over the node's configured destination set.
    Multicast,
}

/// One node's Poisson message source.
///
/// Holds the node's private RNG (seeded from the master seed and the node
/// index, as the original per-node Bernoulli sources were) and the cycle
/// of the next arrival. [`ArrivalStream::pop`] classifies the due arrival
/// and schedules the following one.
#[derive(Clone, Debug)]
pub struct ArrivalStream {
    rng: SmallRng,
    /// `ln(1 − λ)`; `0.0` disables the stream (λ = 0, or λ below f64
    /// resolution).
    ln_one_minus_rate: f64,
    next: u64,
}

/// Per-node seed mixing constant (kept from the original engine so seeds
/// keep their meaning across the refactor).
const NODE_SEED_MIX: u64 = 0xA076_1D64_78BD_642F;

impl ArrivalStream {
    /// Build node `node`'s stream under `master_seed` at `rate`
    /// messages/cycle. A `rate` of zero (or small enough that
    /// `1 − rate == 1` in f64) yields a stream that never fires.
    pub fn new(master_seed: u64, node: usize, rate: f64) -> Self {
        let rng =
            SmallRng::seed_from_u64(master_seed ^ (NODE_SEED_MIX.wrapping_mul(node as u64 + 1)));
        let ln_one_minus_rate = if rate > 0.0 { (1.0 - rate).ln() } else { 0.0 };
        let mut s = ArrivalStream {
            rng,
            ln_one_minus_rate,
            next: u64::MAX,
        };
        if s.ln_one_minus_rate < 0.0 {
            let gap = s.gap();
            s.next = gap; // first arrival measured from cycle 0
        }
        s
    }

    /// Sample a geometric inter-arrival gap (support `{1, 2, …}`) by
    /// inverse transform: `gap = ⌈ln(1 − u) / ln(1 − λ)⌉`, clamped to 1.
    fn gap(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        // u ∈ [0, 1) so 1 − u ∈ (0, 1] and the ratio is finite and ≥ 0.
        let k = ((1.0 - u).ln() / self.ln_one_minus_rate).ceil();
        if k < 1.0 {
            1
        } else {
            k as u64 // saturates at u64::MAX for astronomical gaps
        }
    }

    /// Cycle of the next arrival (`u64::MAX` when the stream is disabled).
    #[inline]
    pub fn next_arrival(&self) -> u64 {
        self.next
    }

    /// Consume the arrival due now: classify it (multicast with
    /// probability α, otherwise a unicast to a pattern-sampled
    /// destination) and schedule the next one.
    ///
    /// Callers must only invoke this when `next_arrival()` equals the
    /// current cycle; the draw order (class, destination, next gap) is
    /// part of the deterministic contract between the engines.
    pub fn pop(&mut self, wl: &Workload, n: usize, src: NodeId) -> Arrival {
        let alpha = wl.multicast_fraction;
        let arrival = if alpha > 0.0 && self.rng.gen::<f64>() < alpha {
            Arrival::Multicast
        } else {
            Arrival::Unicast(wl.unicast_pattern.sample(n, src, &mut self.rng))
        };
        let gap = self.gap();
        self.next = self.next.saturating_add(gap);
        arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::Quarc;
    use noc_workloads::DestinationSets;

    #[test]
    fn event_queue_pops_in_time_then_id_order() {
        let mut q = EventQueue::new();
        for (t, id) in [(5u64, 2u32), (3, 9), (5, 0), (1, 4), (3, 1)] {
            q.push(t, id);
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(1));
        let mut out = Vec::new();
        while let Some(id) = q.pop_due(u64::MAX) {
            out.push(id);
        }
        assert_eq!(out, vec![4, 1, 9, 0, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_due_respects_the_deadline() {
        let mut q = EventQueue::new();
        q.push(10, 1);
        q.push(4, 2);
        assert_eq!(q.pop_due(3), None);
        assert_eq!(q.pop_due(4), Some(2));
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(10), Some(1));
        assert_eq!(q.pop_due(u64::MAX), None);
    }

    fn test_workload(rate: f64, alpha: f64) -> Workload {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        Workload::new(16, rate, alpha, sets).unwrap()
    }

    #[test]
    fn zero_rate_stream_never_fires() {
        let s = ArrivalStream::new(7, 3, 0.0);
        assert_eq!(s.next_arrival(), u64::MAX);
    }

    #[test]
    fn gaps_are_geometric_with_the_right_mean() {
        // Mean gap must be 1/λ; variance (1−λ)/λ² — check the mean within
        // a few standard errors over many draws.
        let wl = test_workload(0.05, 0.0);
        let mut s = ArrivalStream::new(11, 0, 0.05);
        let mut last = 0u64;
        let n = 20_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let next = s.next_arrival();
            assert!(next > last, "gaps are at least one cycle");
            sum += next - last;
            last = next;
            s.pop(&wl, 16, NodeId(0));
        }
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 20.0).abs() < 0.5,
            "mean gap {mean} should be ~1/λ = 20"
        );
    }

    #[test]
    fn class_mix_follows_alpha() {
        let wl = test_workload(0.1, 0.25);
        let mut s = ArrivalStream::new(13, 5, 0.1);
        let n = 20_000;
        let mut mc = 0usize;
        for _ in 0..n {
            match s.pop(&wl, 16, NodeId(5)) {
                Arrival::Multicast => mc += 1,
                Arrival::Unicast(d) => assert_ne!(d, NodeId(5)),
            }
        }
        let frac = mc as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "multicast fraction {frac}");
    }

    #[test]
    fn streams_are_deterministic_in_seed_and_node() {
        let wl = test_workload(0.02, 0.1);
        let mut a = ArrivalStream::new(42, 1, 0.02);
        let mut b = ArrivalStream::new(42, 1, 0.02);
        for _ in 0..100 {
            assert_eq!(a.next_arrival(), b.next_arrival());
            assert_eq!(a.pop(&wl, 16, NodeId(1)), b.pop(&wl, 16, NodeId(1)));
        }
        let fresh = ArrivalStream::new(42, 1, 0.02);
        let c = ArrivalStream::new(42, 2, 0.02);
        let d = ArrivalStream::new(43, 1, 0.02);
        assert_ne!(fresh.next_arrival(), u64::MAX);
        assert!(
            c.next_arrival() != fresh.next_arrival() || d.next_arrival() != fresh.next_arrival()
        );
    }
}
