//! # noc-app
//!
//! Closed-loop application workloads for the IPDPS 2009 reproduction: pure
//! per-node protocol state machines that *react to deliveries* instead of
//! injecting at a fixed rate.
//!
//! Open-loop traffic (everything in `noc-workloads`) decides injection
//! times up front; the network's behaviour never feeds back into the
//! sources. Real application traffic is closed-loop — requests spawn
//! replies, coherence operations fan out invalidations and block on acks —
//! which is exactly the workload class the paper's M/G/1 model structurally
//! cannot describe. This crate supplies that layer as *pure models* in the
//! style of openmina's state-machine experiments:
//!
//! * [`AppProtocol`] — a per-node state machine as a pure function
//!   `(state, event) -> (state', emissions)`. All randomness comes from a
//!   seeded per-node [`rand::rngs::SmallRng`], so a protocol replays
//!   bit-identically on the cycle and event engines. Machines never touch
//!   the network directly: they return [`Emission`] values and the engine
//!   side (the dispatcher, `noc_sim::ClosedLoopDriver`) performs them.
//! * [`ProtocolBank`] / [`Machines`] — the object-safe bundle of one
//!   machine per node that the dispatcher drives.
//! * [`Coherence`] — an invalidation-based coherence protocol: read/write
//!   requests to random home nodes, multicast invalidation fan-out, ack
//!   collection, a bounded window of outstanding requests per node.
//! * [`Barrier`] — barrier/allreduce rounds over a configurable radix-`r`
//!   fan-in tree with randomized compute delays (exercising the timeout
//!   path), released by a root multicast.
//! * [`ClosedLoopSpec`] — the serializable description of either protocol,
//!   embedded in `noc_bench`'s `WorkloadSpec`.
//!
//! The strict model/dispatcher split is the determinism story: every
//! side effect is data ([`Emission`]), every input is data ([`AppEvent`]),
//! and both engines feed the same event sequence in the same order.
//!
//! Measurement of a protocol run lives on the engine side:
//! `noc_sim::ClosedLoopResults` summarises request completion times both
//! as Welford moments and as a streaming log-bucketed histogram
//! (`noc_telemetry::LogHistogram`), so closed-loop exhibits report tail
//! quantiles (P50/P95/P99) next to the mean — per replicate and pooled
//! across replicates by the bench runner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod coherence;
pub mod protocol;
pub mod spec;

pub use barrier::Barrier;
pub use coherence::Coherence;
pub use protocol::{
    app_rng, AppEvent, AppProtocol, Emission, Machines, NetEnv, Payload, ProtocolBank,
};
pub use spec::ClosedLoopSpec;
