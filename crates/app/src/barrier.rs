//! Barrier/allreduce rounds over a radix-`r` fan-in tree.
//!
//! All nodes repeatedly synchronize: each round, every node "computes"
//! for a random number of cycles (a timer — this protocol is what
//! exercises the timeout path), then arrives at the barrier. Arrivals
//! combine up a radix-`r` tree rooted at node 0 (`parent(i) = (i-1)/r`,
//! the reduce of an allreduce); once the root has every arrival it
//! *multicasts* the release over its destination set (the broadcast of an
//! allreduce), and receipt of the release both retires the round and
//! starts the next one.
//!
//! One request = one node's participation in one round, so the round
//! latency distribution is the per-request completion latency. Arrivals
//! for round `k+1` can reach a parent that is still waiting on its own
//! release for round `k` (release absorption times differ across the
//! multicast), so each machine buffers one round of early arrivals; a
//! child can never run two rounds ahead, because releasing round `k+1`
//! needs this very machine's arrival first.

use crate::protocol::{AppEvent, AppProtocol, Emission, NetEnv, Payload};
use noc_topology::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;

/// Message kinds of the barrier protocol.
mod kind {
    pub const ARRIVE: u8 = 0;
    pub const RELEASE: u8 = 1;
}

/// The barrier/allreduce protocol description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Barrier {
    /// Number of barrier rounds to run.
    pub rounds: u32,
    /// Fan-in radix of the combining tree (`>= 1`).
    pub radix: u32,
    /// Maximum extra compute delay per round; each node draws uniformly
    /// from `1..=1+compute` cycles before arriving.
    pub compute: u64,
}

/// Per-node barrier machine state.
#[derive(Clone, Debug)]
pub struct BarState {
    num_children: u32,
    /// Current round (also the request id).
    round: u32,
    self_arrived: bool,
    /// Child arrivals received for the current round.
    arrived: u32,
    /// Child arrivals received one round early.
    early: u32,
}

impl Barrier {
    fn parent(&self, node: NodeId) -> NodeId {
        NodeId((node.0 - 1) / self.radix)
    }

    fn num_children(&self, node: NodeId, n: usize) -> u32 {
        let first = node.0 as u64 * self.radix as u64 + 1;
        let last = (first + self.radix as u64).min(n as u64);
        last.saturating_sub(first) as u32
    }

    fn start_round(&self, st: &mut BarState, rng: &mut SmallRng, out: &mut Vec<Emission>) {
        out.push(Emission::Issued { req: st.round });
        out.push(Emission::Timer {
            delay: rng.gen_range(1..=1 + self.compute),
        });
    }

    /// Root releases / inner node forwards once its subtree has arrived.
    fn check_fanin(
        &self,
        node: NodeId,
        st: &mut BarState,
        rng: &mut SmallRng,
        out: &mut Vec<Emission>,
    ) {
        if !st.self_arrived || st.arrived < st.num_children {
            return;
        }
        if node == NodeId(0) {
            out.push(Emission::Multicast {
                payload: Payload {
                    kind: kind::RELEASE,
                    req: st.round,
                    origin: node,
                    aux: 0,
                },
            });
            // The root's own release is implicit (its destination set
            // excludes itself): retire and move on at the emission.
            self.finish_round(st, rng, out);
        } else {
            out.push(Emission::Unicast {
                dst: self.parent(node),
                payload: Payload {
                    kind: kind::ARRIVE,
                    req: st.round,
                    origin: node,
                    aux: 0,
                },
            });
        }
    }

    fn finish_round(&self, st: &mut BarState, rng: &mut SmallRng, out: &mut Vec<Emission>) {
        out.push(Emission::Retired { req: st.round });
        st.round += 1;
        st.self_arrived = false;
        // Buffered early arrivals become this round's arrivals; the
        // fan-in re-check waits for this machine's own compute timer,
        // since self_arrived is false again.
        st.arrived = st.early;
        st.early = 0;
        if st.round < self.rounds {
            self.start_round(st, rng, out);
        } else {
            out.push(Emission::Done);
            debug_assert_eq!(st.early, 0, "arrivals past the last round");
        }
    }
}

impl AppProtocol for Barrier {
    type State = BarState;

    fn init(&self, node: NodeId, env: &NetEnv) -> BarState {
        BarState {
            num_children: self.num_children(node, env.n),
            round: 0,
            self_arrived: false,
            arrived: 0,
            early: 0,
        }
    }

    fn step(
        &self,
        node: NodeId,
        st: &mut BarState,
        event: AppEvent,
        rng: &mut SmallRng,
        out: &mut Vec<Emission>,
    ) {
        match event {
            AppEvent::Start => {
                if self.rounds == 0 {
                    out.push(Emission::Done);
                    return;
                }
                self.start_round(st, rng, out);
            }
            AppEvent::Timeout => {
                st.self_arrived = true;
                self.check_fanin(node, st, rng, out);
            }
            AppEvent::Delivery(p) => match p.kind {
                kind::ARRIVE => {
                    if p.req == st.round {
                        st.arrived += 1;
                        self.check_fanin(node, st, rng, out);
                    } else if p.req == st.round + 1 {
                        st.early += 1;
                    } else {
                        unreachable!(
                            "arrival for round {} while node {} is in round {}",
                            p.req, node.0, st.round
                        );
                    }
                }
                kind::RELEASE => {
                    debug_assert_eq!(p.req, st.round, "release for a foreign round");
                    self.finish_round(st, rng, out);
                }
                other => unreachable!("unknown barrier message kind {other}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Machines, ProtocolBank};

    fn env(n: usize) -> NetEnv {
        NetEnv {
            n,
            fanout: vec![(n - 1) as u32; n],
        }
    }

    #[test]
    fn tree_shape() {
        let b = Barrier {
            rounds: 1,
            radix: 2,
            compute: 0,
        };
        assert_eq!(b.parent(NodeId(1)), NodeId(0));
        assert_eq!(b.parent(NodeId(2)), NodeId(0));
        assert_eq!(b.parent(NodeId(5)), NodeId(2));
        assert_eq!(b.num_children(NodeId(0), 7), 2);
        assert_eq!(b.num_children(NodeId(2), 7), 2);
        assert_eq!(b.num_children(NodeId(3), 7), 0);
        // Clamped at the edge of the node range.
        assert_eq!(b.num_children(NodeId(2), 6), 1);
        let total: u32 = (0..7).map(|i| b.num_children(NodeId(i), 7)).sum();
        assert_eq!(total, 6, "every non-root is someone's child exactly once");
    }

    #[test]
    fn rounds_drive_a_full_barrier_in_lockstep() {
        // Drive a 4-node radix-2 barrier by hand, playing the network:
        // deliver every emitted message instantly, fire timers in node
        // order. Two rounds must retire on every node, exactly once each.
        let proto = Barrier {
            rounds: 2,
            radix: 2,
            compute: 3,
        };
        let n = 4;
        let mut bank = Machines::new(proto, &env(n), 9);
        let mut retired = vec![0u32; n];
        let mut done = vec![false; n];
        let mut inbox: Vec<(NodeId, AppEvent)> = (0..n)
            .map(|i| (NodeId(i as u32), AppEvent::Start))
            .collect();
        let mut timers: Vec<NodeId> = Vec::new();
        let mut guard = 0;
        while !done.iter().all(|&d| d) {
            guard += 1;
            assert!(guard < 1000, "barrier failed to converge");
            if inbox.is_empty() {
                // Quiescent: fire all pending timers in node order.
                timers.sort_by_key(|t| t.0);
                inbox.extend(timers.drain(..).map(|t| (t, AppEvent::Timeout)));
                assert!(!inbox.is_empty(), "deadlock: no timers, no messages");
            }
            let (node, ev) = inbox.remove(0);
            let mut out = Vec::new();
            bank.step(node, ev, &mut out);
            for e in out {
                match e {
                    Emission::Unicast { dst, payload } => {
                        inbox.push((dst, AppEvent::Delivery(payload)))
                    }
                    Emission::Multicast { payload } => {
                        for i in 0..n {
                            if NodeId(i as u32) != node {
                                inbox.push((NodeId(i as u32), AppEvent::Delivery(payload)));
                            }
                        }
                    }
                    Emission::Timer { delay } => {
                        assert!((1..=4).contains(&delay));
                        timers.push(node);
                    }
                    Emission::Issued { .. } => {}
                    Emission::Retired { .. } => retired[node.idx()] += 1,
                    Emission::Done => done[node.idx()] = true,
                }
            }
        }
        assert_eq!(retired, vec![2; n], "every node retires every round once");
    }
}
