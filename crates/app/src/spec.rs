//! Serializable closed-loop protocol descriptions.
//!
//! [`ClosedLoopSpec`] is the data form of a protocol — what
//! `noc_bench::WorkloadSpec` embeds and scenario JSON round-trips —
//! plus the factory that builds the per-node machine bank for a run.

use crate::barrier::Barrier;
use crate::coherence::Coherence;
use crate::protocol::{Machines, NetEnv, ProtocolBank};
use serde::{Deserialize, Serialize};

/// A closed-loop protocol selection with its parameters.
///
/// Serialized with serde's external tagging, so scenario JSON reads
/// `{"Coherence": {"window": 4, ...}}`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ClosedLoopSpec {
    /// Invalidation-based coherence (see [`Coherence`]).
    Coherence {
        /// Maximum outstanding requests per node.
        window: u32,
        /// Total requests each node issues.
        requests: u32,
        /// Probability that a request is a write.
        write_fraction: f64,
    },
    /// Barrier/allreduce rounds over a radix tree (see [`Barrier`]).
    Barrier {
        /// Number of barrier rounds.
        rounds: u32,
        /// Fan-in radix of the combining tree.
        radix: u32,
        /// Maximum extra compute delay per round (cycles).
        compute: u64,
    },
}

impl ClosedLoopSpec {
    /// A short identifier for file names and table labels.
    pub fn code(&self) -> String {
        match self {
            ClosedLoopSpec::Coherence { window, .. } => format!("coh-w{window}"),
            ClosedLoopSpec::Barrier { rounds, radix, .. } => format!("bar-r{rounds}x{radix}"),
        }
    }

    /// Check the parameters against a network of `n` nodes; the message
    /// names the offending parameter.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        match *self {
            ClosedLoopSpec::Coherence {
                window,
                requests,
                write_fraction,
            } => {
                if window == 0 {
                    return Err("coherence window must be at least 1".into());
                }
                if requests == 0 {
                    return Err("coherence needs at least 1 request per node".into());
                }
                if !(0.0..=1.0).contains(&write_fraction) {
                    return Err(format!(
                        "write_fraction must be within [0, 1], got {write_fraction}"
                    ));
                }
            }
            ClosedLoopSpec::Barrier { rounds, radix, .. } => {
                if rounds == 0 {
                    return Err("barrier needs at least 1 round".into());
                }
                if radix == 0 {
                    return Err("barrier fan-in radix must be at least 1".into());
                }
            }
        }
        if n < 2 {
            return Err(format!(
                "closed-loop protocols need at least 2 nodes, got {n}"
            ));
        }
        Ok(())
    }

    /// Does the release/invalidation multicast need to reach every node?
    ///
    /// The barrier's correctness depends on the root's destination set
    /// covering all other nodes; coherence works with any non-empty
    /// sharer sets.
    pub fn needs_broadcast(&self) -> bool {
        matches!(self, ClosedLoopSpec::Barrier { .. })
    }

    /// The nominal outstanding-request bound per node (1 for the barrier:
    /// one round in flight at a time).
    pub fn window(&self) -> u32 {
        match *self {
            ClosedLoopSpec::Coherence { window, .. } => window,
            ClosedLoopSpec::Barrier { .. } => 1,
        }
    }

    /// Total requests the whole run will retire.
    pub fn total_requests(&self, n: usize) -> u64 {
        let per_node = match *self {
            ClosedLoopSpec::Coherence { requests, .. } => requests as u64,
            ClosedLoopSpec::Barrier { rounds, .. } => rounds as u64,
        };
        per_node * n as u64
    }

    /// Build the per-node machine bank for `env` under `master_seed`.
    pub fn build(&self, env: &NetEnv, master_seed: u64) -> Box<dyn ProtocolBank> {
        match *self {
            ClosedLoopSpec::Coherence {
                window,
                requests,
                write_fraction,
            } => Box::new(Machines::new(
                Coherence {
                    window,
                    requests,
                    write_fraction,
                },
                env,
                master_seed,
            )),
            ClosedLoopSpec::Barrier {
                rounds,
                radix,
                compute,
            } => Box::new(Machines::new(
                Barrier {
                    rounds,
                    radix,
                    compute,
                },
                env,
                master_seed,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json;

    #[test]
    fn spec_round_trips_through_json() {
        for spec in [
            ClosedLoopSpec::Coherence {
                window: 4,
                requests: 100,
                write_fraction: 0.3,
            },
            ClosedLoopSpec::Barrier {
                rounds: 8,
                radix: 2,
                compute: 16,
            },
        ] {
            let s = json::to_string(&spec.to_value());
            let v = json::from_str(&s).unwrap();
            assert_eq!(ClosedLoopSpec::from_value(&v).unwrap(), spec);
        }
    }

    #[test]
    fn validate_names_the_offender() {
        let bad = ClosedLoopSpec::Coherence {
            window: 0,
            requests: 10,
            write_fraction: 0.5,
        };
        assert!(bad.validate(16).unwrap_err().contains("window"));
        let bad = ClosedLoopSpec::Coherence {
            window: 1,
            requests: 10,
            write_fraction: 1.5,
        };
        assert!(bad.validate(16).unwrap_err().contains("write_fraction"));
        let bad = ClosedLoopSpec::Barrier {
            rounds: 0,
            radix: 2,
            compute: 0,
        };
        assert!(bad.validate(16).unwrap_err().contains("round"));
        let ok = ClosedLoopSpec::Barrier {
            rounds: 2,
            radix: 2,
            compute: 0,
        };
        assert!(ok.validate(16).is_ok());
        assert!(ok.validate(1).is_err());
    }

    #[test]
    fn bookkeeping_helpers() {
        let coh = ClosedLoopSpec::Coherence {
            window: 4,
            requests: 100,
            write_fraction: 0.3,
        };
        assert_eq!(coh.window(), 4);
        assert_eq!(coh.total_requests(16), 1600);
        assert!(!coh.needs_broadcast());
        assert_eq!(coh.code(), "coh-w4");
        let bar = ClosedLoopSpec::Barrier {
            rounds: 8,
            radix: 2,
            compute: 16,
        };
        assert_eq!(bar.window(), 1);
        assert_eq!(bar.total_requests(16), 128);
        assert!(bar.needs_broadcast());
        assert_eq!(bar.code(), "bar-r8x2");
    }
}
