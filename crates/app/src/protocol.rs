//! The pure protocol model: events in, emissions out.
//!
//! An [`AppProtocol`] is a deterministic per-node state machine. The
//! engine-facing dispatcher translates network happenings into
//! [`AppEvent`]s, feeds them to the machine, and performs the returned
//! [`Emission`]s — the machine itself never sees a cycle number, a channel
//! or an engine. That split is what makes closed-loop runs replay
//! bit-identically on the cycle and the event engine: both feed the same
//! event sequence in the same order, and all randomness is drawn from the
//! machine's own seeded RNG.

use noc_topology::NodeId;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Seed-mix constant for per-node protocol RNG streams.
///
/// Deliberately distinct from the engines' arrival-stream mix so protocol
/// draws never alias traffic draws under the same master seed (fractional
/// bits of √2, forced odd).
pub const APP_SEED_MIX: u64 = 0x6A09_E667_F3BC_C909;

/// The per-node protocol RNG for `(master_seed, node)`.
///
/// Every node gets an independent, reproducible stream; the dispatcher
/// seeds one per machine so emission randomness is independent of event
/// interleaving across nodes.
pub fn app_rng(master_seed: u64, node: NodeId) -> SmallRng {
    SmallRng::seed_from_u64(master_seed ^ APP_SEED_MIX.wrapping_mul(node.idx() as u64 + 1))
}

/// An application-level message: what a machine sends and receives.
///
/// Protocols interpret the fields; the network only moves them. `kind`
/// discriminates message types within one protocol, `req` names the
/// request a message belongs to (unique per origin node), `origin` is the
/// node the request belongs to, and `aux` carries protocol data (e.g. an
/// expected-ack count).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Payload {
    /// Protocol-private message type.
    pub kind: u8,
    /// Request id, unique per `origin`.
    pub req: u32,
    /// The node whose request this message serves.
    pub origin: NodeId,
    /// Protocol-private auxiliary word.
    pub aux: u32,
}

/// An input to a protocol machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppEvent {
    /// The run begins; delivered to every node once, in node order,
    /// before any network activity.
    Start,
    /// A message addressed to this node was absorbed.
    Delivery(Payload),
    /// A timer previously set via [`Emission::Timer`] fired.
    Timeout,
}

/// An output of a protocol machine, performed by the dispatcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Emission {
    /// Inject a unicast message to `dst`.
    Unicast {
        /// Destination node.
        dst: NodeId,
        /// Application payload delivered with the message.
        payload: Payload,
    },
    /// Inject a multicast operation over this node's configured
    /// destination set (the workload's destination sets double as the
    /// protocol's sharer/release sets).
    Multicast {
        /// Application payload delivered at every absorption.
        payload: Payload,
    },
    /// Request a [`AppEvent::Timeout`] `delay` cycles from now
    /// (`delay >= 1`; at most one timer may be pending per node).
    Timer {
        /// Cycles until the timeout fires (must be at least 1).
        delay: u64,
    },
    /// Bookkeeping marker: this node issued request `req`.
    Issued {
        /// Request id, unique per node.
        req: u32,
    },
    /// Bookkeeping marker: request `req` completed. Every issued request
    /// must retire exactly once (the dispatcher enforces this).
    Retired {
        /// Request id previously announced via [`Emission::Issued`].
        req: u32,
    },
    /// This node has no further work: it will issue no more requests and
    /// set no more timers (it may still answer deliveries).
    Done,
}

/// Static network facts a protocol may condition on: fixed before the run,
/// identical on both engines.
#[derive(Clone, Debug)]
pub struct NetEnv {
    /// Number of nodes.
    pub n: usize,
    /// Per-node multicast fan-out: how many targets one multicast
    /// operation from node `i` reaches (the size of its destination set).
    pub fanout: Vec<u32>,
}

/// A deterministic per-node protocol state machine.
///
/// `step` must be a pure function of `(state, event, rng)`: no
/// interior mutability, no global state, no clocks. The dispatcher owns
/// when events happen; the machine owns only what they mean.
pub trait AppProtocol {
    /// Per-node machine state.
    type State;

    /// The initial state of `node`'s machine.
    fn init(&self, node: NodeId, env: &NetEnv) -> Self::State;

    /// Advance `node`'s machine by one event, appending emissions to
    /// `out` in the order they should be performed.
    fn step(
        &self,
        node: NodeId,
        state: &mut Self::State,
        event: AppEvent,
        rng: &mut SmallRng,
        out: &mut Vec<Emission>,
    );
}

/// Object-safe bundle of one protocol machine per node — the interface the
/// engine-side dispatcher drives.
pub trait ProtocolBank {
    /// Number of node machines in the bank.
    fn num_nodes(&self) -> usize;

    /// Feed `event` to `node`'s machine, appending its emissions to `out`.
    fn step(&mut self, node: NodeId, event: AppEvent, out: &mut Vec<Emission>);
}

/// The standard [`ProtocolBank`]: one `P::State` and one seeded RNG per
/// node, all driven by a single protocol description.
pub struct Machines<P: AppProtocol> {
    proto: P,
    states: Vec<P::State>,
    rngs: Vec<SmallRng>,
}

impl<P: AppProtocol> Machines<P> {
    /// Build the per-node machines for `env` under `master_seed`.
    pub fn new(proto: P, env: &NetEnv, master_seed: u64) -> Self {
        let states = (0..env.n)
            .map(|i| proto.init(NodeId(i as u32), env))
            .collect();
        let rngs = (0..env.n)
            .map(|i| app_rng(master_seed, NodeId(i as u32)))
            .collect();
        Machines {
            proto,
            states,
            rngs,
        }
    }
}

impl<P: AppProtocol> ProtocolBank for Machines<P> {
    fn num_nodes(&self) -> usize {
        self.states.len()
    }

    fn step(&mut self, node: NodeId, event: AppEvent, out: &mut Vec<Emission>) {
        self.proto.step(
            node,
            &mut self.states[node.idx()],
            event,
            &mut self.rngs[node.idx()],
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn app_rng_streams_are_per_node_and_reproducible() {
        let mut a = app_rng(42, NodeId(3));
        let mut a2 = app_rng(42, NodeId(3));
        let mut b = app_rng(42, NodeId(4));
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let xs2: Vec<u64> = (0..8).map(|_| a2.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, xs2);
        assert_ne!(xs, ys);
    }

    #[test]
    fn app_mix_differs_from_traffic_mix() {
        // The arrival-stream mix in noc-sim; protocol streams must not
        // alias it under a shared master seed.
        const NODE_SEED_MIX: u64 = 0xA076_1D64_78BD_642F;
        assert_ne!(APP_SEED_MIX, NODE_SEED_MIX);
        assert_eq!(
            APP_SEED_MIX & 1,
            1,
            "odd multiplier: node index mixes into all bits"
        );
    }
}
