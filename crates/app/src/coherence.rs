//! Invalidation-based coherence: the first closed-loop machine.
//!
//! Each node works through a fixed budget of requests, keeping at most
//! `window` outstanding at a time. A request picks a uniformly random
//! *home* node (never itself) and is a write with probability
//! `write_fraction`:
//!
//! * **Read:** requester → home `ReadReq`; home → requester `Data`;
//!   the request retires on `Data`.
//! * **Write:** requester → home `WriteReq`; home *multicasts*
//!   `Invalidate` over its configured destination set (the sharers) and
//!   unicasts `WriteGrant` back with the expected ack count; every sharer
//!   acks the requester directly (`InvAck`); the request retires once the
//!   grant and all acks are in.
//!
//! Writes are the natural consumer of the paper's multicast machinery —
//! one write turns into a multicast fan-out plus a converging ack wave —
//! and the window bound is what makes the workload closed-loop: a slow
//! network stalls the sources instead of queueing unboundedly.
//!
//! Grant and acks race freely (a sharer near the requester can ack before
//! the grant arrives, and the requester may absorb its *own* invalidation
//! when it is in the home's sharer set — that counts as a self-ack), so
//! retirement checks are order-independent.

use crate::protocol::{AppEvent, AppProtocol, Emission, NetEnv, Payload};
use noc_topology::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;

/// Message kinds of the coherence protocol.
mod kind {
    pub const READ_REQ: u8 = 0;
    pub const DATA: u8 = 1;
    pub const WRITE_REQ: u8 = 2;
    pub const INVALIDATE: u8 = 3;
    pub const WRITE_GRANT: u8 = 4;
    pub const INV_ACK: u8 = 5;
}

/// The invalidation-based coherence protocol description.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Coherence {
    /// Maximum outstanding requests per node.
    pub window: u32,
    /// Total requests each node issues over the run.
    pub requests: u32,
    /// Probability that a request is a write (`0.0..=1.0`).
    pub write_fraction: f64,
}

/// One outstanding request at its requester.
#[derive(Clone, Copy, Debug)]
struct Pending {
    req: u32,
    write: bool,
    /// `Data` (read) or `WriteGrant` (write) received.
    replied: bool,
    /// Acks received so far (writes only; includes the self-ack).
    acks: u32,
    /// Expected ack count, known once the grant arrives.
    expected: Option<u32>,
}

/// Per-node coherence machine state.
#[derive(Clone, Debug)]
pub struct CohState {
    n: u32,
    /// This node's multicast fan-out — the ack count its `WriteGrant`s
    /// promise when it acts as a home.
    fanout: u32,
    next_seq: u32,
    retired: u32,
    pending: Vec<Pending>,
}

impl Coherence {
    fn issue(&self, node: NodeId, st: &mut CohState, rng: &mut SmallRng, out: &mut Vec<Emission>) {
        let req = st.next_seq;
        st.next_seq += 1;
        let write = rng.gen_bool(self.write_fraction);
        // Uniform home over the other n-1 nodes.
        let mut home = rng.gen_range(0..st.n - 1);
        if home >= node.0 {
            home += 1;
        }
        st.pending.push(Pending {
            req,
            write,
            replied: false,
            acks: 0,
            expected: None,
        });
        out.push(Emission::Issued { req });
        out.push(Emission::Unicast {
            dst: NodeId(home),
            payload: Payload {
                kind: if write {
                    kind::WRITE_REQ
                } else {
                    kind::READ_REQ
                },
                req,
                origin: node,
                aux: 0,
            },
        });
    }

    /// Retire every pending request whose conditions are met, refilling
    /// the window from the remaining budget.
    fn settle(&self, node: NodeId, st: &mut CohState, rng: &mut SmallRng, out: &mut Vec<Emission>) {
        while let Some(i) = st
            .pending
            .iter()
            .position(|p| p.replied && (!p.write || p.expected == Some(p.acks)))
        {
            let p = st.pending.remove(i);
            st.retired += 1;
            out.push(Emission::Retired { req: p.req });
            if st.next_seq < self.requests {
                self.issue(node, st, rng, out);
            } else if st.retired == self.requests {
                out.push(Emission::Done);
            }
        }
    }
}

impl AppProtocol for Coherence {
    type State = CohState;

    fn init(&self, node: NodeId, env: &NetEnv) -> CohState {
        CohState {
            n: env.n as u32,
            fanout: env.fanout[node.idx()],
            next_seq: 0,
            retired: 0,
            pending: Vec::with_capacity(self.window as usize),
        }
    }

    fn step(
        &self,
        node: NodeId,
        st: &mut CohState,
        event: AppEvent,
        rng: &mut SmallRng,
        out: &mut Vec<Emission>,
    ) {
        match event {
            AppEvent::Start => {
                if self.requests == 0 {
                    out.push(Emission::Done);
                    return;
                }
                let first = self.window.min(self.requests);
                for _ in 0..first {
                    self.issue(node, st, rng, out);
                }
            }
            AppEvent::Timeout => {
                unreachable!("coherence machines set no timers")
            }
            AppEvent::Delivery(p) => match p.kind {
                // --- home-side (stateless) ---
                kind::READ_REQ => out.push(Emission::Unicast {
                    dst: p.origin,
                    payload: Payload {
                        kind: kind::DATA,
                        ..p
                    },
                }),
                kind::WRITE_REQ => {
                    out.push(Emission::Multicast {
                        payload: Payload {
                            kind: kind::INVALIDATE,
                            ..p
                        },
                    });
                    out.push(Emission::Unicast {
                        dst: p.origin,
                        payload: Payload {
                            kind: kind::WRITE_GRANT,
                            aux: st.fanout,
                            ..p
                        },
                    });
                }
                // --- sharer-side ---
                kind::INVALIDATE if p.origin != node => out.push(Emission::Unicast {
                    dst: p.origin,
                    payload: Payload {
                        kind: kind::INV_ACK,
                        ..p
                    },
                }),
                // --- requester-side ---
                kind::DATA | kind::WRITE_GRANT | kind::INV_ACK | kind::INVALIDATE => {
                    let pending = st
                        .pending
                        .iter_mut()
                        .find(|q| q.req == p.req)
                        .expect("coherence reply for a request that is not pending");
                    match p.kind {
                        kind::DATA => pending.replied = true,
                        kind::WRITE_GRANT => {
                            pending.replied = true;
                            pending.expected = Some(p.aux);
                        }
                        // An `InvAck`, or our own `Invalidate` echoed back
                        // because we sit in the home's sharer set.
                        _ => pending.acks += 1,
                    }
                    self.settle(node, st, rng, out);
                }
                other => unreachable!("unknown coherence message kind {other}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{app_rng, Machines, ProtocolBank};

    fn env(n: usize, fanout: u32) -> NetEnv {
        NetEnv {
            n,
            fanout: vec![fanout; n],
        }
    }

    #[test]
    fn start_fills_the_window_only() {
        let proto = Coherence {
            window: 3,
            requests: 10,
            write_fraction: 0.0,
        };
        let mut bank = Machines::new(proto, &env(8, 2), 7);
        let mut out = Vec::new();
        bank.step(NodeId(0), AppEvent::Start, &mut out);
        let issued = out
            .iter()
            .filter(|e| matches!(e, Emission::Issued { .. }))
            .count();
        let sent = out
            .iter()
            .filter(|e| matches!(e, Emission::Unicast { .. }))
            .count();
        assert_eq!(issued, 3);
        assert_eq!(sent, 3);
    }

    #[test]
    fn read_retires_on_data_and_refills() {
        let proto = Coherence {
            window: 1,
            requests: 2,
            write_fraction: 0.0,
        };
        let mut bank = Machines::new(proto, &env(4, 1), 1);
        let mut out = Vec::new();
        bank.step(NodeId(0), AppEvent::Start, &mut out);
        let Emission::Unicast { payload, .. } = out[1] else {
            panic!("expected the request unicast, got {out:?}");
        };
        out.clear();
        bank.step(
            NodeId(0),
            AppEvent::Delivery(Payload {
                kind: kind::DATA,
                ..payload
            }),
            &mut out,
        );
        assert!(matches!(out[0], Emission::Retired { req } if req == payload.req));
        // The window refills with the second (and last) request.
        assert!(out.iter().any(|e| matches!(e, Emission::Issued { req: 1 })));
    }

    #[test]
    fn write_waits_for_grant_and_all_acks() {
        let proto = Coherence {
            window: 1,
            requests: 1,
            write_fraction: 1.0,
        };
        let mut bank = Machines::new(proto, &env(4, 2), 3);
        let mut out = Vec::new();
        bank.step(NodeId(0), AppEvent::Start, &mut out);
        let Emission::Unicast { payload, .. } = out[1] else {
            panic!("expected the request unicast, got {out:?}");
        };
        assert_eq!(payload.kind, kind::WRITE_REQ);
        // One ack first: no retirement yet (grant still missing).
        out.clear();
        bank.step(
            NodeId(0),
            AppEvent::Delivery(Payload {
                kind: kind::INV_ACK,
                ..payload
            }),
            &mut out,
        );
        assert!(out.is_empty());
        // Grant announcing two acks: still waiting for the second.
        out.clear();
        bank.step(
            NodeId(0),
            AppEvent::Delivery(Payload {
                kind: kind::WRITE_GRANT,
                aux: 2,
                ..payload
            }),
            &mut out,
        );
        assert!(out.is_empty());
        out.clear();
        bank.step(
            NodeId(0),
            AppEvent::Delivery(Payload {
                kind: kind::INV_ACK,
                ..payload
            }),
            &mut out,
        );
        assert!(matches!(out[0], Emission::Retired { req } if req == payload.req));
        assert!(matches!(out[1], Emission::Done));
    }

    #[test]
    fn home_answers_statelessly() {
        let proto = Coherence {
            window: 1,
            requests: 1,
            write_fraction: 0.0,
        };
        let mut bank = Machines::new(proto, &env(4, 2), 5);
        let mut out = Vec::new();
        let p = Payload {
            kind: kind::WRITE_REQ,
            req: 9,
            origin: NodeId(2),
            aux: 0,
        };
        bank.step(NodeId(1), AppEvent::Delivery(p), &mut out);
        assert!(
            matches!(out[0], Emission::Multicast { payload } if payload.kind == kind::INVALIDATE)
        );
        let Emission::Unicast { dst, payload } = out[1] else {
            panic!("expected the grant, got {out:?}");
        };
        assert_eq!(dst, NodeId(2));
        assert_eq!(payload.kind, kind::WRITE_GRANT);
        assert_eq!(payload.aux, 2, "grant promises the home's fan-out");
    }

    #[test]
    fn homes_are_never_self_and_draws_are_reproducible() {
        let proto = Coherence {
            window: 4,
            requests: 64,
            write_fraction: 0.5,
        };
        let e = env(8, 2);
        for node in 0..8u32 {
            let mut st = proto.init(NodeId(node), &e);
            let mut rng = app_rng(11, NodeId(node));
            let mut out = Vec::new();
            proto.step(NodeId(node), &mut st, AppEvent::Start, &mut rng, &mut out);
            for e in &out {
                if let Emission::Unicast { dst, .. } = e {
                    assert_ne!(*dst, NodeId(node), "home must not be the requester");
                }
            }
        }
    }
}
