//! Minimal CSV and aligned-table output.
//!
//! The figure-regeneration binaries emit one CSV per figure panel plus an
//! aligned text table for the terminal. Kept dependency-free on purpose.

use std::fmt::Write as _;

/// A simple column-oriented table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV (RFC-4180-ish: fields containing commas or quotes are
    /// quoted; numeric output from the harness never needs it, but be safe).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Render as an aligned text table for terminals.
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Format a float with fixed precision, mapping non-finite values to
/// `"saturated"` (model points beyond the stability limit).
pub fn fmt_latency(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "saturated".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(vec!["rate", "latency"]);
        t.push_row(vec!["0.001", "38.20"]);
        t.push_row(vec!["0.002", "39.10"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "rate,latency");
        assert_eq!(lines[2], "0.002,39.10");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_special_chars() {
        let mut t = Table::new(vec!["a"]);
        t.push_row(vec!["x,y"]);
        t.push_row(vec!["he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn aligned_output_lines_are_equal_width_per_column() {
        let mut t = Table::new(vec!["n", "value"]);
        t.push_row(vec!["1", "2.0"]);
        t.push_row(vec!["100", "34.25"]);
        let s = t.to_aligned();
        assert!(s.contains("  1"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn latency_formatting() {
        assert_eq!(fmt_latency(12.345), "12.35");
        assert_eq!(fmt_latency(f64::INFINITY), "saturated");
        assert_eq!(fmt_latency(f64::NAN), "saturated");
    }
}
