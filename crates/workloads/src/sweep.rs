//! Message-rate sweeps.
//!
//! The figures of the paper plot latency against the per-node message
//! generation rate, swept from near zero to the onset of saturation.
//! [`RateSweep`] builds such grids.

use serde::{Deserialize, Serialize};

/// A set of generation rates to evaluate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RateSweep {
    rates: Vec<f64>,
}

impl RateSweep {
    /// Explicit list of rates (must be positive and ascending).
    pub fn explicit(rates: Vec<f64>) -> Self {
        assert!(rates.iter().all(|r| r.is_finite() && *r > 0.0));
        assert!(rates.windows(2).all(|w| w[0] < w[1]), "rates must ascend");
        RateSweep { rates }
    }

    /// `points` rates spaced linearly over `[lo, hi]` inclusive.
    pub fn linear(lo: f64, hi: f64, points: usize) -> Self {
        assert!(points >= 2 && lo > 0.0 && hi > lo);
        let step = (hi - lo) / (points - 1) as f64;
        RateSweep {
            rates: (0..points).map(|i| lo + step * i as f64).collect(),
        }
    }

    /// `points` rates spaced geometrically over `[lo, hi]` inclusive —
    /// denser near zero where latency changes slowly, mirroring how the
    /// paper's curves sample the low-load region.
    pub fn geometric(lo: f64, hi: f64, points: usize) -> Self {
        assert!(points >= 2 && lo > 0.0 && hi > lo);
        let ratio = (hi / lo).powf(1.0 / (points - 1) as f64);
        RateSweep {
            rates: (0..points).map(|i| lo * ratio.powi(i as i32)).collect(),
        }
    }

    /// Rates as a slice.
    #[inline]
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of sweep points.
    #[inline]
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// `true` when the sweep is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Truncate the sweep to rates strictly below `limit` (e.g. an
    /// analytically determined saturation rate).
    pub fn below(&self, limit: f64) -> RateSweep {
        RateSweep {
            rates: self.rates.iter().copied().filter(|&r| r < limit).collect(),
        }
    }
}

impl IntoIterator for RateSweep {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.rates.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_covers_endpoints() {
        let s = RateSweep::linear(0.001, 0.009, 5);
        assert_eq!(s.len(), 5);
        assert!((s.rates()[0] - 0.001).abs() < 1e-15);
        assert!((s.rates()[4] - 0.009).abs() < 1e-15);
        assert!((s.rates()[2] - 0.005).abs() < 1e-15);
    }

    #[test]
    fn geometric_is_multiplicative() {
        let s = RateSweep::geometric(0.001, 0.016, 5);
        let r = s.rates();
        for w in r.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn below_filters() {
        let s = RateSweep::linear(0.001, 0.01, 10).below(0.0055);
        assert!(s.rates().iter().all(|&r| r < 0.0055));
        assert_eq!(s.len(), 5);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn explicit_rejects_unsorted() {
        RateSweep::explicit(vec![0.01, 0.005]);
    }

    #[test]
    fn into_iter_yields_all() {
        let s = RateSweep::linear(0.001, 0.002, 2);
        let v: Vec<f64> = s.into_iter().collect();
        assert_eq!(v.len(), 2);
    }
}
