//! Message-rate sweeps.
//!
//! The figures of the paper plot latency against the per-node message
//! generation rate, swept from near zero to the onset of saturation.
//! [`RateSweep`] builds such grids. Constructors validate their input and
//! return [`SweepError`] — a malformed experiment specification must
//! surface as a typed error the scenario runner can report, not a panic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when constructing a [`RateSweep`].
#[derive(Clone, Debug, PartialEq)]
pub enum SweepError {
    /// A rate was non-finite, zero or negative.
    InvalidRate(f64),
    /// Explicit rates must be strictly ascending.
    NotAscending {
        /// The first out-of-order pair.
        prev: f64,
        /// The rate that failed to exceed `prev`.
        next: f64,
    },
    /// Linear/geometric grids need at least two points.
    TooFewPoints(usize),
    /// Grid bounds must satisfy `0 < lo < hi`.
    InvalidBounds {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::InvalidRate(r) => {
                write!(f, "sweep rate {r} must be finite and positive")
            }
            SweepError::NotAscending { prev, next } => {
                write!(
                    f,
                    "sweep rates must strictly ascend ({next} follows {prev})"
                )
            }
            SweepError::TooFewPoints(n) => {
                write!(f, "sweep needs at least 2 points, got {n}")
            }
            SweepError::InvalidBounds { lo, hi } => {
                write!(f, "sweep bounds must satisfy 0 < lo < hi, got [{lo}, {hi}]")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// A set of generation rates to evaluate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RateSweep {
    rates: Vec<f64>,
}

impl RateSweep {
    /// Explicit list of rates (must be positive and ascending).
    pub fn explicit(rates: Vec<f64>) -> Result<Self, SweepError> {
        for &r in &rates {
            if !r.is_finite() || r <= 0.0 {
                return Err(SweepError::InvalidRate(r));
            }
        }
        if let Some(w) = rates.windows(2).find(|w| w[0] >= w[1]) {
            return Err(SweepError::NotAscending {
                prev: w[0],
                next: w[1],
            });
        }
        Ok(RateSweep { rates })
    }

    /// `points` rates spaced linearly over `[lo, hi]` inclusive.
    pub fn linear(lo: f64, hi: f64, points: usize) -> Result<Self, SweepError> {
        check_grid(lo, hi, points)?;
        let step = (hi - lo) / (points - 1) as f64;
        Ok(RateSweep {
            rates: (0..points).map(|i| lo + step * i as f64).collect(),
        })
    }

    /// `points` rates spaced geometrically over `[lo, hi]` inclusive —
    /// denser near zero where latency changes slowly, mirroring how the
    /// paper's curves sample the low-load region.
    pub fn geometric(lo: f64, hi: f64, points: usize) -> Result<Self, SweepError> {
        check_grid(lo, hi, points)?;
        let ratio = (hi / lo).powf(1.0 / (points - 1) as f64);
        Ok(RateSweep {
            rates: (0..points).map(|i| lo * ratio.powi(i as i32)).collect(),
        })
    }

    /// Rates as a slice.
    #[inline]
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of sweep points.
    #[inline]
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// `true` when the sweep is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Truncate the sweep to rates strictly below `limit` (e.g. an
    /// analytically determined saturation rate).
    pub fn below(&self, limit: f64) -> RateSweep {
        RateSweep {
            rates: self.rates.iter().copied().filter(|&r| r < limit).collect(),
        }
    }
}

fn check_grid(lo: f64, hi: f64, points: usize) -> Result<(), SweepError> {
    if points < 2 {
        return Err(SweepError::TooFewPoints(points));
    }
    if !lo.is_finite() || !hi.is_finite() || lo <= 0.0 || hi <= lo {
        return Err(SweepError::InvalidBounds { lo, hi });
    }
    Ok(())
}

impl IntoIterator for RateSweep {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.rates.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_covers_endpoints() {
        let s = RateSweep::linear(0.001, 0.009, 5).unwrap();
        assert_eq!(s.len(), 5);
        assert!((s.rates()[0] - 0.001).abs() < 1e-15);
        assert!((s.rates()[4] - 0.009).abs() < 1e-15);
        assert!((s.rates()[2] - 0.005).abs() < 1e-15);
    }

    #[test]
    fn geometric_is_multiplicative() {
        let s = RateSweep::geometric(0.001, 0.016, 5).unwrap();
        let r = s.rates();
        for w in r.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn below_filters() {
        let s = RateSweep::linear(0.001, 0.01, 10).unwrap().below(0.0055);
        assert!(s.rates().iter().all(|&r| r < 0.0055));
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn explicit_rejects_unsorted() {
        assert_eq!(
            RateSweep::explicit(vec![0.01, 0.005]),
            Err(SweepError::NotAscending {
                prev: 0.01,
                next: 0.005
            })
        );
    }

    #[test]
    fn explicit_rejects_bad_rates() {
        assert_eq!(
            RateSweep::explicit(vec![0.0, 0.1]),
            Err(SweepError::InvalidRate(0.0))
        );
        assert!(matches!(
            RateSweep::explicit(vec![-0.2]),
            Err(SweepError::InvalidRate(_))
        ));
        assert!(matches!(
            RateSweep::explicit(vec![f64::NAN]),
            Err(SweepError::InvalidRate(_))
        ));
        assert!(RateSweep::explicit(vec![]).unwrap().is_empty());
    }

    #[test]
    fn grids_reject_bad_parameters() {
        assert_eq!(
            RateSweep::linear(0.001, 0.01, 1),
            Err(SweepError::TooFewPoints(1))
        );
        assert_eq!(
            RateSweep::linear(0.0, 0.01, 4),
            Err(SweepError::InvalidBounds { lo: 0.0, hi: 0.01 })
        );
        assert!(RateSweep::linear(0.01, 0.01, 4).is_err());
        assert!(RateSweep::geometric(0.01, 0.002, 4).is_err());
        assert!(RateSweep::geometric(f64::NAN, 0.002, 4).is_err());
    }

    #[test]
    fn errors_display_usefully() {
        let e = RateSweep::linear(0.5, 0.1, 3).unwrap_err();
        assert!(e.to_string().contains("0 < lo < hi"));
        let e = RateSweep::explicit(vec![0.2, 0.1]).unwrap_err();
        assert!(e.to_string().contains("ascend"));
    }

    #[test]
    fn into_iter_yields_all() {
        let s = RateSweep::linear(0.001, 0.002, 2).unwrap();
        let v: Vec<f64> = s.into_iter().collect();
        assert_eq!(v.len(), 2);
    }
}
