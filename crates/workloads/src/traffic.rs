//! Temporal traffic specification: *when* messages are generated.
//!
//! The paper's validation protocol (§4) assumes per-node Poisson
//! injection — in a cycle-accurate simulator, a Bernoulli trial per cycle,
//! equivalently geometric inter-arrival gaps. Real workloads are rarely
//! that polite: NoC traffic is bursty, and bursty traffic is exactly
//! where an M/G/1-based latency model's Poisson assumption breaks. A
//! [`TrafficSpec`] describes the arrival process of every node as
//! serializable data, so scenarios can sweep the *shape* of traffic as
//! well as its rate:
//!
//! * [`TrafficSpec::Geometric`] — the paper's memoryless source (the
//!   default; simulations under it are bit-identical to the pre-subsystem
//!   engines).
//! * [`TrafficSpec::OnOff`] — a two-state bursty source: bursts of
//!   geometrically many messages at a peak rate, separated by silences
//!   sized so the long-run mean rate equals the nominal sweep rate
//!   (sweeps stay comparable point-for-point with Poisson runs).
//! * [`TrafficSpec::Trace`] — deterministic replay of a recorded
//!   `(cycle, node, kind)` arrival trace (see `noc_sim`'s trace recorder).
//!
//! The simulator turns a spec into per-node arrival processes; the
//! analytical model remains a Poisson model — [`TrafficSpec::is_poisson`]
//! is the applicability flag the experiment layer attaches to model
//! overlays evaluated under non-Poisson traffic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Errors raised when validating a [`TrafficSpec`].
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficError {
    /// The mean burst length must be finite and in `[1, 1e9]` messages.
    InvalidBurstLength(f64),
    /// The on-state peak rate must lie in `(0, 1)` messages/cycle.
    InvalidPeakRate(f64),
    /// The peak rate must exceed the nominal mean rate, or the on-state
    /// duty cycle would exceed 1.
    PeakBelowMeanRate {
        /// The on-state peak rate.
        peak: f64,
        /// The nominal mean rate it fails to exceed.
        rate: f64,
    },
    /// A trace entry is malformed (out-of-range node or destination,
    /// non-increasing per-node cycles, a cycle-0 arrival, or a
    /// self-addressed unicast).
    InvalidTrace {
        /// Index of the offending entry.
        index: usize,
        /// What is wrong with it.
        reason: &'static str,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::InvalidBurstLength(b) => {
                write!(
                    f,
                    "burst length {b} must be finite and in [1, 1e9] messages"
                )
            }
            TrafficError::InvalidPeakRate(p) => {
                write!(f, "peak rate {p} must lie in (0, 1) messages/cycle")
            }
            TrafficError::PeakBelowMeanRate { peak, rate } => {
                write!(
                    f,
                    "peak rate {peak} must exceed the mean rate {rate} \
                     (the on-state duty cycle would exceed 1)"
                )
            }
            TrafficError::InvalidTrace { index, reason } => {
                write!(f, "trace entry {index}: {reason}")
            }
        }
    }
}

impl std::error::Error for TrafficError {}

/// The class of one recorded arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A unicast to a fixed destination (recorded, not re-sampled).
    Unicast {
        /// Destination node index.
        dst: u32,
    },
    /// A multicast operation over the node's configured destination set.
    Multicast,
}

/// One recorded arrival: node `node` generates a message of `kind` at
/// `cycle`. Raw node indices keep serialized traces topology-independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Generation cycle (`>= 1`; generation happens at the start of a
    /// simulated cycle, and cycle 0 is never simulated).
    pub cycle: u64,
    /// Generating node index.
    pub node: u32,
    /// Message class (and destination, for unicasts).
    pub kind: TraceKind,
}

/// The serializable arrival-process specification of a workload.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum TrafficSpec {
    /// Memoryless per-node source with geometric inter-arrival gaps — the
    /// discrete-time Poisson process of the paper (§4) and the default.
    #[default]
    Geometric,
    /// Two-state Markov-modulated bursty source. A burst holds a
    /// geometrically distributed number of messages (mean `burst_len`)
    /// spaced at geometric gaps of rate `peak_rate`; bursts are separated
    /// by geometric off-gaps whose mean is chosen so the long-run mean
    /// rate equals the workload's nominal `gen_rate`. `burst_len = 1`
    /// degenerates to a memoryless source at the nominal rate.
    OnOff {
        /// Mean messages per burst (`1 ..= 1e9`).
        burst_len: f64,
        /// Arrival rate inside a burst, messages/cycle (`rate < peak < 1`).
        peak_rate: f64,
    },
    /// Deterministic replay of a recorded arrival trace. Entries must be
    /// sorted by `(cycle, node)` with strictly increasing cycles per node;
    /// the workload's `gen_rate` is ignored. Arrivals beyond the last
    /// entry never happen, so traces must cover the intended run length.
    Trace {
        /// The recorded arrivals, behind an `Arc` so sweeps and
        /// replicates share one copy instead of deep-cloning a
        /// potentially large trace per `(rate, replicate)` job
        /// (serializes transparently as the plain list).
        entries: Arc<Vec<TraceEntry>>,
    },
}

impl TrafficSpec {
    /// Does this spec describe the memoryless (Poisson) arrivals the
    /// analytical model assumes? The experiment layer uses this to flag
    /// model overlays evaluated outside their applicability domain.
    pub fn is_poisson(&self) -> bool {
        matches!(self, TrafficSpec::Geometric)
    }

    /// Does the workload's generation rate drive this process? `false`
    /// for trace replay, whose arrival schedule is fixed — sweeping the
    /// rate over a trace repeats the identical run, which the scenario
    /// layer rejects for multi-point sweeps.
    pub fn is_rate_driven(&self) -> bool {
        !matches!(self, TrafficSpec::Trace { .. })
    }

    /// Trace-replay spec over `entries` (wraps them in the shared `Arc`).
    pub fn trace(entries: Vec<TraceEntry>) -> Self {
        TrafficSpec::Trace {
            entries: Arc::new(entries),
        }
    }

    /// Short code used in derived labels.
    pub fn code(&self) -> &'static str {
        match self {
            TrafficSpec::Geometric => "geometric",
            TrafficSpec::OnOff { .. } => "onoff",
            TrafficSpec::Trace { .. } => "trace",
        }
    }

    /// Validate against a network of `n` nodes and a nominal mean rate
    /// of `gen_rate` messages/node/cycle.
    pub fn validate(&self, n: usize, gen_rate: f64) -> Result<(), TrafficError> {
        match self {
            TrafficSpec::Geometric => Ok(()),
            TrafficSpec::OnOff {
                burst_len,
                peak_rate,
            } => {
                // The upper bound keeps 1/burst_len well above f64
                // underflow in the simulator's geometric samplers (and
                // bursts of more than 1e9 messages have no physical
                // reading at cycle scale anyway).
                if !burst_len.is_finite() || !(1.0..=1e9).contains(burst_len) {
                    return Err(TrafficError::InvalidBurstLength(*burst_len));
                }
                if !peak_rate.is_finite() || !(0.0..1.0).contains(peak_rate) || *peak_rate == 0.0 {
                    return Err(TrafficError::InvalidPeakRate(*peak_rate));
                }
                // A zero-rate workload disables the source entirely, so
                // any positive peak is compatible with it.
                if gen_rate > 0.0 && *peak_rate <= gen_rate {
                    return Err(TrafficError::PeakBelowMeanRate {
                        peak: *peak_rate,
                        rate: gen_rate,
                    });
                }
                Ok(())
            }
            TrafficSpec::Trace { entries } => {
                let mut last: Vec<Option<u64>> = vec![None; n];
                for (index, e) in entries.iter().enumerate() {
                    if e.cycle == 0 {
                        return Err(TrafficError::InvalidTrace {
                            index,
                            reason: "arrivals start at cycle 1",
                        });
                    }
                    let Some(prev) = last.get_mut(e.node as usize) else {
                        return Err(TrafficError::InvalidTrace {
                            index,
                            reason: "node index outside the network",
                        });
                    };
                    if prev.is_some_and(|p| p >= e.cycle) {
                        return Err(TrafficError::InvalidTrace {
                            index,
                            reason: "per-node cycles must strictly increase",
                        });
                    }
                    *prev = Some(e.cycle);
                    if let TraceKind::Unicast { dst } = e.kind {
                        if dst as usize >= n {
                            return Err(TrafficError::InvalidTrace {
                                index,
                                reason: "unicast destination outside the network",
                            });
                        }
                        if dst == e.node {
                            return Err(TrafficError::InvalidTrace {
                                index,
                                reason: "unicast destination equals the source",
                            });
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Mean off-gap (cycles) between an OnOff spec's bursts at mean rate
    /// `rate`: with mean burst size `B` and on-gap `1/peak`, the mean
    /// cycle budget per burst is `B/rate`, of which `(B − 1)/peak` is
    /// spent inside the burst. Only meaningful after
    /// [`TrafficSpec::validate`] (`rate < peak`).
    pub fn off_gap_mean(burst_len: f64, peak_rate: f64, rate: f64) -> f64 {
        burst_len / rate - (burst_len - 1.0) / peak_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_is_the_default_and_poisson() {
        assert_eq!(TrafficSpec::default(), TrafficSpec::Geometric);
        assert!(TrafficSpec::Geometric.is_poisson());
        assert!(!TrafficSpec::OnOff {
            burst_len: 8.0,
            peak_rate: 0.5
        }
        .is_poisson());
        assert!(!TrafficSpec::trace(Vec::new()).is_poisson());
    }

    #[test]
    fn onoff_validation_guards_parameters() {
        let ok = TrafficSpec::OnOff {
            burst_len: 8.0,
            peak_rate: 0.2,
        };
        assert!(ok.validate(16, 0.01).is_ok());
        assert!(matches!(
            TrafficSpec::OnOff {
                burst_len: 0.5,
                peak_rate: 0.2
            }
            .validate(16, 0.01),
            Err(TrafficError::InvalidBurstLength(_))
        ));
        // Beyond the cap, 1/burst_len would underflow the simulator's
        // geometric samplers.
        assert!(matches!(
            TrafficSpec::OnOff {
                burst_len: 1e20,
                peak_rate: 0.2
            }
            .validate(16, 0.01),
            Err(TrafficError::InvalidBurstLength(_))
        ));
        assert!(matches!(
            TrafficSpec::OnOff {
                burst_len: 4.0,
                peak_rate: 1.0
            }
            .validate(16, 0.01),
            Err(TrafficError::InvalidPeakRate(_))
        ));
        assert!(matches!(
            TrafficSpec::OnOff {
                burst_len: 4.0,
                peak_rate: 0.01
            }
            .validate(16, 0.02),
            Err(TrafficError::PeakBelowMeanRate { .. })
        ));
        // Zero-rate workloads disable the source; any peak is fine.
        assert!(ok.validate(16, 0.0).is_ok());
    }

    #[test]
    fn off_gap_mean_matches_the_rate_budget() {
        // B = 4, peak = 0.5, rate = 0.1: budget 40 cycles/burst, 6 spent
        // on-burst, 34 off.
        let off = TrafficSpec::off_gap_mean(4.0, 0.5, 0.1);
        assert!((off - 34.0).abs() < 1e-12);
        // B = 1 degenerates to pure geometric at the nominal rate.
        assert!((TrafficSpec::off_gap_mean(1.0, 0.5, 0.1) - 10.0).abs() < 1e-12);
        // The off gap always exceeds one cycle when rate < peak < 1.
        assert!(TrafficSpec::off_gap_mean(2.0, 0.9, 0.5) > 1.0);
    }

    #[test]
    fn trace_validation_checks_shape() {
        let uni = |cycle, node, dst| TraceEntry {
            cycle,
            node,
            kind: TraceKind::Unicast { dst },
        };
        let ok = TrafficSpec::trace(vec![
            uni(1, 0, 3),
            TraceEntry {
                cycle: 1,
                node: 1,
                kind: TraceKind::Multicast,
            },
            uni(5, 0, 2),
        ]);
        assert!(ok.validate(4, 0.01).is_ok());

        let cases: Vec<(Vec<TraceEntry>, &str)> = vec![
            (vec![uni(0, 0, 1)], "cycle 0"),
            (vec![uni(1, 9, 1)], "node out of range"),
            (vec![uni(1, 0, 9)], "dst out of range"),
            (vec![uni(1, 0, 0)], "self send"),
            (vec![uni(3, 0, 1), uni(3, 0, 2)], "non-increasing"),
        ];
        for (entries, what) in cases {
            assert!(
                matches!(
                    TrafficSpec::trace(entries).validate(4, 0.01),
                    Err(TrafficError::InvalidTrace { .. })
                ),
                "{what} must be rejected"
            );
        }
    }

    #[test]
    fn specs_serialize_round_trip() {
        for spec in [
            TrafficSpec::Geometric,
            TrafficSpec::OnOff {
                burst_len: 16.0,
                peak_rate: 0.25,
            },
            TrafficSpec::trace(vec![
                TraceEntry {
                    cycle: 2,
                    node: 1,
                    kind: TraceKind::Unicast { dst: 0 },
                },
                TraceEntry {
                    cycle: 7,
                    node: 0,
                    kind: TraceKind::Multicast,
                },
            ]),
        ] {
            let json = serde::json::to_string_pretty(&spec);
            let back: TrafficSpec = serde::json::from_str(&json).expect("round trip parses");
            assert_eq!(spec, back);
        }
    }
}
