//! Multicast destination sets.
//!
//! The paper fixes the destination set of every node "at the beginning of
//! the simulation" (§4) and evaluates two spatial patterns:
//!
//! * **random** (Fig. 6) — destinations drawn uniformly from the other
//!   `N − 1` nodes;
//! * **localized** (Fig. 7) — all destinations on the *same rim*, i.e.
//!   within a single injection-port quadrant of the source.
//!
//! Generation is fully deterministic in `(topology, group size, seed)`.

use noc_topology::{NodeId, PortId, Topology};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-node multicast destination sets, fixed for a whole experiment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DestinationSets {
    sets: Vec<Vec<NodeId>>,
}

impl DestinationSets {
    /// Explicit sets (one per node, in node order). Destinations equal to
    /// the owning node are removed; duplicates are dropped.
    pub fn explicit(mut sets: Vec<Vec<NodeId>>) -> Self {
        for (i, set) in sets.iter_mut().enumerate() {
            let me = NodeId(i as u32);
            set.retain(|&t| t != me);
            set.sort_unstable();
            set.dedup();
        }
        DestinationSets { sets }
    }

    /// Uniformly random sets of `group_size` destinations per node
    /// (Fig. 6 pattern).
    pub fn random(topo: &dyn Topology, group_size: usize, seed: u64) -> Self {
        let n = topo.num_nodes();
        let group = group_size.min(n.saturating_sub(1));
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let sets = (0..n)
            .map(|src| {
                let mut others: Vec<NodeId> = (0..n as u32)
                    .map(NodeId)
                    .filter(|&t| t.idx() != src)
                    .collect();
                others.shuffle(&mut rng);
                others.truncate(group);
                others.sort_unstable();
                others
            })
            .collect();
        DestinationSets { sets }
    }

    /// Uniformly random sets of `group_size` destinations per node, built
    /// by rejection sampling in O(n · group) — the constructor for scale
    /// sweeps, where [`DestinationSets::random`]'s per-node shuffle of all
    /// `n − 1` candidates is an O(n²) wall (a 64k-node network would
    /// shuffle four billion entries).
    ///
    /// The sampled distribution matches `random` (uniform without
    /// replacement) but the draws differ for the same seed, so the two
    /// constructors are distinct named patterns, not interchangeable
    /// implementations of one.
    ///
    /// `group_size` is capped at `n / 2` (and `n − 1`): rejection
    /// sampling degrades as the group approaches `n`, and scale sweeps
    /// keep groups tiny anyway — use `random` for dense groups on small
    /// networks.
    pub fn sampled(topo: &dyn Topology, group_size: usize, seed: u64) -> Self {
        let n = topo.num_nodes();
        let group = group_size.min(n.saturating_sub(1)).min(n / 2);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x243f_6a88_85a3_08d3);
        let sets = (0..n)
            .map(|src| {
                let src = NodeId(src as u32);
                let mut set: Vec<NodeId> = Vec::with_capacity(group);
                while set.len() < group {
                    let d = Self::random_unicast_dest(n, src, &mut rng);
                    if !set.contains(&d) {
                        set.push(d);
                    }
                }
                set.sort_unstable();
                set
            })
            .collect();
        DestinationSets { sets }
    }

    /// Localized sets (Fig. 7 pattern): every node's destinations lie in a
    /// single randomly chosen injection-port quadrant ("on the same rim").
    ///
    /// `group_size` is capped by the chosen quadrant's population; ports
    /// with too few nodes are skipped in favour of the largest quadrant.
    pub fn localized(topo: &dyn Topology, group_size: usize, seed: u64) -> Self {
        let n = topo.num_nodes();
        let ports = topo.num_ports();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);
        let sets = (0..n)
            .map(|src| {
                let src = NodeId(src as u32);
                // Prefer a random port whose quadrant can hold the group;
                // fall back to the largest quadrant.
                let mut order: Vec<PortId> = (0..ports as u8).map(PortId).collect();
                order.shuffle(&mut rng);
                let quadrant = order
                    .iter()
                    .map(|&p| topo.quadrant(src, p))
                    .find(|q| q.len() >= group_size)
                    .unwrap_or_else(|| {
                        (0..ports as u8)
                            .map(|p| topo.quadrant(src, PortId(p)))
                            .max_by_key(|q| q.len())
                            .expect("topology has at least one port")
                    });
                let mut q = quadrant;
                q.shuffle(&mut rng);
                q.truncate(group_size);
                q.sort_unstable();
                q
            })
            .collect();
        DestinationSets { sets }
    }

    /// Broadcast sets: every node targets all other nodes.
    pub fn broadcast(topo: &dyn Topology) -> Self {
        let n = topo.num_nodes();
        let sets = (0..n)
            .map(|src| {
                (0..n as u32)
                    .map(NodeId)
                    .filter(|t| t.idx() != src)
                    .collect()
            })
            .collect();
        DestinationSets { sets }
    }

    /// The destination set of `node`.
    #[inline]
    pub fn set(&self, node: NodeId) -> &[NodeId] {
        &self.sets[node.idx()]
    }

    /// Number of nodes covered.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.sets.len()
    }

    /// Mean destination-set size across nodes.
    pub fn mean_group_size(&self) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        self.sets.iter().map(|s| s.len()).sum::<usize>() as f64 / self.sets.len() as f64
    }

    /// Sample a uniformly random unicast destination distinct from `src`.
    pub fn random_unicast_dest(n: usize, src: NodeId, rng: &mut impl Rng) -> NodeId {
        debug_assert!(n >= 2);
        let raw = rng.gen_range(0..n - 1) as u32;
        if raw >= src.0 {
            NodeId(raw + 1)
        } else {
            NodeId(raw)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::{Quarc, Ring};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_sets_have_requested_size_and_exclude_source() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        assert_eq!(sets.num_nodes(), 16);
        for i in 0..16u32 {
            let s = sets.set(NodeId(i));
            assert_eq!(s.len(), 4);
            assert!(!s.contains(&NodeId(i)));
            let mut sorted = s.to_vec();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "no duplicates");
        }
        assert!((sets.mean_group_size() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn random_sets_are_seed_deterministic() {
        let topo = Quarc::new(32).unwrap();
        let a = DestinationSets::random(&topo, 8, 7);
        let b = DestinationSets::random(&topo, 8, 7);
        let c = DestinationSets::random(&topo, 8, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sampled_sets_have_requested_size_and_exclude_source() {
        let topo = Quarc::new(64).unwrap();
        let sets = DestinationSets::sampled(&topo, 5, 9);
        assert_eq!(sets.num_nodes(), 64);
        for i in 0..64u32 {
            let s = sets.set(NodeId(i));
            assert_eq!(s.len(), 5);
            assert!(!s.contains(&NodeId(i)));
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
        }
        let a = DestinationSets::sampled(&topo, 5, 9);
        let b = DestinationSets::sampled(&topo, 5, 10);
        assert_eq!(sets, a, "seed-deterministic");
        assert_ne!(sets, b);
    }

    #[test]
    fn sampled_group_is_capped_at_half_the_network() {
        let topo = Ring::new(6).unwrap();
        let sets = DestinationSets::sampled(&topo, 10, 1);
        for i in 0..6u32 {
            assert_eq!(sets.set(NodeId(i)).len(), 3, "capped at n/2");
        }
    }

    #[test]
    fn localized_sets_fit_one_quadrant() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::localized(&topo, 3, 11);
        for i in 0..16u32 {
            let src = NodeId(i);
            let s = sets.set(src);
            assert_eq!(s.len(), 3);
            // All destinations must share a single port.
            let p0 = topo.port_for(src, s[0]);
            assert!(
                s.iter().all(|&t| topo.port_for(src, t) == p0),
                "localized set of {src:?} spans ports: {s:?}"
            );
        }
    }

    #[test]
    fn localized_group_capped_by_quadrant() {
        let topo = Quarc::new(16).unwrap(); // quadrants hold at most 4 nodes
        let sets = DestinationSets::localized(&topo, 10, 3);
        for i in 0..16u32 {
            assert!(sets.set(NodeId(i)).len() <= 4);
        }
    }

    #[test]
    fn broadcast_targets_everyone() {
        let topo = Ring::new(6).unwrap();
        let sets = DestinationSets::broadcast(&topo);
        for i in 0..6u32 {
            assert_eq!(sets.set(NodeId(i)).len(), 5);
        }
    }

    #[test]
    fn explicit_cleans_input() {
        let sets = DestinationSets::explicit(vec![
            vec![NodeId(0), NodeId(1), NodeId(1), NodeId(2)],
            vec![NodeId(0)],
        ]);
        assert_eq!(sets.set(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(sets.set(NodeId(1)), &[NodeId(0)]);
    }

    #[test]
    fn unicast_dest_never_hits_source_and_is_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            let d = DestinationSets::random_unicast_dest(8, NodeId(3), &mut rng);
            assert_ne!(d, NodeId(3));
            counts[d.idx()] += 1;
        }
        assert_eq!(counts[3], 0);
        for (i, &c) in counts.iter().enumerate() {
            if i != 3 {
                let p = c as f64 / 80_000.0;
                assert!((p - 1.0 / 7.0).abs() < 0.01, "node {i} probability {p}");
            }
        }
    }
}
