//! Order-preserving parallel map on crossbeam scoped threads.
//!
//! The figure sweeps evaluate many independent `(configuration, rate)`
//! points; each point runs a complete simulation, so the sweep is
//! embarrassingly parallel. Rayon is not part of the approved offline crate
//! set, so this module provides the one primitive the harness needs: a
//! `parallel_map` that executes a job per input item on a bounded worker
//! pool and returns results in input order.
//!
//! Work distribution uses an atomic cursor over the input slice (dynamic
//! load balancing — simulation points near saturation run much longer than
//! low-load points, so static chunking would straggle).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` using up to `threads` workers, preserving input
/// order in the output.
///
/// `threads == 0` or `threads == 1` (or a single item) degrades to a
/// sequential map. Panics in workers propagate to the caller.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        return items.iter().map(&f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock() = Some(r);
            });
        }
    })
    .expect("worker thread panicked");

    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot must be filled"))
        .collect()
}

/// Pick a worker count: `requested` if nonzero, otherwise the machine's
/// available parallelism (at least 1).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn sequential_fallbacks() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 0, |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let n = 1000;
        let hits = AtomicU64::new(0);
        let items: Vec<usize> = (0..n).collect();
        let out = parallel_map(&items, 16, |&i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), n as u64);
        assert_eq!(out.len(), n);
    }

    #[test]
    fn unbalanced_work_completes() {
        // Items with wildly different costs must all finish (dynamic
        // scheduling regression test).
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 4, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn effective_threads_resolves() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }
}
