//! Order-preserving parallel map on crossbeam scoped threads.
//!
//! The figure sweeps evaluate many independent `(configuration, rate)`
//! points; each point runs a complete simulation, so the sweep is
//! embarrassingly parallel. Rayon is not part of the approved offline crate
//! set, so this module provides the one primitive the harness needs: a
//! `parallel_map` that executes a job per input item on a bounded worker
//! pool and returns results in input order.
//!
//! Work distribution uses an atomic cursor over the input slice (dynamic
//! load balancing — simulation points near saturation run much longer than
//! low-load points, so static chunking would straggle).

use parking_lot::Mutex;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Render a panic payload the way the default hook does: `&str` and
/// `String` payloads verbatim, anything else opaquely.
fn panic_message(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Map `f` over `items` using up to `threads` workers, preserving input
/// order in the output.
///
/// `threads == 0` or `threads == 1` (or a single item) degrades to a
/// sequential map.
///
/// # Panics
///
/// A panic in `f` is re-raised on the caller's thread with the failing
/// item identified (its index and `Debug` rendering) and the original
/// message preserved — not swallowed into an opaque "worker thread
/// panicked". Remaining in-flight items still complete; the first
/// panicking item (by index) wins when several fail.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync + std::fmt::Debug,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        return items.iter().map(&f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(r) => *results[i].lock() = Some(r),
                    Err(payload) => {
                        let mut slot = failure.lock();
                        match &*slot {
                            Some((first, _)) if *first <= i => {}
                            _ => *slot = Some((i, payload)),
                        }
                        break;
                    }
                }
            });
        }
    })
    .expect("crossbeam scope failed despite workers catching panics");

    if let Some((i, payload)) = failure.into_inner() {
        let msg = panic_message(payload.as_ref());
        if payload.downcast_ref::<&str>().is_some() || payload.downcast_ref::<String>().is_some() {
            panic!("worker panicked on item {i} ({:?}): {msg}", items[i]);
        }
        // Non-string payload: identify the item, then hand the original
        // payload back unaltered for upstream downcasts.
        eprintln!("worker panicked on item {i} ({:?})", items[i]);
        resume_unwind(payload);
    }

    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot must be filled"))
        .collect()
}

/// Pick a worker count: `requested` if nonzero, otherwise the machine's
/// available parallelism (at least 1).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn sequential_fallbacks() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 0, |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let n = 1000;
        let hits = AtomicU64::new(0);
        let items: Vec<usize> = (0..n).collect();
        let out = parallel_map(&items, 16, |&i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), n as u64);
        assert_eq!(out.len(), n);
    }

    #[test]
    fn unbalanced_work_completes() {
        // Items with wildly different costs must all finish (dynamic
        // scheduling regression test).
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 4, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn effective_threads_resolves() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn worker_panic_identifies_the_item() {
        let items: Vec<u32> = (0..32).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |&x| {
                if x == 17 {
                    panic!("replicate exploded");
                }
                x
            })
        })
        .expect_err("the worker panic must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .expect("contextualised panics carry a String payload");
        assert!(msg.contains("item 17"), "missing item index: {msg}");
        assert!(msg.contains("replicate exploded"), "missing cause: {msg}");
    }

    #[test]
    fn other_items_survive_a_panicking_sibling() {
        // A panic on one item must not poison siblings mid-flight: the
        // scope still joins cleanly and the panic carries context.
        let items: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, 8, |&x| {
                if x == 0 {
                    panic!("first item fails");
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
                x
            })
        })
        .expect_err("the worker panic must propagate");
        let msg = caught.downcast_ref::<String>().unwrap();
        assert!(msg.contains("item 0"), "lowest failing index wins: {msg}");
    }

    #[test]
    fn non_string_payloads_resume_unaltered() {
        #[derive(Debug, PartialEq)]
        struct Custom(u32);
        let items: Vec<u32> = (0..8).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |&x| {
                if x == 3 {
                    std::panic::panic_any(Custom(3));
                }
                x
            })
        })
        .expect_err("the worker panic must propagate");
        let payload = caught
            .downcast_ref::<Custom>()
            .expect("typed payloads survive for upstream downcasts");
        assert_eq!(*payload, Custom(3));
    }
}
