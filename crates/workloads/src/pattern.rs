//! Spatial unicast traffic patterns.
//!
//! The paper evaluates uniformly random unicast destinations; the wider
//! wormhole-model literature (Draper–Ghosh, Ould-Khaoua) additionally
//! stresses models with **hot-spot** and **permutation** traffic. This
//! module provides those patterns for both the analytical model (as
//! per-pair destination weights) and the simulator (as destination
//! samplers), keeping the two sides consistent by construction.

use crate::destinations::DestinationSets;
use noc_topology::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How unicast destinations are selected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum UnicastPattern {
    /// Destinations uniform over the other `N − 1` nodes (the paper's
    /// assumption).
    #[default]
    Uniform,
    /// A fraction of every node's unicast traffic targets one hot node;
    /// the remainder is uniform. The hot node's own traffic stays uniform.
    HotSpot {
        /// The hot destination.
        node: NodeId,
        /// Fraction of traffic directed at it (`0 ≤ f ≤ 1`).
        fraction: f64,
    },
    /// Index-complement permutation: node `s` always sends to
    /// `N − 1 − s` (a node equal to its own complement falls back to
    /// uniform). A standard adversarial permutation: every message
    /// crosses the network.
    Complement,
}

impl UnicastPattern {
    /// Validate against a network of `n` nodes.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        match *self {
            UnicastPattern::Uniform | UnicastPattern::Complement => Ok(()),
            UnicastPattern::HotSpot { node, fraction } => {
                if node.idx() >= n {
                    return Err(format!("hot-spot node {node:?} outside 0..{n}"));
                }
                if !(0.0..=1.0).contains(&fraction) || !fraction.is_finite() {
                    return Err(format!("hot-spot fraction {fraction} outside [0, 1]"));
                }
                Ok(())
            }
        }
    }

    /// Probability that a unicast generated at `src` targets `dst`
    /// (`src != dst`), over a network of `n` nodes. Rows sum to 1 over all
    /// `dst != src`.
    pub fn weight(&self, n: usize, src: NodeId, dst: NodeId) -> f64 {
        debug_assert!(src != dst && src.idx() < n && dst.idx() < n);
        let uniform = 1.0 / (n - 1) as f64;
        match *self {
            UnicastPattern::Uniform => uniform,
            UnicastPattern::HotSpot { node, fraction } => {
                if src == node {
                    uniform
                } else if dst == node {
                    fraction + (1.0 - fraction) * uniform
                } else {
                    (1.0 - fraction) * uniform
                }
            }
            UnicastPattern::Complement => {
                let comp = NodeId((n - 1 - src.idx()) as u32);
                if comp == src {
                    uniform
                } else if dst == comp {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Sample a destination for a unicast generated at `src`, consistent
    /// with [`UnicastPattern::weight`].
    pub fn sample(&self, n: usize, src: NodeId, rng: &mut impl Rng) -> NodeId {
        match *self {
            UnicastPattern::Uniform => DestinationSets::random_unicast_dest(n, src, rng),
            UnicastPattern::HotSpot { node, fraction } => {
                if src != node && rng.gen::<f64>() < fraction {
                    node
                } else {
                    DestinationSets::random_unicast_dest(n, src, rng)
                }
            }
            UnicastPattern::Complement => {
                let comp = NodeId((n - 1 - src.idx()) as u32);
                if comp == src {
                    DestinationSets::random_unicast_dest(n, src, rng)
                } else {
                    comp
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn weights_are_distributions() {
        let n = 12;
        for pattern in [
            UnicastPattern::Uniform,
            UnicastPattern::HotSpot {
                node: NodeId(3),
                fraction: 0.4,
            },
            UnicastPattern::Complement,
        ] {
            for s in 0..n as u32 {
                let src = NodeId(s);
                let total: f64 = (0..n as u32)
                    .map(NodeId)
                    .filter(|&d| d != src)
                    .map(|d| pattern.weight(n, src, d))
                    .sum();
                assert!(
                    (total - 1.0).abs() < 1e-12,
                    "{pattern:?} row {s} sums to {total}"
                );
            }
        }
    }

    #[test]
    fn hot_spot_concentrates_weight() {
        let p = UnicastPattern::HotSpot {
            node: NodeId(0),
            fraction: 0.5,
        };
        let w_hot = p.weight(10, NodeId(5), NodeId(0));
        let w_cold = p.weight(10, NodeId(5), NodeId(1));
        assert!(w_hot > 0.5);
        assert!(w_cold < 0.06);
        // Hot node's own traffic is uniform.
        assert!((p.weight(10, NodeId(0), NodeId(4)) - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn complement_is_a_permutation() {
        let p = UnicastPattern::Complement;
        assert_eq!(p.weight(8, NodeId(1), NodeId(6)), 1.0);
        assert_eq!(p.weight(8, NodeId(1), NodeId(5)), 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(p.sample(8, NodeId(2), &mut rng), NodeId(5));
    }

    #[test]
    fn complement_self_map_falls_back_to_uniform() {
        // N = 9: node 4 is its own complement.
        let p = UnicastPattern::Complement;
        let src = NodeId(4);
        let total: f64 = (0..9u32)
            .map(NodeId)
            .filter(|&d| d != src)
            .map(|d| p.weight(9, src, d))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_ne!(p.sample(9, src, &mut rng), src);
        }
    }

    #[test]
    fn sampling_matches_weights_empirically() {
        let p = UnicastPattern::HotSpot {
            node: NodeId(2),
            fraction: 0.3,
        };
        let n = 8;
        let src = NodeId(6);
        let mut rng = SmallRng::seed_from_u64(11);
        let trials = 200_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            counts[p.sample(n, src, &mut rng).idx()] += 1;
        }
        assert_eq!(counts[src.idx()], 0);
        for d in 0..n as u32 {
            let d = NodeId(d);
            if d == src {
                continue;
            }
            let expected = p.weight(n, src, d);
            let got = counts[d.idx()] as f64 / trials as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "dest {d:?}: sampled {got}, weight {expected}"
            );
        }
    }

    #[test]
    fn validation() {
        assert!(UnicastPattern::Uniform.validate(4).is_ok());
        assert!(UnicastPattern::HotSpot {
            node: NodeId(9),
            fraction: 0.1
        }
        .validate(8)
        .is_err());
        assert!(UnicastPattern::HotSpot {
            node: NodeId(1),
            fraction: 1.5
        }
        .validate(8)
        .is_err());
        assert!(UnicastPattern::HotSpot {
            node: NodeId(1),
            fraction: 0.5
        }
        .validate(8)
        .is_ok());
    }
}
